//! # svq-query
//!
//! The declarative surface language of SVQ-ACT (§1-§2 of the paper): a
//! SQL-like dialect whose `PROCESS … PRODUCE … USING` clause exposes vision
//! models as relations and whose `WHERE` clause mixes action and object
//! predicates. Two canonical statement shapes:
//!
//! **Online** (streaming; results as the video plays):
//!
//! ```sql
//! SELECT MERGE(clipID) AS Sequence
//! FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector,
//!       act USING ActionRecognizer)
//! WHERE act = 'jumping' AND obj.include('car', 'person')
//! ```
//!
//! **Offline** (top-K over an ingested repository):
//!
//! ```sql
//! SELECT MERGE(clipID) AS Sequence, RANK(act, obj)
//! FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker,
//!       act USING ActionRecognizer)
//! WHERE act = 'jumping' AND obj.include('car', 'person')
//! ORDER BY RANK(act, obj) LIMIT 5
//! ```
//!
//! Extensions follow the paper's footnotes: `OR` between predicates
//! (normalised to CNF), several `act = …` conjuncts (multiple actions), and
//! `leftOf('a', 'b')` spatial relationships.
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`plan`] (semantic
//! analysis against the model vocabularies, logical plan, `EXPLAIN`) →
//! [`exec`] (binds the plan to the online engines or the offline RVAQ).
//! Both execution modes return one [`exec::QueryOutcome`] envelope carrying
//! the mode payload, the disk-access delta, and wall time.

#![forbid(unsafe_code)]

pub mod ast;
pub mod cluster;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use cluster::{merge_cluster, ClusterPart, ClusterRanked, ClusterTopK, MergeStats};
pub use exec::{
    execute_offline, execute_offline_all, execute_offline_all_with, execute_online, QueryOutcome,
    QueryResults,
};
pub use parser::parse;
pub use plan::{LogicalPlan, QueryMode};
