//! Cross-shard scatter-gather merge for cluster-wide top-K queries.
//!
//! A cluster query (`video: "all"` on the wire) runs the offline plan over
//! every video of a catalog that has been hash-partitioned across shards
//! (`svq_exec::shard_index`). Each shard answers with its *local* top-K —
//! the merge of its videos' per-video RVAQ results — and the router merges
//! shard answers into the global top-K. This module defines the merge and
//! the invariant everything downstream leans on:
//!
//! **Associativity.** [`merge_cluster`] over per-video parts (what a single
//! process computes) and the two-level merge — per-video parts grouped into
//! shard-local merges, then merged again at the router — produce *identical*
//! [`ClusterTopK`] values, bytes included. Selection is the top-K of the
//! union of part entries under the strict total order [`cluster_order`]
//! (score desc, then video, then interval), and a shard-level truncation can
//! only drop entries that the flat merge drops too. The tail bound composes
//! the same way: entries dropped at a shard and entries dropped at the
//! router together are exactly the entries the flat merge drops.
//!
//! **Pruning (the Eq. 13–15 move, lifted to shards).** RVAQ stops scanning
//! a video when no unseen sequence's best-possible score can enter the
//! top-K; the router applies the same reasoning to whole shards. A part's
//! [`upper bound`](ClusterPart::upper) — the best score any of its entries
//! *or anything it truncated away* could have — is compared against the
//! running K-th selected score, and a part is skipped iff it is *strictly*
//! below. Ties are never pruned: an equal-score entry could still enter the
//! global top-K by the deterministic tiebreak, so pruning on a tie would
//! change bytes. Pruning therefore never alters the result — it only saves
//! work — and [`MergeStats`] (router-side observability, deliberately not
//! part of the wire payload) records how often it fired.
//!
//! The per-video reduction itself — global top-K ⊆ union of per-video
//! top-Ks, because scores are per-sequence and videos are disjoint — is the
//! same one `svq_core::offline::RepositoryRvaq` uses in-process; this
//! module adds the truncation bounds and the wire-stable payload that let
//! the reduction span processes.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use svq_core::offline::TopKResult;
use svq_types::{ClipInterval, VideoId};

/// One globally-ranked result sequence: a per-video interval qualified by
/// the video it came from, with the exact score RVAQ materialised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterRanked {
    /// The video the sequence belongs to.
    pub video: VideoId,
    /// The ranked clip sequence within that video.
    pub interval: ClipInterval,
    /// Exact sequence score (RVAQ runs with exact scores materialised).
    pub score: f64,
}

/// Cluster-wide top-K payload — the `"cluster"` mode of a query outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopK {
    /// The requested K.
    pub k: usize,
    /// Global top-K across every video, best first under [`cluster_order`].
    pub ranked: Vec<ClusterRanked>,
    /// Upper bound on the score of any sequence *not* listed in `ranked`
    /// (`None` when nothing anywhere was truncated away). Grouping-
    /// independent, so it is byte-identical between single-process and
    /// routed execution.
    pub tail_bound: Option<f64>,
    /// Number of videos examined.
    pub videos: usize,
    /// Total candidate sequences `|P_q|` summed over all videos.
    pub total_sequences: usize,
    /// Wall-clock of the merge's enclosing execution, milliseconds
    /// (zeroed by canonicalisation).
    pub wall_ms: f64,
}

/// One mergeable input: a video's top-K, or a whole shard's local merge.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPart {
    /// The part's ranked entries (order within the part is irrelevant; the
    /// merge re-sorts the selection pool under [`cluster_order`]).
    pub ranked: Vec<ClusterRanked>,
    /// Upper bound on anything this part already truncated away.
    pub tail_bound: Option<f64>,
    /// Videos this part covers.
    pub videos: usize,
    /// Candidate sequences this part saw before ranking.
    pub total_sequences: usize,
}

impl ClusterPart {
    /// Best possible score of any sequence this part holds *or dropped* —
    /// the bound the router prunes on.
    pub fn upper(&self) -> Option<f64> {
        let best = self
            .ranked
            .iter()
            .map(|r| r.score)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });
        match (best, self.tail_bound) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }
}

impl From<ClusterTopK> for ClusterPart {
    /// A shard's local merge, re-entering the router's global merge.
    fn from(local: ClusterTopK) -> Self {
        ClusterPart {
            ranked: local.ranked,
            tail_bound: local.tail_bound,
            videos: local.videos,
            total_sequences: local.total_sequences,
        }
    }
}

/// Observability counters for one merge. Router-side only: deliberately
/// *not* serialized into the outcome, so the wire payload stays independent
/// of how the catalog happened to be sharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Parts offered to the merge.
    pub parts: usize,
    /// Parts skipped because their upper bound could not crack the top-K.
    pub pruned: usize,
    /// Entries actually scanned into the selection pool.
    pub scanned: usize,
}

/// The strict total order ranking cluster results: score descending, then
/// video ascending, then interval ascending. `(video, interval)` pairs are
/// unique across parts, so no two distinct entries ever compare equal —
/// which is what makes the merge deterministic and associative.
pub fn cluster_order(a: &ClusterRanked, b: &ClusterRanked) -> Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.video.cmp(&b.video))
        .then_with(|| a.interval.cmp(&b.interval))
}

/// Convert one video's RVAQ answer into a mergeable part.
///
/// The part's tail bound is the video's K-th (worst listed) score whenever
/// RVAQ had more candidates than it listed — every unlisted sequence of the
/// video scores no better than the K-th by the top-K contract.
pub fn part_of_video(video: VideoId, topk: &TopKResult) -> ClusterPart {
    let ranked: Vec<ClusterRanked> = topk
        .ranked
        .iter()
        .map(|r| ClusterRanked {
            video,
            interval: r.interval,
            score: r.exact.unwrap_or(r.lower),
        })
        .collect();
    let tail_bound = (topk.total_sequences > ranked.len())
        .then(|| {
            ranked
                .iter()
                .map(|r| r.score)
                .fold(None, |acc: Option<f64>, s| {
                    Some(acc.map_or(s, |a| a.min(s)))
                })
        })
        .flatten();
    ClusterPart {
        ranked,
        tail_bound,
        videos: 1,
        total_sequences: topk.total_sequences,
    }
}

fn fold_tail(tail: &mut Option<f64>, bound: f64) {
    *tail = Some(tail.map_or(bound, |t| t.max(bound)));
}

/// Merge parts into the global top-K. Grouping-independent (see the module
/// docs for the argument); pruning fires iff provably safe.
pub fn merge_cluster(k: usize, parts: Vec<ClusterPart>) -> (ClusterTopK, MergeStats) {
    let mut stats = MergeStats {
        parts: parts.len(),
        ..MergeStats::default()
    };
    // Scan order: best-possible upper bound descending (empty parts last),
    // original position as the deterministic tiebreak. Scanning strong
    // parts first makes the K-th selected score climb fastest, which is
    // what lets later, weaker parts be pruned.
    let mut order: Vec<usize> = (0..parts.len()).collect();
    let upper_key = |i: usize| parts[i].upper().unwrap_or(f64::NEG_INFINITY);
    order.sort_by(|&a, &b| upper_key(b).total_cmp(&upper_key(a)).then(a.cmp(&b)));

    let mut pool: Vec<ClusterRanked> = Vec::new();
    let mut kth: Option<f64> = None; // K-th best selected score, once ≥ K scanned
    let mut tail: Option<f64> = None;
    let mut videos = 0usize;
    let mut total_sequences = 0usize;
    for i in order {
        let part = &parts[i];
        videos += part.videos;
        total_sequences += part.total_sequences;
        let prunable = match (part.upper(), kth) {
            // Strictly below the K-th selected score: nothing in the part
            // (nor anything it truncated) can enter the top-K, and nothing
            // can even tie — skipping is invisible in the output.
            (Some(upper), Some(kth)) => upper < kth,
            // An entirely empty part contributes nothing either way.
            (None, _) => true,
            _ => false,
        };
        if prunable {
            stats.pruned += 1;
            if let Some(upper) = part.upper() {
                fold_tail(&mut tail, upper);
            }
            continue;
        }
        stats.scanned += part.ranked.len();
        pool.extend(part.ranked.iter().copied());
        if let Some(bound) = part.tail_bound {
            fold_tail(&mut tail, bound);
        }
        pool.sort_by(cluster_order);
        if k > 0 && pool.len() >= k {
            kth = Some(pool[k - 1].score);
        }
    }
    // Everything beyond K folds into the tail bound — exactly the entries a
    // shard-local merge would have truncated before the router saw them.
    for dropped in pool.iter().skip(k) {
        fold_tail(&mut tail, dropped.score);
    }
    pool.truncate(k);
    (
        ClusterTopK {
            k,
            ranked: pool,
            tail_bound: tail,
            videos,
            total_sequences,
            wall_ms: 0.0,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use svq_types::{ClipId, Interval};

    fn entry(video: u64, start: u64, score: f64) -> ClusterRanked {
        ClusterRanked {
            video: VideoId::new(video),
            interval: Interval::new(ClipId::new(start), ClipId::new(start + 3)),
            score,
        }
    }

    fn part(entries: Vec<ClusterRanked>, tail: Option<f64>) -> ClusterPart {
        let n = entries.len();
        ClusterPart {
            ranked: entries,
            tail_bound: tail,
            videos: 1,
            total_sequences: n + usize::from(tail.is_some()),
        }
    }

    /// Reference implementation: sort the union, truncate, fold the rest
    /// (and every part tail) into the tail bound.
    fn brute_force(k: usize, parts: &[ClusterPart]) -> ClusterTopK {
        let mut all: Vec<ClusterRanked> = parts.iter().flat_map(|p| p.ranked.clone()).collect();
        all.sort_by(cluster_order);
        let mut tail = None;
        for part in parts {
            if let Some(b) = part.tail_bound {
                fold_tail(&mut tail, b);
            }
        }
        for dropped in all.iter().skip(k) {
            fold_tail(&mut tail, dropped.score);
        }
        all.truncate(k);
        ClusterTopK {
            k,
            ranked: all,
            tail_bound: tail,
            videos: parts.iter().map(|p| p.videos).sum(),
            total_sequences: parts.iter().map(|p| p.total_sequences).sum(),
            wall_ms: 0.0,
        }
    }

    #[test]
    fn merge_matches_brute_force() {
        let parts = vec![
            part(vec![entry(0, 0, 0.9), entry(0, 8, 0.4)], Some(0.3)),
            part(vec![entry(1, 2, 0.8), entry(1, 9, 0.7)], None),
            part(vec![entry(2, 4, 0.2)], Some(0.1)),
        ];
        let (merged, stats) = merge_cluster(3, parts.clone());
        assert_eq!(merged, brute_force(3, &parts));
        assert_eq!(stats.parts, 3);
        // The 0.2/0.1 part is strictly below the 3rd-best score (0.7).
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn pruning_is_safe_and_fires_only_strictly_below_kth() {
        // Tie with the K-th selected score: the tied part must be scanned,
        // because its entry (video 0 < video 9) wins the tiebreak.
        let strong = part(vec![entry(9, 0, 1.0), entry(9, 8, 0.5)], None);
        let tied = part(vec![entry(0, 4, 0.5)], None);
        let (merged, stats) = merge_cluster(2, vec![strong.clone(), tied.clone()]);
        assert_eq!(stats.pruned, 0, "a tie is never pruned");
        assert_eq!(merged.ranked[1], entry(0, 4, 0.5), "tiebreak by video id");
        assert_eq!(merged, brute_force(2, &[strong.clone(), tied]));

        // Strictly below: pruned, and the output is still the brute force.
        let below = part(vec![entry(0, 4, 0.4999)], None);
        let (merged, stats) = merge_cluster(2, vec![strong.clone(), below.clone()]);
        assert_eq!(stats.pruned, 1, "strictly dominated shard is skipped");
        assert_eq!(merged, brute_force(2, &[strong, below]));
    }

    #[test]
    fn tail_bound_can_forbid_pruning() {
        // The part's own entries are weak, but its truncation tail admits a
        // score above the K-th — upper() must keep it unpruned.
        let strong = part(vec![entry(9, 0, 1.0), entry(9, 8, 0.9)], None);
        let hidden = part(vec![entry(0, 4, 0.1)], Some(0.95));
        let (merged, stats) = merge_cluster(2, vec![strong, hidden]);
        assert_eq!(stats.pruned, 0);
        // And the unresolvable tail surfaces in the merged bound.
        assert_eq!(merged.tail_bound, Some(0.95));
    }

    #[test]
    fn two_level_merge_is_byte_identical_to_flat_merge() {
        let per_video = vec![
            part(vec![entry(0, 0, 0.9), entry(0, 8, 0.4)], Some(0.35)),
            part(vec![entry(1, 2, 0.8), entry(1, 9, 0.7)], None),
            part(vec![entry(2, 4, 0.7), entry(2, 9, 0.6)], Some(0.2)),
            part(vec![entry(3, 1, 0.5)], None),
        ];
        for k in [1, 2, 3, 4, 7] {
            let (flat, _) = merge_cluster(k, per_video.clone());
            // Group videos {0,1} and {2,3} into two shard-local merges,
            // then merge the shard answers — the router's actual shape.
            for split in 1..per_video.len() {
                let (left, _) = merge_cluster(k, per_video[..split].to_vec());
                let (right, _) = merge_cluster(k, per_video[split..].to_vec());
                let (routed, _) =
                    merge_cluster(k, vec![ClusterPart::from(left), ClusterPart::from(right)]);
                assert_eq!(routed, flat, "grouping changed the merge at k={k}");
                let flat_json = serde_json::to_string(&flat).unwrap();
                let routed_json = serde_json::to_string(&routed).unwrap();
                assert_eq!(routed_json, flat_json, "wire bytes diverged at k={k}");
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let (merged, stats) = merge_cluster(3, vec![]);
        assert!(merged.ranked.is_empty());
        assert_eq!(merged.tail_bound, None);
        assert_eq!((stats.parts, stats.pruned), (0, 0));

        // An empty part (a shard owning no videos) is skipped harmlessly.
        let empty = ClusterPart {
            ranked: vec![],
            tail_bound: None,
            videos: 0,
            total_sequences: 0,
        };
        let one = part(vec![entry(0, 0, 0.5)], None);
        let (merged, _) = merge_cluster(2, vec![empty, one]);
        assert_eq!(merged.ranked.len(), 1);

        // k = 0 selects nothing and folds everything into the tail.
        let (merged, _) = merge_cluster(0, vec![part(vec![entry(0, 0, 0.5)], None)]);
        assert!(merged.ranked.is_empty());
        assert_eq!(merged.tail_bound, Some(0.5));
    }

    #[test]
    fn part_of_video_derives_the_tail_from_truncation() {
        use svq_core::offline::TopKResult;
        use svq_storage::DiskStats;
        let topk = TopKResult {
            ranked: vec![
                svq_core::offline::RankedSequence {
                    interval: Interval::new(ClipId::new(0), ClipId::new(3)),
                    lower: 0.8,
                    upper: 0.9,
                    exact: Some(0.85),
                },
                svq_core::offline::RankedSequence {
                    interval: Interval::new(ClipId::new(5), ClipId::new(7)),
                    lower: 0.55,
                    upper: 0.7,
                    exact: Some(0.6),
                },
            ],
            disk: DiskStats::default(),
            wall_ms: 1.0,
            io_ms: 0.5,
            iterations: 10,
            total_sequences: 5,
        };
        let part = part_of_video(VideoId::new(3), &topk);
        assert_eq!(part.ranked.len(), 2);
        assert_eq!(part.ranked[0].score, 0.85);
        // 5 candidates, 2 listed → the tail is bounded by the worst listed.
        assert_eq!(part.tail_bound, Some(0.6));
        assert_eq!(part.upper(), Some(0.85));

        // No truncation → no tail.
        let full = TopKResult {
            total_sequences: 2,
            ..topk
        };
        assert_eq!(part_of_video(VideoId::new(3), &full).tail_bound, None);
    }

    /// Mirror of `svq_exec::shard_index` (splitmix64 finaliser), restated
    /// here because the query layer sits below the exec layer. The router
    /// tests in `svq-serve` pin the two implementations together end to
    /// end; this copy lets the property below group videos exactly the way
    /// a deployed cluster does.
    fn shard_of(video: u64, shards: usize) -> usize {
        let mut x = video.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % shards.max(1) as u64) as usize
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sharded_merge_is_byte_identical_to_single_process(
            raw in prop::collection::vec((0u64..16, 0u64..64, 0.0f64..1.0), 0..32),
            k in 0usize..8,
        ) {
            // Unique (video, interval) pairs — the merge's uniqueness
            // precondition — grouped into per-video truncated parts, the
            // exact shape per-video RVAQ answers arrive in.
            let mut seen = std::collections::BTreeSet::new();
            let mut by_video: std::collections::BTreeMap<u64, Vec<ClusterRanked>> =
                Default::default();
            for (video, start, score) in raw {
                if seen.insert((video, start)) {
                    by_video
                        .entry(video)
                        .or_default()
                        .push(entry(video, start, score));
                }
            }
            let per_video: Vec<ClusterPart> = by_video
                .values()
                .map(|entries| {
                    let mut ranked = entries.clone();
                    ranked.sort_by(cluster_order);
                    let total = ranked.len();
                    ranked.truncate(k.max(1));
                    let tail = (total > ranked.len())
                        .then(|| {
                            ranked.iter().map(|r| r.score).fold(
                                None,
                                |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.min(s))),
                            )
                        })
                        .flatten();
                    ClusterPart {
                        ranked,
                        tail_bound: tail,
                        videos: 1,
                        total_sequences: total,
                    }
                })
                .collect();

            // Single-process: one flat merge over every per-video part.
            let (flat, _) = merge_cluster(k, per_video.clone());
            let flat_json = serde_json::to_string(&flat).unwrap();

            // Cluster: hash-place the videos on {1,2,4} shards, merge
            // shard-locally, then merge the shard answers at the router.
            for shards in [1usize, 2, 4] {
                let mut groups: Vec<Vec<ClusterPart>> = vec![Vec::new(); shards];
                for part in &per_video {
                    let video = part.ranked[0].video.raw();
                    groups[shard_of(video, shards)].push(part.clone());
                }
                let shard_answers: Vec<ClusterPart> = groups
                    .into_iter()
                    .map(|group| ClusterPart::from(merge_cluster(k, group).0))
                    .collect();
                let (routed, _) = merge_cluster(k, shard_answers);
                prop_assert_eq!(&routed, &flat, "grouping changed the merge");
                let routed_json = serde_json::to_string(&routed).unwrap();
                prop_assert_eq!(
                    &routed_json, &flat_json,
                    "wire bytes diverged at {} shards", shards
                );
            }
        }
    }
}
