//! Abstract syntax of the SVQ-ACT dialect.

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// Items of the `SELECT` list.
    pub select: Vec<SelectItem>,
    /// The processed source (`FROM (PROCESS … )`).
    pub from: ProcessClause,
    /// The predicate expression.
    pub predicate: Expr,
    /// `ORDER BY RANK(act, obj)` present?
    pub order_by_rank: bool,
    /// `LIMIT k`.
    pub limit: Option<u64>,
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `MERGE(clipID) [AS alias]`.
    MergeClipId { alias: Option<String> },
    /// `RANK(act, obj)`.
    Rank,
}

/// The `PROCESS inputVideo PRODUCE … USING …` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessClause {
    /// The processed source name (e.g. `inputVideo`).
    pub source: String,
    /// Produced bindings, e.g. `clipID`, `obj USING ObjectDetector`.
    pub produces: Vec<Produce>,
}

/// One `PRODUCE` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Produce {
    /// Binding name (`clipID`, `obj`, `act`, `det`, …).
    pub name: String,
    /// Model bound with `USING`, if any.
    pub using: Option<String>,
}

/// Predicate expressions of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `act = 'name'`.
    ActionEq(String),
    /// `obj.include('a', 'b', …)` (alias: `obj.inc`).
    ObjInclude(Vec<String>),
    /// `leftOf('a', 'b')` spatial relationship.
    LeftOf(String, String),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Flatten into conjunctive normal form: a conjunction of clauses, each
    /// a disjunction of leaves. Distribution is exponential in the worst
    /// case, which is acceptable for hand-written query predicates.
    pub fn to_cnf(&self) -> Vec<Vec<Expr>> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.to_cnf();
                out.extend(b.to_cnf());
                out
            }
            Expr::Or(a, b) => {
                let left = a.to_cnf();
                let right = b.to_cnf();
                let mut out = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        let mut clause = l.clone();
                        clause.extend(r.iter().cloned());
                        out.push(clause);
                    }
                }
                out
            }
            // `obj.include('a','b')` is itself a conjunction of presences.
            Expr::ObjInclude(objs) => objs
                .iter()
                .map(|o| vec![Expr::ObjInclude(vec![o.clone()])])
                .collect(),
            leaf => vec![vec![leaf.clone()]],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(n: &str) -> Expr {
        Expr::ActionEq(n.into())
    }

    fn obj(n: &str) -> Expr {
        Expr::ObjInclude(vec![n.into()])
    }

    #[test]
    fn cnf_of_conjunction_is_singleton_clauses() {
        let e = Expr::And(Box::new(act("a")), Box::new(obj("x")));
        assert_eq!(e.to_cnf(), vec![vec![act("a")], vec![obj("x")]]);
    }

    #[test]
    fn cnf_distributes_or_over_and() {
        // (a OR b) AND x  →  [a, b], [x]
        let e = Expr::And(
            Box::new(Expr::Or(Box::new(act("a")), Box::new(act("b")))),
            Box::new(obj("x")),
        );
        assert_eq!(e.to_cnf(), vec![vec![act("a"), act("b")], vec![obj("x")]]);
        // a OR (x AND y)  →  [a, x], [a, y]
        let e = Expr::Or(
            Box::new(act("a")),
            Box::new(Expr::And(Box::new(obj("x")), Box::new(obj("y")))),
        );
        assert_eq!(
            e.to_cnf(),
            vec![vec![act("a"), obj("x")], vec![act("a"), obj("y")]]
        );
    }

    #[test]
    fn include_expands_to_one_clause_per_object() {
        let e = Expr::ObjInclude(vec!["x".into(), "y".into()]);
        assert_eq!(e.to_cnf(), vec![vec![obj("x")], vec![obj("y")]]);
    }
}
