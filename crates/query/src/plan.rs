//! Semantic analysis and logical planning.
//!
//! Resolves label names against the model vocabularies, decides the
//! execution mode (online streaming vs offline top-K), and reduces the
//! predicate expression to the engine's query shapes: a plain
//! [`ActionQuery`] when the predicate is the canonical single-action
//! conjunction, or a [`CnfQuery`] for the footnote extensions.

use crate::ast::{Expr, SelectItem, Statement};
use svq_core::expr::CnfQuery;
use svq_types::{
    ActionClass, ActionQuery, ObjectClass, Predicate, SvqError, SvqResult, Vocabulary,
};

/// How the statement executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Streaming: SVAQD over a video stream.
    Online,
    /// Repository: RVAQ over ingested metadata, top-K.
    Offline { k: usize },
}

/// The resolved predicate in engine form.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedPredicate {
    /// Canonical `{o_1 … o_I; a}` conjunction.
    Simple(ActionQuery),
    /// CNF with extensions (multiple/disjunctive actions, relationships).
    Cnf(CnfQuery),
}

/// A validated, executable plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    pub source: String,
    pub mode: QueryMode,
    pub predicate: PlannedPredicate,
}

impl LogicalPlan {
    /// Analyse a parsed statement.
    pub fn from_statement(stmt: &Statement) -> SvqResult<Self> {
        // Mode: ORDER BY RANK + LIMIT → offline; otherwise online.
        let mode = if stmt.order_by_rank {
            let k = stmt
                .limit
                .ok_or_else(|| SvqError::InvalidQuery("ORDER BY RANK requires LIMIT K".into()))?;
            QueryMode::Offline { k: k as usize }
        } else {
            if stmt.select.contains(&SelectItem::Rank) {
                return Err(SvqError::InvalidQuery(
                    "RANK in SELECT requires ORDER BY RANK … LIMIT K".into(),
                ));
            }
            QueryMode::Online
        };

        let predicate = Self::plan_predicate(&stmt.predicate)?;
        Ok(Self {
            source: stmt.from.source.clone(),
            mode,
            predicate,
        })
    }

    fn resolve_object(name: &str) -> SvqResult<ObjectClass> {
        ObjectClass::lookup(name).ok_or_else(|| SvqError::UnknownLabel {
            kind: "object",
            name: name.to_string(),
        })
    }

    fn resolve_action(name: &str) -> SvqResult<ActionClass> {
        ActionClass::lookup(name).ok_or_else(|| SvqError::UnknownLabel {
            kind: "action",
            name: name.to_string(),
        })
    }

    fn plan_predicate(expr: &Expr) -> SvqResult<PlannedPredicate> {
        let cnf = expr.to_cnf();
        // Resolve every leaf.
        let mut clauses: Vec<Vec<Predicate>> = Vec::with_capacity(cnf.len());
        for clause in &cnf {
            let mut resolved = Vec::with_capacity(clause.len());
            for leaf in clause {
                match leaf {
                    Expr::ActionEq(a) => resolved.push(Predicate::Action(Self::resolve_action(a)?)),
                    Expr::ObjInclude(objs) => {
                        debug_assert_eq!(objs.len(), 1, "to_cnf splits includes");
                        resolved.push(Predicate::Object(Self::resolve_object(&objs[0])?))
                    }
                    Expr::LeftOf(a, b) => resolved.push(Predicate::LeftOf(
                        Self::resolve_object(a)?,
                        Self::resolve_object(b)?,
                    )),
                    Expr::And(..) | Expr::Or(..) => unreachable!("CNF leaves only"),
                }
            }
            clauses.push(resolved);
        }

        // Canonical shape: all clauses singleton, exactly one action, no
        // relationships.
        let singleton = clauses.iter().all(|c| c.len() == 1);
        let actions: Vec<ActionClass> = clauses
            .iter()
            .flatten()
            .filter_map(|p| match p {
                Predicate::Action(a) => Some(*a),
                _ => None,
            })
            .collect();
        let has_relationship = clauses
            .iter()
            .flatten()
            .any(|p| matches!(p, Predicate::LeftOf(..)));
        if singleton && actions.len() == 1 && !has_relationship {
            let objects: Vec<ObjectClass> = clauses
                .iter()
                .flatten()
                .filter_map(|p| match p {
                    Predicate::Object(o) => Some(*o),
                    _ => None,
                })
                .collect();
            return Ok(PlannedPredicate::Simple(ActionQuery::new(
                actions[0], objects,
            )));
        }
        if actions.is_empty() {
            return Err(SvqError::InvalidQuery(
                "query needs at least one action predicate".into(),
            ));
        }
        Ok(PlannedPredicate::Cnf(CnfQuery::new(clauses)))
    }

    /// Human-readable plan, the `EXPLAIN` output.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        match self.mode {
            QueryMode::Online => {
                out.push_str("OnlineScan (SVAQD)\n");
            }
            QueryMode::Offline { k } => {
                out.push_str(&format!("TopK k={k} (RVAQ: TBClip + bounds + skip)\n"));
                out.push_str("  Intersect P_a ⊗ P_o… (interval sweep, Eq. 12)\n");
            }
        }
        out.push_str(&format!("  Source: {}\n", self.source));
        match &self.predicate {
            PlannedPredicate::Simple(q) => {
                out.push_str(&format!("  Predicate: {q}\n"));
            }
            PlannedPredicate::Cnf(q) => {
                out.push_str("  Predicate (CNF):\n");
                for clause in &q.clauses {
                    let parts: Vec<String> = clause.iter().map(|p| p.to_string()).collect();
                    out.push_str(&format!("    ({})\n", parts.join(" OR ")));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn canonical_statement_plans_to_simple_query() {
        let stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE act='jumping' AND obj.include('car','person')",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        assert_eq!(plan.mode, QueryMode::Online);
        match plan.predicate {
            PlannedPredicate::Simple(q) => {
                assert_eq!(q, ActionQuery::named("jumping", &["car", "person"]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn offline_mode_from_order_by_limit() {
        let stmt = parse(
            "SELECT MERGE(clipID), RANK(act,obj) FROM (PROCESS v PRODUCE clipID) \
             WHERE act='jumping' ORDER BY RANK(act,obj) LIMIT 7",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        assert_eq!(plan.mode, QueryMode::Offline { k: 7 });
    }

    #[test]
    fn disjunction_plans_to_cnf() {
        let stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE (act='jumping' OR act='kissing') AND obj.include('person')",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        match plan.predicate {
            PlannedPredicate::Cnf(q) => {
                assert_eq!(q.clauses.len(), 2);
                assert_eq!(q.clauses[0].len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_labels_are_reported() {
        let stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE act='no such action'",
        )
        .unwrap();
        let err = LogicalPlan::from_statement(&stmt).unwrap_err();
        assert!(err.to_string().contains("unknown action"), "{err}");
    }

    #[test]
    fn rank_without_order_by_rejected() {
        let stmt = parse(
            "SELECT MERGE(clipID), RANK(act,obj) FROM (PROCESS v PRODUCE clipID) \
             WHERE act='jumping'",
        )
        .unwrap();
        assert!(LogicalPlan::from_statement(&stmt).is_err());
    }

    #[test]
    fn object_only_query_rejected() {
        let stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE obj.include('car')",
        )
        .unwrap();
        let err = LogicalPlan::from_statement(&stmt).unwrap_err();
        assert!(err.to_string().contains("action predicate"), "{err}");
    }

    #[test]
    fn explain_renders_mode_and_predicates() {
        let stmt = parse(
            "SELECT MERGE(clipID), RANK(act,obj) FROM (PROCESS movie PRODUCE clipID) \
             WHERE act='smoking' AND obj.include('cup') \
             ORDER BY RANK(act,obj) LIMIT 3",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let text = plan.explain();
        assert!(text.contains("TopK k=3"));
        assert!(text.contains("movie"));
        assert!(text.contains("smoking"));
    }
}
