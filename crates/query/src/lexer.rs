//! Tokenizer for the SVQ-ACT dialect.
//!
//! Keywords are case-insensitive; string literals use single quotes;
//! identifiers are `[A-Za-z_][A-Za-z0-9_]*`. Every token carries its byte
//! offset so parse errors point at the source.

use svq_types::{SvqError, SvqResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword or identifier (uppercased for keywords, original otherwise —
    /// the parser decides by comparing case-insensitively).
    Ident(String),
    /// `'…'` string literal (contents, unquoted).
    Str(String),
    /// Integer literal.
    Int(u64),
    LParen,
    RParen,
    Comma,
    Eq,
    Dot,
    Star,
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub offset: usize,
}

/// Tokenize a statement.
pub fn lex(src: &str) -> SvqResult<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    tok: Tok::Eq,
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    tok: Tok::Dot,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    tok: Tok::Star,
                    offset: i,
                });
                i += 1;
            }
            '\'' => {
                let start = i;
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] as char != '\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SvqError::Parse {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                out.push(Spanned {
                    tok: Tok::Str(src[begin..i].to_string()),
                    offset: start,
                });
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: u64 = src[start..i].parse().map_err(|_| SvqError::Parse {
                    message: "integer literal out of range".into(),
                    offset: start,
                })?;
                out.push(Spanned {
                    tok: Tok::Int(n),
                    offset: start,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(SvqError::Parse {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT MERGE(clipID)"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("MERGE".into()),
                Tok::LParen,
                Tok::Ident("clipID".into()),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn strings_numbers_and_punctuation() {
        assert_eq!(
            toks("act = 'robot_dancing' LIMIT 5"),
            vec![
                Tok::Ident("act".into()),
                Tok::Eq,
                Tok::Str("robot_dancing".into()),
                Tok::Ident("LIMIT".into()),
                Tok::Int(5),
            ]
        );
        assert_eq!(
            toks("obj.include('a','b')"),
            vec![
                Tok::Ident("obj".into()),
                Tok::Dot,
                Tok::Ident("include".into()),
                Tok::LParen,
                Tok::Str("a".into()),
                Tok::Comma,
                Tok::Str("b".into()),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn offsets_point_into_source() {
        let spanned = lex("ab 'cd'").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 3);
    }

    #[test]
    fn unterminated_string_errors_with_offset() {
        let err = lex("act = 'oops").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("byte 6"), "{msg}");
    }

    #[test]
    fn rejects_strange_characters() {
        assert!(lex("a # b").is_err());
    }
}
