//! Plan execution: bind a [`LogicalPlan`] to the engines.
//!
//! Online plans run SVAQD (or the CNF engine for extended predicates) over
//! a [`VideoStream`]; offline plans run RVAQ over an [`IngestedVideo`].

use crate::plan::{LogicalPlan, PlannedPredicate, QueryMode};
use svq_core::expr::ExprSvaqd;
use svq_core::offline::{Rvaq, RvaqOptions, TopKResult};
use svq_core::online::{OnlineConfig, OnlineResult, Svaqd};
use svq_storage::IngestedVideo;
use svq_types::{ClipInterval, ScoringFunctions, SvqError, SvqResult};
use svq_vision::{CostLedger, VideoStream};

/// Result of an online statement.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineExecution {
    pub sequences: Vec<ClipInterval>,
    pub cost: CostLedger,
}

/// Execute an online plan over a stream with SVAQD defaults
/// (`p_obj_0 = p_act_0 = 1e-4`; SVAQD is insensitive to the choice).
pub fn execute_online(
    plan: &LogicalPlan,
    stream: &mut VideoStream<'_>,
    config: OnlineConfig,
) -> SvqResult<OnlineExecution> {
    match plan.mode {
        QueryMode::Online => {}
        QueryMode::Offline { .. } => {
            return Err(SvqError::InvalidQuery(
                "offline plan executed against a stream; use execute_offline".into(),
            ))
        }
    }
    let sequences = match &plan.predicate {
        PlannedPredicate::Simple(q) => {
            let OnlineResult { sequences, .. } = Svaqd::run(q.clone(), stream, config, 1e-4, 1e-4);
            sequences
        }
        PlannedPredicate::Cnf(q) => ExprSvaqd::run(q.clone(), stream, config, 1e-4, 1e-4),
    };
    Ok(OnlineExecution {
        sequences,
        cost: *stream.ledger(),
    })
}

/// Execute an offline plan against an ingested catalog.
pub fn execute_offline(
    plan: &LogicalPlan,
    catalog: &IngestedVideo,
    scoring: &dyn ScoringFunctions,
) -> SvqResult<TopKResult> {
    let k = match plan.mode {
        QueryMode::Offline { k } => k,
        QueryMode::Online => {
            return Err(SvqError::InvalidQuery(
                "online plan executed against a repository; use execute_online".into(),
            ))
        }
    };
    match &plan.predicate {
        PlannedPredicate::Simple(q) => Ok(Rvaq::run(catalog, q, scoring, RvaqOptions::new(k))),
        PlannedPredicate::Cnf(_) => Err(SvqError::InvalidQuery(
            "extended (CNF) predicates are supported online; the offline \
             engine requires the canonical single-action conjunction"
                .into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::sync::Arc;
    use svq_core::offline::ingest;
    use svq_types::{
        ActionClass, BBox, ClipId, FrameId, Interval, ObjectClass, PaperScoring, TrackId,
        VideoGeometry, VideoId,
    };
    use svq_vision::models::{DetectionOracle, ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};

    fn oracle() -> DetectionOracle {
        let mut gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 1_500);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(400), FrameId::new(999)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(500), FrameId::new(899)),
            salience: 1.0,
        });
        DetectionOracle::new(
            Arc::new(gt),
            ModelSuite::ideal(),
            &SceneConfusion::default(),
            0,
        )
    }

    #[test]
    fn end_to_end_online_statement() {
        let stmt = parse(
            "SELECT MERGE(clipID) AS Sequence \
             FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, \
             act USING ActionRecognizer) \
             WHERE act='jumping' AND obj.include('car')",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let result = execute_online(&plan, &mut stream, OnlineConfig::default()).unwrap();
        // jumping 500-899 = clips 10..=17; car covers it.
        assert_eq!(
            result.sequences,
            vec![Interval::new(ClipId::new(10), ClipId::new(17))]
        );
        assert!(result.cost.inference_ms() >= 0.0);
    }

    #[test]
    fn end_to_end_offline_statement() {
        let stmt = parse(
            "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) \
             FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, \
             act USING ActionRecognizer) \
             WHERE act='jumping' AND obj.include('car') \
             ORDER BY RANK(act, obj) LIMIT 1",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let oracle = oracle();
        let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let result = execute_offline(&plan, &catalog, &PaperScoring).unwrap();
        assert_eq!(result.ranked.len(), 1);
        assert_eq!(
            result.ranked[0].interval,
            Interval::new(ClipId::new(10), ClipId::new(17))
        );
    }

    #[test]
    fn mode_mismatch_is_rejected() {
        let stmt =
            parse("SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) WHERE act='jumping'")
                .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let oracle = oracle();
        let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        assert!(execute_offline(&plan, &catalog, &PaperScoring).is_err());
    }

    #[test]
    fn online_cnf_statement_executes() {
        let stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE (act='jumping' OR act='kissing') AND obj.include('car')",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let result = execute_online(&plan, &mut stream, OnlineConfig::default()).unwrap();
        assert_eq!(
            result.sequences,
            vec![Interval::new(ClipId::new(10), ClipId::new(17))]
        );
    }
}
