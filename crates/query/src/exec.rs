//! Plan execution: bind a [`LogicalPlan`] to the engines.
//!
//! Online plans run SVAQD (or the CNF engine for extended predicates) over
//! a [`VideoStream`]; offline plans run RVAQ over an [`IngestedVideo`].
//! Both entry points return the same [`QueryOutcome`] envelope — mode
//! payload, disk-access delta, and wall time — so the CLI and the bench
//! harness report either mode through one code path.

use crate::cluster::{self, ClusterTopK};
use crate::plan::{LogicalPlan, PlannedPredicate, QueryMode};
use serde::{DeError, Deserialize, Serialize, Value};
use std::time::Instant;
use svq_core::expr::ExprSvaqd;
use svq_core::offline::{Rvaq, RvaqOptions, TopKResult};
use svq_core::online::{OnlineConfig, OnlineResult, Svaqd};
use svq_storage::{DiskStats, IngestedVideo, VideoRepository};
use svq_types::{ClipInterval, ScoringFunctions, SvqError, SvqResult, VideoId};
use svq_vision::{CostLedger, VideoStream};

/// Mode-specific payload of a statement execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    /// Online (SVAQD / CNF) output: result sequences plus the simulated
    /// inference cost the stream accumulated.
    Online {
        sequences: Vec<ClipInterval>,
        cost: CostLedger,
    },
    /// Offline (RVAQ) output, with exact scores materialised so ranks are
    /// user-meaningful.
    Offline(TopKResult),
    /// Cluster-wide offline output: the scatter-gather merge of per-video
    /// top-Ks across the whole catalog (see [`crate::cluster`]).
    Cluster(ClusterTopK),
}

/// Uniform envelope returned by [`execute_online`] and [`execute_offline`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Mode-specific results.
    pub results: QueryResults,
    /// Simulated-disk accesses this execution performed. Always zero for
    /// online statements — SVAQD never touches the catalog store.
    pub disk: DiskStats,
    /// Wall-clock execution time of the engine call, in milliseconds.
    pub wall_ms: f64,
}

impl QueryOutcome {
    /// Result sequences in rank order (offline) or stream order (online).
    pub fn sequences(&self) -> Vec<ClipInterval> {
        match &self.results {
            QueryResults::Online { sequences, .. } => sequences.clone(),
            QueryResults::Offline(topk) => topk.ranked.iter().map(|r| r.interval).collect(),
            QueryResults::Cluster(topk) => topk.ranked.iter().map(|r| r.interval).collect(),
        }
    }

    /// Online payload, if this was an online execution.
    pub fn online(&self) -> Option<(&[ClipInterval], &CostLedger)> {
        match &self.results {
            QueryResults::Online { sequences, cost } => Some((sequences, cost)),
            _ => None,
        }
    }

    /// Offline payload, if this was a single-video offline execution.
    pub fn offline(&self) -> Option<&TopKResult> {
        match &self.results {
            QueryResults::Offline(topk) => Some(topk),
            _ => None,
        }
    }

    /// Cluster payload, if this was a catalog-wide offline execution.
    pub fn cluster(&self) -> Option<&ClusterTopK> {
        match &self.results {
            QueryResults::Cluster(topk) => Some(topk),
            _ => None,
        }
    }

    /// A copy with every real wall-clock field zeroed.
    ///
    /// Sequences, scores, bounds, simulated inference/I/O costs, disk
    /// accesses, and iteration counts are all deterministic for a fixed
    /// workload; only `wall_ms`, `cost.algorithm_ms`, and the offline
    /// `topk.wall_ms` measure the host machine. Comparing canonical forms
    /// (e.g. their serialized JSON) therefore proves two executions were
    /// byte-identical where identity is meaningful — the anchor the
    /// serve-throughput bench and the server tests rely on.
    pub fn canonical(&self) -> QueryOutcome {
        let mut out = self.clone();
        out.wall_ms = 0.0;
        match &mut out.results {
            QueryResults::Online { cost, .. } => cost.algorithm_ms = 0.0,
            QueryResults::Offline(topk) => topk.wall_ms = 0.0,
            QueryResults::Cluster(topk) => topk.wall_ms = 0.0,
        }
        out
    }
}

// The serde stand-in's derive does not support struct variants, so the
// externally-tagged-by-`mode` wire shape of `QueryResults` is hand-written:
// `{"mode": "online", "sequences": [...], "cost": {...}}` or
// `{"mode": "offline", "topk": {...}}`.
impl Serialize for QueryResults {
    fn to_value(&self) -> Value {
        match self {
            QueryResults::Online { sequences, cost } => Value::Object(vec![
                ("mode".into(), Value::Str("online".into())),
                ("sequences".into(), sequences.to_value()),
                ("cost".into(), cost.to_value()),
            ]),
            QueryResults::Offline(topk) => Value::Object(vec![
                ("mode".into(), Value::Str("offline".into())),
                ("topk".into(), topk.to_value()),
            ]),
            QueryResults::Cluster(topk) => Value::Object(vec![
                ("mode".into(), Value::Str("cluster".into())),
                ("topk".into(), topk.to_value()),
            ]),
        }
    }
}

impl Deserialize for QueryResults {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let mode = match value.get("mode") {
            Some(Value::Str(s)) => s.as_str(),
            Some(other) => return Err(DeError::expected("string `mode`", other)),
            None => return Err(DeError::missing_field("QueryResults", "mode")),
        };
        match mode {
            "online" => {
                let sequences = value
                    .get("sequences")
                    .ok_or_else(|| DeError::missing_field("QueryResults", "sequences"))
                    .and_then(Deserialize::from_value)?;
                let cost = value
                    .get("cost")
                    .ok_or_else(|| DeError::missing_field("QueryResults", "cost"))
                    .and_then(Deserialize::from_value)?;
                Ok(QueryResults::Online { sequences, cost })
            }
            "offline" => value
                .get("topk")
                .ok_or_else(|| DeError::missing_field("QueryResults", "topk"))
                .and_then(Deserialize::from_value)
                .map(QueryResults::Offline),
            "cluster" => value
                .get("topk")
                .ok_or_else(|| DeError::missing_field("QueryResults", "topk"))
                .and_then(Deserialize::from_value)
                .map(QueryResults::Cluster),
            other => Err(DeError(format!("unknown QueryResults mode {other:?}"))),
        }
    }
}

impl Serialize for QueryOutcome {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("results".into(), self.results.to_value()),
            ("disk".into(), self.disk.to_value()),
            ("wall_ms".into(), self.wall_ms.to_value()),
        ])
    }
}

impl Deserialize for QueryOutcome {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| DeError::missing_field("QueryOutcome", name))
        };
        Ok(QueryOutcome {
            results: Deserialize::from_value(field("results")?)?,
            disk: Deserialize::from_value(field("disk")?)?,
            wall_ms: Deserialize::from_value(field("wall_ms")?)?,
        })
    }
}

/// Execute an online plan over a stream with SVAQD defaults
/// (`p_obj_0 = p_act_0 = 1e-4`; SVAQD is insensitive to the choice).
pub fn execute_online(
    plan: &LogicalPlan,
    stream: &mut VideoStream<'_>,
    config: OnlineConfig,
) -> SvqResult<QueryOutcome> {
    match plan.mode {
        QueryMode::Online => {}
        QueryMode::Offline { .. } => {
            return Err(SvqError::InvalidQuery(
                "offline plan executed against a stream; use execute_offline".into(),
            ))
        }
    }
    let started = Instant::now();
    let sequences = match &plan.predicate {
        PlannedPredicate::Simple(q) => {
            let OnlineResult { sequences, .. } = Svaqd::run(q.clone(), stream, config, 1e-4, 1e-4);
            sequences
        }
        PlannedPredicate::Cnf(q) => ExprSvaqd::run(q.clone(), stream, config, 1e-4, 1e-4),
    };
    Ok(QueryOutcome {
        results: QueryResults::Online {
            sequences,
            cost: *stream.ledger(),
        },
        disk: DiskStats::default(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}

/// Execute an offline plan against an ingested catalog with exact scores.
pub fn execute_offline(
    plan: &LogicalPlan,
    catalog: &IngestedVideo,
    scoring: &dyn ScoringFunctions,
) -> SvqResult<QueryOutcome> {
    let k = match plan.mode {
        QueryMode::Offline { k } => k,
        QueryMode::Online => {
            return Err(SvqError::InvalidQuery(
                "online plan executed against a repository; use execute_online".into(),
            ))
        }
    };
    match &plan.predicate {
        PlannedPredicate::Simple(q) => {
            let started = Instant::now();
            let topk = Rvaq::run(catalog, q, scoring, RvaqOptions::new(k).with_exact_scores());
            let disk = topk.disk;
            Ok(QueryOutcome {
                results: QueryResults::Offline(topk),
                disk,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
            })
        }
        PlannedPredicate::Cnf(_) => Err(SvqError::InvalidQuery(
            "extended (CNF) predicates are supported online; the offline \
             engine requires the canonical single-action conjunction"
                .into(),
        )),
    }
}

/// Execute an offline plan against *every* video of a repository and merge
/// the per-video top-Ks into one cluster-wide [`QueryResults::Cluster`]
/// outcome.
///
/// Videos run in `VideoId` order — the repository iterates its `BTreeMap` —
/// so the execution (and therefore every deterministic field of the
/// outcome) is a pure function of the catalog contents. The cluster router
/// reproduces exactly this result by merging shard-local answers; see
/// [`crate::cluster`] for why the grouping cannot change a byte.
pub fn execute_offline_all(
    plan: &LogicalPlan,
    repo: &VideoRepository,
    scoring: &dyn ScoringFunctions,
) -> SvqResult<QueryOutcome> {
    execute_offline_all_with(plan, repo, scoring, |_, _| ())
}

/// [`execute_offline_all`] with a per-video hook: called after each
/// catalog fetch with `(video, cache_hit)`, and whatever it returns (e.g.
/// a per-video execution gate's guard) is held across that video's
/// execution. `svq-serve` hooks its hit/miss counters and query gates in
/// here, so the served cluster path *is* the library path — byte identity
/// by construction rather than by parallel implementation.
pub fn execute_offline_all_with<G>(
    plan: &LogicalPlan,
    repo: &VideoRepository,
    scoring: &dyn ScoringFunctions,
    mut per_video: impl FnMut(VideoId, bool) -> G,
) -> SvqResult<QueryOutcome> {
    let k = match plan.mode {
        QueryMode::Offline { k } => k,
        QueryMode::Online => {
            return Err(SvqError::InvalidQuery(
                "online plan executed against a repository; use execute_online".into(),
            ))
        }
    };
    let started = Instant::now();
    let mut parts = Vec::new();
    let mut disk = DiskStats::default();
    for video in repo.video_ids().collect::<Vec<_>>() {
        let Some((catalog, hit)) = repo.fetch(video)? else {
            continue;
        };
        let _guard = per_video(video, hit);
        let outcome = execute_offline(plan, &catalog, scoring)?;
        let topk = outcome
            .offline()
            .expect("execute_offline returns an offline payload");
        disk.sorted_accesses += topk.disk.sorted_accesses;
        disk.random_accesses += topk.disk.random_accesses;
        parts.push(cluster::part_of_video(video, topk));
    }
    let (mut merged, _stats) = cluster::merge_cluster(k, parts);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    merged.wall_ms = wall_ms;
    Ok(QueryOutcome {
        results: QueryResults::Cluster(merged),
        disk,
        wall_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::sync::Arc;
    use svq_core::offline::ingest;
    use svq_types::{
        ActionClass, BBox, ClipId, FrameId, Interval, ObjectClass, PaperScoring, TrackId,
        VideoGeometry, VideoId,
    };
    use svq_vision::models::{DetectionOracle, ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};

    fn oracle() -> DetectionOracle {
        let mut gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 1_500);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(400), FrameId::new(999)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(500), FrameId::new(899)),
            salience: 1.0,
        });
        DetectionOracle::new(
            Arc::new(gt),
            ModelSuite::ideal(),
            &SceneConfusion::default(),
            0,
        )
    }

    #[test]
    fn end_to_end_online_statement() {
        let stmt = parse(
            "SELECT MERGE(clipID) AS Sequence \
             FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, \
             act USING ActionRecognizer) \
             WHERE act='jumping' AND obj.include('car')",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let result = execute_online(&plan, &mut stream, OnlineConfig::default()).unwrap();
        // jumping 500-899 = clips 10..=17; car covers it.
        assert_eq!(
            result.sequences(),
            vec![Interval::new(ClipId::new(10), ClipId::new(17))]
        );
        let (sequences, cost) = result.online().unwrap();
        assert_eq!(sequences, result.sequences().as_slice());
        assert!(cost.inference_ms() >= 0.0);
        assert!(result.offline().is_none());
        assert_eq!(result.disk, DiskStats::default());
        assert!(result.wall_ms >= 0.0);
    }

    #[test]
    fn end_to_end_offline_statement() {
        let stmt = parse(
            "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) \
             FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, \
             act USING ActionRecognizer) \
             WHERE act='jumping' AND obj.include('car') \
             ORDER BY RANK(act, obj) LIMIT 1",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let oracle = oracle();
        let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let result = execute_offline(&plan, &catalog, &PaperScoring).unwrap();
        let topk = result.offline().unwrap();
        assert_eq!(topk.ranked.len(), 1);
        assert_eq!(
            topk.ranked[0].interval,
            Interval::new(ClipId::new(10), ClipId::new(17))
        );
        // Exact scores are materialised for user-facing ranks.
        assert!(topk.ranked[0].exact.is_some());
        assert_eq!(result.sequences(), vec![topk.ranked[0].interval]);
        assert_eq!(result.disk, topk.disk);
        assert!(result.online().is_none());
    }

    #[test]
    fn mode_mismatch_is_rejected() {
        let stmt =
            parse("SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) WHERE act='jumping'")
                .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let oracle = oracle();
        let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        assert!(execute_offline(&plan, &catalog, &PaperScoring).is_err());
    }

    #[test]
    fn outcome_json_round_trips_both_modes() {
        let online_stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE act='jumping' AND obj.include('car')",
        )
        .unwrap();
        let offline_stmt = parse(
            "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS v PRODUCE clipID) \
             WHERE act='jumping' AND obj.include('car') \
             ORDER BY RANK(act, obj) LIMIT 2",
        )
        .unwrap();
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let online = execute_online(
            &LogicalPlan::from_statement(&online_stmt).unwrap(),
            &mut stream,
            OnlineConfig::default(),
        )
        .unwrap();
        let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let offline = execute_offline(
            &LogicalPlan::from_statement(&offline_stmt).unwrap(),
            &catalog,
            &PaperScoring,
        )
        .unwrap();
        for outcome in [online, offline] {
            let json = serde_json::to_string(&outcome).unwrap();
            let back: QueryOutcome = serde_json::from_str(&json).unwrap();
            assert_eq!(back, outcome, "JSON round-trip must be lossless");
            // Canonicalisation zeroes exactly the wall-clock fields, so two
            // canonical encodings of the same logical result are equal bytes.
            let canon = serde_json::to_string(&outcome.canonical()).unwrap();
            assert_eq!(
                canon,
                serde_json::to_string(&back.canonical()).unwrap(),
                "canonical forms are byte-identical"
            );
            assert_eq!(outcome.canonical().wall_ms, 0.0);
        }
    }

    #[test]
    fn results_deserialize_rejects_bad_mode() {
        let err = serde_json::from_str::<QueryResults>("{\"mode\": \"sideways\"}");
        assert!(err.is_err());
        let err = serde_json::from_str::<QueryResults>("{\"sequences\": []}");
        assert!(err.is_err());
    }

    #[test]
    fn online_cnf_statement_executes() {
        let stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE (act='jumping' OR act='kissing') AND obj.include('car')",
        )
        .unwrap();
        let plan = LogicalPlan::from_statement(&stmt).unwrap();
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let result = execute_online(&plan, &mut stream, OnlineConfig::default()).unwrap();
        assert_eq!(
            result.sequences(),
            vec![Interval::new(ClipId::new(10), ClipId::new(17))]
        );
    }
}
