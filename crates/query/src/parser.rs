//! Recursive-descent parser for the SVQ-ACT dialect.

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};
use svq_types::{SvqError, SvqResult};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn offset(&self) -> usize {
        self.peek().map_or(usize::MAX, |s| s.offset)
    }

    fn err<T>(&self, message: impl Into<String>) -> SvqResult<T> {
        Err(SvqError::Parse {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume an identifier matching `kw` case-insensitively.
    fn keyword(&mut self, kw: &str) -> SvqResult<()> {
        match self.peek() {
            Some(Spanned {
                tok: Tok::Ident(s), ..
            }) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => self.err(format!("expected {kw}")),
        }
    }

    /// Whether the next token is the given keyword (without consuming).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Spanned { tok: Tok::Ident(s), .. })
            if s.eq_ignore_ascii_case(kw))
    }

    fn expect(&mut self, tok: Tok, what: &str) -> SvqResult<()> {
        match self.peek() {
            Some(s) if s.tok == tok => {
                self.pos += 1;
                Ok(())
            }
            _ => self.err(format!("expected {what}")),
        }
    }

    fn ident(&mut self, what: &str) -> SvqResult<String> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Ident(s), ..
            }) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected {what}"))
            }
        }
    }

    fn string(&mut self, what: &str) -> SvqResult<String> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Str(s), ..
            }) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected {what}"))
            }
        }
    }

    // SELECT item: MERGE(clipID) [AS alias] | RANK(act, obj)
    fn select_item(&mut self) -> SvqResult<SelectItem> {
        if self.at_keyword("MERGE") {
            self.keyword("MERGE")?;
            self.expect(Tok::LParen, "(")?;
            let col = self.ident("clipID")?;
            if !col.eq_ignore_ascii_case("clipid") {
                return self.err("MERGE takes clipID");
            }
            self.expect(Tok::RParen, ")")?;
            let alias = if self.at_keyword("AS") {
                self.keyword("AS")?;
                Some(self.ident("alias")?)
            } else {
                None
            };
            Ok(SelectItem::MergeClipId { alias })
        } else if self.at_keyword("RANK") {
            self.keyword("RANK")?;
            self.expect(Tok::LParen, "(")?;
            // Accept any identifier list inside RANK(...).
            loop {
                self.ident("rank argument")?;
                if matches!(
                    self.peek(),
                    Some(Spanned {
                        tok: Tok::Comma,
                        ..
                    })
                ) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen, ")")?;
            Ok(SelectItem::Rank)
        } else {
            self.err("expected MERGE(clipID) or RANK(...)")
        }
    }

    // FROM ( PROCESS source PRODUCE name [USING Model] {, name [USING Model]} )
    fn process_clause(&mut self) -> SvqResult<ProcessClause> {
        self.keyword("FROM")?;
        self.expect(Tok::LParen, "(")?;
        self.keyword("PROCESS")?;
        let source = self.ident("source name")?;
        self.keyword("PRODUCE")?;
        let mut produces = Vec::new();
        loop {
            let name = self.ident("produced binding")?;
            let using = if self.at_keyword("USING") {
                self.keyword("USING")?;
                Some(self.ident("model name")?)
            } else {
                None
            };
            produces.push(Produce { name, using });
            if matches!(
                self.peek(),
                Some(Spanned {
                    tok: Tok::Comma,
                    ..
                })
            ) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(Tok::RParen, ")")?;
        Ok(ProcessClause { source, produces })
    }

    // predicate := term {AND term} ; term := factor {OR factor}
    // Standard precedence: AND binds tighter than OR in SQL — but the
    // paper's examples only chain ANDs; we give OR the *lower* precedence
    // as in SQL.
    fn predicate(&mut self) -> SvqResult<Expr> {
        let mut left = self.conjunction()?;
        while self.at_keyword("OR") {
            self.keyword("OR")?;
            let right = self.conjunction()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> SvqResult<Expr> {
        let mut left = self.factor()?;
        while self.at_keyword("AND") {
            self.keyword("AND")?;
            let right = self.factor()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn factor(&mut self) -> SvqResult<Expr> {
        if matches!(
            self.peek(),
            Some(Spanned {
                tok: Tok::LParen,
                ..
            })
        ) {
            self.pos += 1;
            let e = self.predicate()?;
            self.expect(Tok::RParen, ")")?;
            return Ok(e);
        }
        let name = self.ident("predicate")?;
        if name.eq_ignore_ascii_case("act") {
            self.expect(Tok::Eq, "=")?;
            let action = self.string("action name")?;
            Ok(Expr::ActionEq(action))
        } else if name.eq_ignore_ascii_case("obj") {
            self.expect(Tok::Dot, ".")?;
            let method = self.ident("include")?;
            if !(method.eq_ignore_ascii_case("include") || method.eq_ignore_ascii_case("inc")) {
                return self.err("expected obj.include(...)");
            }
            self.expect(Tok::LParen, "(")?;
            let mut objs = vec![self.string("object name")?];
            while matches!(
                self.peek(),
                Some(Spanned {
                    tok: Tok::Comma,
                    ..
                })
            ) {
                self.pos += 1;
                objs.push(self.string("object name")?);
            }
            self.expect(Tok::RParen, ")")?;
            Ok(Expr::ObjInclude(objs))
        } else if name.eq_ignore_ascii_case("leftof") {
            self.expect(Tok::LParen, "(")?;
            let a = self.string("object name")?;
            self.expect(Tok::Comma, ",")?;
            let b = self.string("object name")?;
            self.expect(Tok::RParen, ")")?;
            Ok(Expr::LeftOf(a, b))
        } else {
            self.pos -= 1;
            self.err("expected act=…, obj.include(…), or leftOf(…)")
        }
    }

    fn statement(&mut self) -> SvqResult<Statement> {
        self.keyword("SELECT")?;
        let mut select = vec![self.select_item()?];
        while matches!(
            self.peek(),
            Some(Spanned {
                tok: Tok::Comma,
                ..
            })
        ) {
            self.pos += 1;
            select.push(self.select_item()?);
        }
        let from = self.process_clause()?;
        self.keyword("WHERE")?;
        let predicate = self.predicate()?;
        let mut order_by_rank = false;
        let mut limit = None;
        if self.at_keyword("ORDER") {
            self.keyword("ORDER")?;
            self.keyword("BY")?;
            let item = self.select_item()?;
            if item != SelectItem::Rank {
                return self.err("ORDER BY supports RANK(...) only");
            }
            order_by_rank = true;
        }
        if self.at_keyword("LIMIT") {
            self.keyword("LIMIT")?;
            match self.next() {
                Some(Spanned {
                    tok: Tok::Int(n), ..
                }) => limit = Some(n),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected LIMIT count");
                }
            }
        }
        if self.pos != self.toks.len() {
            return self.err("unexpected trailing tokens");
        }
        Ok(Statement {
            select,
            from,
            predicate,
            order_by_rank,
            limit,
        })
    }
}

/// Parse one statement.
pub fn parse(src: &str) -> SvqResult<Statement> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONLINE: &str = "SELECT MERGE(clipID) AS Sequence \
        FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, \
        act USING ActionRecognizer) \
        WHERE act='jumping' AND obj.include('car', 'person')";

    const OFFLINE: &str = "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) \
        FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, \
        act USING ActionRecognizer) \
        WHERE act='jumping' AND obj.include('car', 'person') \
        ORDER BY RANK(act, obj) LIMIT 5";

    #[test]
    fn parses_the_papers_online_statement() {
        let stmt = parse(ONLINE).unwrap();
        assert_eq!(
            stmt.select,
            vec![SelectItem::MergeClipId {
                alias: Some("Sequence".into())
            }]
        );
        assert_eq!(stmt.from.source, "inputVideo");
        assert_eq!(stmt.from.produces.len(), 3);
        assert_eq!(
            stmt.from.produces[1].using.as_deref(),
            Some("ObjectDetector")
        );
        assert!(!stmt.order_by_rank);
        assert_eq!(stmt.limit, None);
        match stmt.predicate {
            Expr::And(a, b) => {
                assert_eq!(*a, Expr::ActionEq("jumping".into()));
                assert_eq!(*b, Expr::ObjInclude(vec!["car".into(), "person".into()]));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parses_the_papers_offline_statement() {
        let stmt = parse(OFFLINE).unwrap();
        assert_eq!(stmt.select.len(), 2);
        assert!(stmt.order_by_rank);
        assert_eq!(stmt.limit, Some(5));
    }

    #[test]
    fn parses_disjunction_and_parens() {
        let stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE (act='jumping' OR act='kissing') AND obj.include('person')",
        )
        .unwrap();
        match stmt.predicate {
            Expr::And(l, _) => assert!(matches!(*l, Expr::Or(_, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_leftof_extension() {
        let stmt = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE leftOf('car','person') AND act='jumping'",
        )
        .unwrap();
        match stmt.predicate {
            Expr::And(l, _) => {
                assert_eq!(*l, Expr::LeftOf("car".into(), "person".into()))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_messages_carry_offsets() {
        let err = parse("SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID)").unwrap_err();
        assert!(err.to_string().contains("expected WHERE"), "{err}");
        let err = parse("SELECT MERGE(frameID) FROM (PROCESS v PRODUCE clipID) WHERE act='x'")
            .unwrap_err();
        assert!(err.to_string().contains("MERGE takes clipID"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err =
            parse("SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) WHERE act='x' nonsense")
                .unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn order_by_requires_rank() {
        let err = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID) \
             WHERE act='x' ORDER BY MERGE(clipID)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("RANK"), "{err}");
    }
}
