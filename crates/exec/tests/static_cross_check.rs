//! Soundness gate for the static lock graph in `svq-lint`: every lock
//! ordering the runtime auditor actually observes while the executor
//! workload runs must be covered by the statically derived graph.
//!
//! The two analyses speak one currency — `((holder file, holder line),
//! (acquired file, acquired line))` site pairs — so no lock identities
//! need to be shared. A runtime edge the static pass missed means the
//! guard walker or the call-graph resolver lost track of a region, and
//! the static `lock-cycle` / `blocking-under-lock` rules can no longer be
//! trusted. Compiled only under
//! `cargo test -p svq-exec --features lock-audit`.

#![cfg(feature = "lock-audit")]

use std::sync::Arc;
use svq_core::online::OnlineConfig;
use svq_core::Svaqd;
use svq_exec::{Backpressure, ExecMetrics, MuxOptions, SessionEngine, SessionMux};
use svq_types::{
    ActionClass, ActionQuery, BBox, FrameId, Interval, ObjectClass, TrackId, VideoGeometry, VideoId,
};
use svq_vision::models::{DetectionOracle, ModelSuite, SceneConfusion};
use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};

/// 40 clips; car & jumping on clips 12..=19.
fn oracle(video: u64, seed: u64) -> Arc<DetectionOracle> {
    let mut gt = GroundTruth::new(VideoId::new(video), VideoGeometry::default(), 2_000);
    gt.tracks.push(ObjectTrack {
        class: ObjectClass::named("car"),
        track: TrackId::new(1),
        frames: Interval::new(FrameId::new(600), FrameId::new(999)),
        visibility: 1.0,
        bbox: BBox::FULL,
    });
    gt.actions.push(ActionSpan {
        class: ActionClass::named("jumping"),
        frames: Interval::new(FrameId::new(600), FrameId::new(999)),
        salience: 1.0,
    });
    let confusion = SceneConfusion {
        objects: vec![(ObjectClass::named("car"), 1.0)],
        actions: vec![(ActionClass::named("jumping"), 1.0)],
    };
    Arc::new(DetectionOracle::new(
        Arc::new(gt),
        ModelSuite::accurate(),
        &confusion,
        seed,
    ))
}

fn engine(oracle: &DetectionOracle) -> SessionEngine {
    SessionEngine::Svaqd(Svaqd::new(
        ActionQuery::named("jumping", &["car"]),
        oracle.truth().geometry,
        OnlineConfig::default(),
        1e-4,
        1e-4,
    ))
}

#[test]
fn runtime_lock_edges_are_covered_by_the_static_graph() {
    parking_lot::lock_audit::reset();

    // The same mux workload the inversion audit drives: many sessions,
    // shared worker pool, backpressure, metrics, pacing.
    let mux = SessionMux::with_options(
        MuxOptions::new(4).with_shards(2).with_drain_batch(4),
        ExecMetrics::new(),
    );
    // The reporter thread snapshots under its stop guard — the executor's
    // nested first-party acquisitions (`stop` → `sessions`/`shards`).
    let reporter = mux
        .metrics()
        .spawn_reporter(std::time::Duration::from_millis(1), |_snap| {});
    let oracles: Vec<_> = (0..6).map(|i| oracle(i, 300 + i)).collect();
    let ids: Vec<_> = oracles
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let id = mux.register(
                format!("cross-{i}"),
                o.clone(),
                engine(o),
                Backpressure::Block,
                8,
            );
            if i % 2 == 0 {
                mux.set_pacing(id, 1e-6);
            }
            id
        })
        .collect();
    mux.feed_streams(&ids);
    for &id in &ids {
        let result = mux.wait(id).expect("session completes");
        assert_eq!(result.clips_processed, 40);
    }
    let _ = mux.metrics().snapshot();
    reporter.stop();
    mux.shutdown();

    // Only edges with both endpoints in first-party code are in scope:
    // the vendored stand-ins (crossbeam channels are built on parking_lot
    // mutexes) take locks of their own that the workspace analyzer
    // deliberately does not model.
    let observed: Vec<_> = parking_lot::lock_audit::edge_sites()
        .into_iter()
        .filter(|((hf, _), (af, _))| hf.starts_with("crates/") && af.starts_with("crates/"))
        .collect();
    assert!(
        !observed.is_empty(),
        "workload recorded no first-party lock edges; the gate is vacuous"
    );

    let root = svq_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let graph = svq_lint::lock_graph(&root).expect("static analysis runs");

    let missing: Vec<String> = observed
        .iter()
        .filter(|((hf, hl), (af, al))| !graph.covers((hf, *hl), (af, *al)))
        .map(|((hf, hl), (af, al))| format!("holding {hf}:{hl} acquired {af}:{al}"))
        .collect();
    assert!(
        missing.is_empty(),
        "{} runtime lock edge(s) missing from the static lock graph \
         (the guard walker or call resolver lost a region):\n{}",
        missing.len(),
        missing.join("\n"),
    );
}
