//! The real executor workload must be free of lock-order inversions.
//!
//! Runs the session multiplexer end-to-end — many sessions, shared worker
//! pool, backpressure, metrics — with parking_lot's `lock-audit` feature
//! recording every acquisition into the global order graph, then asserts
//! the graph is acyclic. Compiled only under
//! `cargo test -p svq-exec --features lock-audit`.

#![cfg(feature = "lock-audit")]

use std::sync::Arc;
use svq_core::online::OnlineConfig;
use svq_core::Svaqd;
use svq_exec::{Backpressure, ExecMetrics, MuxOptions, SessionEngine, SessionMux};
use svq_types::{
    ActionClass, ActionQuery, BBox, FrameId, Interval, ObjectClass, TrackId, VideoGeometry, VideoId,
};
use svq_vision::models::{DetectionOracle, ModelSuite, SceneConfusion};
use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};

/// 40 clips; car & jumping on clips 12..=19.
fn oracle(video: u64, seed: u64) -> Arc<DetectionOracle> {
    let mut gt = GroundTruth::new(VideoId::new(video), VideoGeometry::default(), 2_000);
    gt.tracks.push(ObjectTrack {
        class: ObjectClass::named("car"),
        track: TrackId::new(1),
        frames: Interval::new(FrameId::new(600), FrameId::new(999)),
        visibility: 1.0,
        bbox: BBox::FULL,
    });
    gt.actions.push(ActionSpan {
        class: ActionClass::named("jumping"),
        frames: Interval::new(FrameId::new(600), FrameId::new(999)),
        salience: 1.0,
    });
    let confusion = SceneConfusion {
        objects: vec![(ObjectClass::named("car"), 1.0)],
        actions: vec![(ActionClass::named("jumping"), 1.0)],
    };
    Arc::new(DetectionOracle::new(
        Arc::new(gt),
        ModelSuite::accurate(),
        &confusion,
        seed,
    ))
}

fn engine(oracle: &DetectionOracle) -> SessionEngine {
    SessionEngine::Svaqd(Svaqd::new(
        ActionQuery::named("jumping", &["car"]),
        oracle.truth().geometry,
        OnlineConfig::default(),
        1e-4,
        1e-4,
    ))
}

#[test]
fn mux_workload_has_no_lock_order_inversions() {
    parking_lot::lock_audit::reset();

    let mux = SessionMux::with_options(
        MuxOptions::new(4).with_shards(2).with_drain_batch(4),
        ExecMetrics::new(),
    );
    let oracles: Vec<_> = (0..6).map(|i| oracle(i, 100 + i)).collect();
    let ids: Vec<_> = oracles
        .iter()
        .enumerate()
        .map(|(i, o)| {
            mux.register(
                format!("audited-{i}"),
                o.clone(),
                engine(o),
                Backpressure::Block,
                8,
            )
        })
        .collect();
    for &id in &ids {
        mux.feed_stream(id);
    }
    for &id in &ids {
        let result = mux.wait(id).expect("session completes");
        assert_eq!(result.clips_processed, 40);
    }
    let snapshot = mux.metrics().snapshot();
    assert_eq!(snapshot.total_clips, 240);
    mux.shutdown();

    let reports = parking_lot::lock_audit::reports();
    assert!(
        reports.is_empty(),
        "executor workload produced lock-order inversions:\n{}",
        reports
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Regression for the pacing sleep that used to run inside the session
/// state lock: the drain loop now asserts — via the auditor's per-thread
/// held stack — that no audited lock is held when it sleeps. If the sleep
/// ever moves back under a guard, the assertion panics in the worker,
/// which poisons the session and fails this wait.
#[test]
fn pacing_sleep_runs_outside_all_audited_locks() {
    let mux = SessionMux::with_options(
        MuxOptions::new(2).with_shards(2).with_drain_batch(4),
        ExecMetrics::new(),
    );
    let oracles: Vec<_> = (0..2).map(|i| oracle(10 + i, 70 + i)).collect();
    let ids: Vec<_> = oracles
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let id = mux.register(
                format!("paced-{i}"),
                o.clone(),
                engine(o),
                Backpressure::Block,
                4,
            );
            // Large enough that every drain batch actually sleeps.
            mux.set_pacing(id, 1e-6);
            id
        })
        .collect();
    mux.feed_streams(&ids);
    for &id in &ids {
        let result = mux
            .wait(id)
            .expect("a guard held across the pacing sleep would poison this session");
        assert_eq!(result.clips_processed, 40);
    }
    mux.shutdown();
}
