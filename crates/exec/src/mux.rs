//! Concurrent session multiplexer.
//!
//! A *session* pairs one parsed query's online engine ([`Svaqd`] or
//! [`ExprSvaqd`]) with one video stream, identified by the oracle it reads.
//! The multiplexer runs many sessions over one [`WorkerPool`]: the accept
//! path enqueues lightweight clip tickets into per-shard ingress queues
//! (see [`crate::ingress`]), shard feeder threads move them into
//! per-session mailboxes (bounded crossbeam channels), and workers perform
//! the heavy per-clip model reads and engine evaluation, pulling up to
//! [`MuxOptions::drain_batch`] tickets per state-lock acquisition.
//!
//! Three properties anchor the design:
//!
//! * **Determinism.** A session is an actor: at most one worker drains a
//!   given mailbox at a time (an atomic `scheduled` flag arbitrates), and a
//!   mailbox is FIFO, so each engine consumes its clips in exactly feed
//!   order regardless of worker count, shard count, or drain batch size. A
//!   multiplexed run is therefore byte-identical to running its sessions
//!   sequentially.
//! * **Isolation.** A panic while evaluating a clip poisons only the owning
//!   session — its remaining tickets are discarded and [`SessionMux::wait`]
//!   reports [`SessionError::Poisoned`] — while every other session and the
//!   pool keep running. Likewise a session stalled on a full
//!   [`Backpressure::Block`] mailbox stalls only its shard's feeder, never
//!   the accept path and never other shards.
//! * **Liveness.** [`SessionMux::feed`] never blocks the caller,
//!   [`SessionMux::wait`] is idempotent (a condvar-guarded result latch, so
//!   repeated waits return the same result instead of deadlocking), and the
//!   pacing sleep that simulates model-inference wait runs outside every
//!   lock.
//!
//! Backpressure on a full mailbox is per session: [`Backpressure::Block`]
//! stalls the shard feeder (lossless, what query sessions want) while
//! [`Backpressure::DropOldest`] sheds the oldest waiting clip and counts it
//! (what live monitoring dashboards want).

use crate::ingress::Ingress;
use crate::metrics::{ExecMetrics, SessionCounters, ShardCounters};
use crate::pool::WorkerPool;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use svq_core::expr::ExprSvaqd;
use svq_core::online::{ClipEvaluation, Svaqd};
use svq_types::{ClipId, ClipInterval};
use svq_vision::models::DetectionOracle;
use svq_vision::{ClipAccess, CostLedger, OwnedClipView};

/// Mailbox policy when a session's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the shard feeder until the worker catches up (lossless).
    #[default]
    Block,
    /// Drop the oldest waiting clip and count it in the session metrics.
    DropOldest,
}

/// Sentinel clip id whose evaluation deterministically panics the worker —
/// the fault-injection hook behind `svq-sim`'s worker-panic scenarios. The
/// panic is an explicit assert, not an arithmetic-overflow trap, so it
/// fires identically in debug and release builds. `u64::MAX` can never
/// name a real clip: every geometry computation overflows long before.
pub const POISON_CLIP: ClipId = ClipId::new(u64::MAX);

/// The per-session online engine.
// Variant sizes differ (~576 vs ~360 bytes) but a value is moved exactly
// once, into its session, so boxing would only add indirection to push_clip.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SessionEngine {
    Svaqd(Svaqd),
    Expr(ExprSvaqd),
}

impl SessionEngine {
    fn push_clip(&mut self, view: &mut OwnedClipView) -> Option<ClipInterval> {
        assert!(
            view.clip() != POISON_CLIP,
            "poison clip evaluated (injected worker fault)"
        );
        match self {
            SessionEngine::Svaqd(e) => e.push_clip(view),
            SessionEngine::Expr(e) => e.push_clip(view),
        }
    }

    fn finish(self) -> (Vec<ClipInterval>, Vec<ClipEvaluation>) {
        match self {
            SessionEngine::Svaqd(e) => e.finish(),
            SessionEngine::Expr(e) => (e.finish(), Vec::new()),
        }
    }

    /// The dynamic p(t) estimator's current drift surface: per-predicate
    /// background activation estimates and the matching critical run
    /// lengths, positionally aligned (objects in query order, then the
    /// action; distinct-predicate order for CNF engines).
    fn drift(&self) -> (Vec<f64>, Vec<u32>) {
        match self {
            SessionEngine::Svaqd(e) => {
                let crit = e.criticals();
                let mut criticals = crit.objects.clone();
                criticals.push(crit.action);
                (e.backgrounds(), criticals)
            }
            SessionEngine::Expr(e) => (e.backgrounds(), e.criticals()),
        }
    }
}

/// What a per-clip observer (see [`SessionMux::set_observer`]) is handed
/// after each successfully evaluated clip.
#[derive(Debug, Clone)]
pub struct ClipNotice {
    /// The evaluated clip.
    pub clip: ClipId,
    /// The result interval this clip closed, if any.
    pub closed: Option<ClipInterval>,
    /// Clips the session has evaluated so far, this one included (a
    /// 1-based position in the session's feed order).
    pub clips_processed: u64,
    /// Per-predicate background activation estimates (objects in query
    /// order then the action; distinct-predicate order for CNF).
    pub backgrounds: Vec<f64>,
    /// Critical run lengths matching `backgrounds` positionally.
    pub criticals: Vec<u32>,
}

/// Per-clip observer hook; runs on the draining worker, outside every mux
/// lock.
type ClipObserver = Box<dyn Fn(ClipNotice) + Send + Sync>;

/// Handle to a registered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

/// What a finished session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Result sequences, as the engine's `finish` reports them.
    pub sequences: Vec<ClipInterval>,
    /// Per-clip evaluation trace (empty for [`SessionEngine::Expr`]).
    pub evaluations: Vec<ClipEvaluation>,
    /// Inference cost charged by this session's clip evaluations.
    pub cost: CostLedger,
    /// Clips evaluated (excludes dropped tickets).
    pub clips_processed: u64,
    /// Tickets shed by [`Backpressure::DropOldest`].
    pub dropped: u64,
}

/// Why a session failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// A clip evaluation panicked; the session's remaining work was
    /// discarded. Other sessions are unaffected.
    Poisoned,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Poisoned => {
                write!(f, "session poisoned by a panicking clip evaluation")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Why a [`SessionMux::feed`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedError {
    /// [`SessionMux::finish_session`] was already called for the session. A
    /// late ticket would race finalisation and be silently dropped with the
    /// queue-depth gauge left skewed, so it is a hard error in every build
    /// profile.
    SessionClosed,
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::SessionClosed => {
                write!(f, "feed after finish_session: the stream is closed")
            }
        }
    }
}

impl std::error::Error for FeedError {}

/// Construction knobs for [`SessionMux`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxOptions {
    /// Worker threads evaluating clips.
    pub workers: usize,
    /// Ingress shards (feeder threads); streams hash to shards by
    /// `VideoId`, so a blocked mailbox stalls only its shard.
    pub shards: usize,
    /// Clip tickets a worker pulls from a session mailbox per state-lock
    /// acquisition; batching amortises mailbox and metrics overhead for
    /// short clips. `1` evaluates ticket-at-a-time.
    pub drain_batch: usize,
}

impl MuxOptions {
    /// Defaults: one ingress shard, unbatched drains.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            shards: 1,
            drain_batch: 1,
        }
    }

    /// Builder-style override of the ingress shard count (min 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style override of the drain batch size (min 1).
    pub fn with_drain_batch(mut self, drain_batch: usize) -> Self {
        self.drain_batch = drain_batch.max(1);
        self
    }
}

/// Completion hook registered by [`SessionMux::on_result`]; runs on the
/// worker that finalises the session (or inline when already finished).
type ResultCallback = Box<dyn FnOnce(Result<SessionResult, SessionError>) + Send>;

pub(crate) struct SessionState {
    engine: Option<SessionEngine>,
    ledger: CostLedger,
    clips_processed: u64,
    poisoned: bool,
    result: Option<Result<SessionResult, SessionError>>,
    /// Hooks to run once `result` latches, invoked after the state guard
    /// drops so a callback may call back into the mux.
    callbacks: Vec<ResultCallback>,
}

pub(crate) struct Session {
    tx: Sender<ClipId>,
    rx: Receiver<ClipId>,
    /// Shared read-only clip source; outside the state mutex so feeders can
    /// read stream metadata (e.g. [`DetectionOracle::clip_count`]) without
    /// contending with evaluation.
    oracle: Arc<DetectionOracle>,
    state: Mutex<SessionState>,
    /// Signalled once `state.result` is latched; makes `wait` idempotent.
    done: Condvar,
    /// True while a worker owns (or is committed to owning) the drain loop.
    scheduled: AtomicBool,
    /// Accept-side: set by `finish_session`; later feeds are hard errors.
    closed: AtomicBool,
    /// Drain-side: set once the shard feeder delivered end-of-stream.
    finishing: AtomicBool,
    /// Wall seconds slept per *simulated* inference second (bits of `f64`).
    pacing: AtomicU64,
    /// Set-once per-clip observer ([`SessionMux::set_observer`]); a
    /// `OnceLock` so the drain loop reads it without any lock-order
    /// entanglement with `state`.
    observer: std::sync::OnceLock<ClipObserver>,
    policy: Backpressure,
    /// Mailbox pulls per state-lock acquisition (from [`MuxOptions`]).
    drain_batch: usize,
    /// The ingress shard this session's stream hashes to.
    shard: usize,
    counters: Arc<SessionCounters>,
}

/// What the accept path hands a shard feeder.
pub(crate) enum IngressEvent {
    /// Deliver one clip ticket into the session's mailbox.
    Feed(Arc<Session>, ClipId),
    /// Deliver the end-of-stream marker (ordered behind prior feeds).
    Finish(Arc<Session>),
}

/// Everything shared between the accept path, the shard feeders, and the
/// worker pool. Feeders hold an `Arc` so they can schedule drains after the
/// `SessionMux` handle itself is consumed by `shutdown`.
pub(crate) struct MuxCore {
    pub(crate) pool: WorkerPool,
    /// Slot table: `None` marks a released slot awaiting reuse, so a
    /// long-lived server registering a session per `stream` request keeps
    /// the table (and the ids it hands out) bounded by its concurrency,
    /// not its uptime.
    sessions: Mutex<Vec<Option<Arc<Session>>>>,
    drain_batch: usize,
}

/// Multiplexes many query sessions over one worker pool behind a sharded
/// asynchronous ingress.
pub struct SessionMux {
    // Declared before `core`: dropping the mux joins the shard feeders
    // (draining every queued ticket) before the pool shuts down.
    ingress: Ingress,
    core: Arc<MuxCore>,
}

impl SessionMux {
    /// A multiplexer over `workers` threads reporting into `metrics`, with
    /// a single ingress shard and unbatched drains.
    pub fn new(workers: usize, metrics: ExecMetrics) -> Self {
        Self::with_options(MuxOptions::new(workers), metrics)
    }

    /// A multiplexer with explicit shard and drain-batch configuration.
    pub fn with_options(options: MuxOptions, metrics: ExecMetrics) -> Self {
        let core = Arc::new(MuxCore {
            pool: WorkerPool::new(options.workers, 1024, metrics),
            sessions: Mutex::new(Vec::new()),
            drain_batch: options.drain_batch.max(1),
        });
        let ingress = Ingress::new(options.shards.max(1), core.clone());
        Self { ingress, core }
    }

    /// The metrics registry shared with the pool.
    pub fn metrics(&self) -> &ExecMetrics {
        self.core.pool.metrics()
    }

    /// Number of ingress shards.
    pub fn shard_count(&self) -> usize {
        self.ingress.shard_count()
    }

    /// Register a session: one engine consuming one oracle's clip stream.
    /// `mailbox_cap` bounds the ticket queue; `label` names the session in
    /// metrics snapshots.
    pub fn register(
        &self,
        label: String,
        oracle: Arc<DetectionOracle>,
        engine: SessionEngine,
        policy: Backpressure,
        mailbox_cap: usize,
    ) -> SessionId {
        let (tx, rx) = bounded(mailbox_cap.max(1));
        let counters = self.metrics().register_session(label);
        let shard = self.ingress.shard_of(oracle.truth().video);
        let session = Arc::new(Session {
            tx,
            rx,
            oracle,
            state: Mutex::new(SessionState {
                engine: Some(engine),
                ledger: CostLedger::default(),
                clips_processed: 0,
                poisoned: false,
                result: None,
                callbacks: Vec::new(),
            }),
            done: Condvar::new(),
            scheduled: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            finishing: AtomicBool::new(false),
            pacing: AtomicU64::new(0f64.to_bits()),
            observer: std::sync::OnceLock::new(),
            policy,
            drain_batch: self.core.drain_batch,
            shard,
            counters,
        });
        let mut sessions = self.core.sessions.lock();
        match sessions.iter().position(Option::is_none) {
            Some(free) => {
                sessions[free] = Some(session);
                SessionId(free)
            }
            None => {
                sessions.push(Some(session));
                SessionId(sessions.len() - 1)
            }
        }
    }

    fn session(&self, id: SessionId) -> Arc<Session> {
        self.core.sessions.lock()[id.0]
            .clone()
            .expect("session id used after release")
    }

    /// Release a finished session's slot for reuse and retire its metrics
    /// line (its processed-clip total stays in the registry's monotonic
    /// residue). Call after [`SessionMux::wait`]; the id is dead afterwards
    /// and may be handed out again by a later [`SessionMux::register`].
    pub fn release(&self, id: SessionId) {
        let taken = self.core.sessions.lock()[id.0]
            .take()
            .expect("session id released twice");
        self.metrics().retire_session(&taken.counters);
    }

    /// Enqueue one clip for a session. Never blocks: the ticket lands on
    /// the session's ingress shard and a feeder thread applies the
    /// backpressure policy, so a full mailbox stalls only that shard.
    /// Feeding a session whose end-of-stream was already declared is a
    /// hard error in every build profile.
    pub fn feed(&self, id: SessionId, clip: ClipId) -> Result<(), FeedError> {
        let session = self.session(id);
        if session.closed.load(Ordering::Acquire) {
            return Err(FeedError::SessionClosed);
        }
        let shard = session.shard;
        self.ingress
            .enqueue(shard, IngressEvent::Feed(session, clip));
        Ok(())
    }

    /// Pace a session to its simulated inference cost: after each clip the
    /// worker sleeps `factor` wall seconds per simulated inference second
    /// charged by that clip (accumulated per drain batch, outside every
    /// lock). The simulator's clip evaluation is microseconds of table
    /// lookups, but deployed SVAQD spends >98 % of its time waiting on
    /// model inference (§5.2) — pacing restores that wait so
    /// executor-level concurrency measurements carry over. `0.0` (the
    /// default) disables pacing.
    pub fn set_pacing(&self, id: SessionId, factor: f64) {
        self.session(id)
            .pacing
            .store(factor.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Attach a per-clip observer to a session: `observer` runs on the
    /// draining worker after every successfully evaluated clip, outside
    /// every mux lock, carrying the clip, any closed result interval, and
    /// the engine's current drift surface. Set-once (a second call
    /// panics), before the first feed — the standing-query fan-out hooks
    /// its pushes here.
    pub fn set_observer<F>(&self, id: SessionId, observer: F)
    where
        F: Fn(ClipNotice) + Send + Sync + 'static,
    {
        let set = self.session(id).observer.set(Box::new(observer));
        assert!(set.is_ok(), "session observer set twice");
    }

    /// Declare end-of-stream for a session. Must be called after the last
    /// [`SessionMux::feed`] for it; the engine finalises once the mailbox
    /// drains. Later feeds fail with [`FeedError::SessionClosed`].
    pub fn finish_session(&self, id: SessionId) {
        let session = self.session(id);
        session.closed.store(true, Ordering::Release);
        let shard = session.shard;
        self.ingress.enqueue(shard, IngressEvent::Finish(session));
    }

    /// Block until a finished session's result is available. Idempotent:
    /// the result is latched, so repeated waits return the same value.
    pub fn wait(&self, id: SessionId) -> Result<SessionResult, SessionError> {
        let session = self.session(id);
        let mut state = session.state.lock();
        while state.result.is_none() {
            session.done.wait(&mut state);
        }
        match &state.result {
            Some(result) => result.clone(),
            None => unreachable!("wait loop exits only once a result is latched"),
        }
    }

    /// Register a completion hook: `callback` runs exactly once with the
    /// session's result, on the worker that finalises the session — or
    /// inline, right here, when the result is already latched. The
    /// asynchronous alternative to [`SessionMux::wait`]: nothing blocks,
    /// so a serving thread can hand off a `stream` request and move on.
    /// The callback runs outside every mux lock and may call back into the
    /// mux (e.g. [`SessionMux::release`]).
    pub fn on_result<F>(&self, id: SessionId, callback: F)
    where
        F: FnOnce(Result<SessionResult, SessionError>) + Send + 'static,
    {
        let session = self.session(id);
        let mut state = session.state.lock();
        match state.result.clone() {
            Some(result) => {
                drop(state);
                callback(result);
            }
            None => state.callbacks.push(Box::new(callback)),
        }
    }

    /// Run an arbitrary job on the shared worker pool. Blocks while the
    /// pool's (bounded) job queue is full — the backpressure a serving
    /// reader thread wants when clients pipeline faster than workers
    /// execute.
    pub fn submit(&self, job: crate::pool::Job) {
        self.core.pool.submit(job);
    }

    /// Convenience: feed every clip of the session's oracle in stream order
    /// and declare end-of-stream.
    pub fn feed_stream(&self, id: SessionId) {
        self.feed_streams(&[id]);
    }

    /// Feed several sessions their oracles' clips interleaved round-robin —
    /// the arrival order of concurrent live streams — then declare
    /// end-of-stream on each. The enqueue is non-blocking, so this returns
    /// as soon as every ticket is on its ingress shard.
    pub fn feed_streams(&self, ids: &[SessionId]) {
        let clip_counts: Vec<u64> = ids
            .iter()
            .map(|&id| self.session(id).oracle.clip_count())
            .collect();
        let longest = clip_counts.iter().copied().max().unwrap_or(0);
        for c in 0..longest {
            for (&id, &count) in ids.iter().zip(&clip_counts) {
                if c < count {
                    self.feed(id, ClipId::new(c))
                        .expect("feed_streams feeds before declaring end-of-stream");
                }
            }
        }
        for &id in ids {
            self.finish_session(id);
        }
    }

    /// Shut down after all sessions were waited on: join the shard feeders
    /// (delivering everything still queued), then drain and join the pool.
    pub fn shutdown(self) {
        let Self { ingress, core } = self;
        drop(ingress);
        match Arc::try_unwrap(core) {
            Ok(MuxCore { pool, .. }) => pool.shutdown(),
            // A feeder clone outliving the join is impossible, but dropping
            // still drains and joins the pool via its Drop impl.
            Err(core) => drop(core),
        }
    }
}

/// Feeder side: move one ingress event into its session, then make sure a
/// worker is scheduled to react to it. Runs on the shard feeder threads.
pub(crate) fn deliver(core: &MuxCore, event: IngressEvent, shard: &ShardCounters) {
    match event {
        IngressEvent::Feed(session, clip) => {
            deliver_clip(&session, clip, shard);
            shard.delivered.fetch_add(1, Ordering::Relaxed);
            schedule(&core.pool, &session);
        }
        IngressEvent::Finish(session) => {
            session.finishing.store(true, Ordering::Release);
            schedule(&core.pool, &session);
        }
    }
}

/// Apply the session's backpressure policy to one ticket.
fn deliver_clip(session: &Session, clip: ClipId, shard: &ShardCounters) {
    // Count the ticket before it becomes visible to workers: a racing
    // drain's decrement then always pairs with an earlier increment, so the
    // queue-depth gauge can never transiently wrap below zero.
    session.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
    match session.policy {
        Backpressure::Block => {
            if let Err(TrySendError::Full(clip)) = session.tx.try_send(clip) {
                let blocked = Instant::now();
                session.tx.send(clip).expect("session mailbox open");
                let nanos = blocked.elapsed().as_nanos() as u64;
                SessionCounters::add(&session.counters.feed_block_nanos, nanos);
                SessionCounters::add(&shard.feed_block_nanos, nanos);
            }
        }
        Backpressure::DropOldest => {
            let mut clip = clip;
            loop {
                match session.tx.try_send(clip) {
                    Ok(()) => break,
                    Err(TrySendError::Full(returned)) => {
                        clip = returned;
                        if session.rx.try_recv().is_ok() {
                            session.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                            session.counters.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        unreachable!("session mailbox open")
                    }
                }
            }
        }
    }
}

/// Hand a drain job to the pool unless one is already scheduled.
fn schedule(pool: &WorkerPool, session: &Arc<Session>) {
    if session
        .scheduled
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        let session = session.clone();
        pool.submit(Box::new(move || drain(&session)));
    }
}

/// Worker side: serially process a session's mailbox in batches of up to
/// `drain_batch` tickets per state-lock acquisition, then finalise if the
/// feeder delivered end-of-stream. The `scheduled` flag guarantees only one
/// worker runs this per session; the hand-off re-check closes the race
/// between draining the last ticket and a feeder enqueueing a new one.
fn drain(session: &Session) {
    let batch_cap = session.drain_batch.max(1);
    let mut batch: Vec<ClipId> = Vec::with_capacity(batch_cap);
    loop {
        // Pull a batch off the mailbox before touching the state lock.
        while batch.len() < batch_cap {
            match session.rx.try_recv() {
                Ok(clip) => {
                    session.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    batch.push(clip);
                }
                Err(_) => break,
            }
        }
        if !batch.is_empty() {
            // One lock acquisition per batch; the pacing sleep accumulates
            // here and runs after the guard drops, so feeders reading
            // stream metadata and metrics observers are never blocked on a
            // simulated-inference wait.
            let mut sleep_secs = 0.0f64;
            // Notices accumulate under the state lock (they read the
            // engine) and fire after it drops, like the pacing sleep.
            let observing = session.observer.get().is_some();
            let mut notices: Vec<ClipNotice> = Vec::new();
            let mut state = session.state.lock();
            for clip in batch.drain(..) {
                if state.poisoned {
                    continue;
                }
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut view = OwnedClipView::new(session.oracle.clone(), clip);
                    let closed = state
                        .engine
                        .as_mut()
                        .expect("engine present until finish")
                        .push_clip(&mut view);
                    (*view.ledger(), closed)
                }));
                SessionCounters::add(
                    &session.counters.eval_nanos,
                    started.elapsed().as_nanos() as u64,
                );
                match outcome {
                    Ok((ledger, closed)) => {
                        state.ledger.merge(&ledger);
                        state.clips_processed += 1;
                        session
                            .counters
                            .clips_processed
                            .fetch_add(1, Ordering::Relaxed);
                        if observing {
                            if let Some(engine) = state.engine.as_ref() {
                                let (backgrounds, criticals) = engine.drift();
                                notices.push(ClipNotice {
                                    clip,
                                    closed,
                                    clips_processed: state.clips_processed,
                                    backgrounds,
                                    criticals,
                                });
                            }
                        }
                        let pacing = f64::from_bits(session.pacing.load(Ordering::Relaxed));
                        if pacing > 0.0 {
                            sleep_secs += ledger.inference_ms() / 1e3 * pacing;
                        }
                    }
                    Err(_) => {
                        state.poisoned = true;
                    }
                }
            }
            drop(state);
            if let Some(observer) = session.observer.get() {
                for notice in notices {
                    observer(notice);
                }
            }
            if sleep_secs > 0.0 {
                #[cfg(feature = "lock-audit")]
                assert_eq!(
                    parking_lot::lock_audit::held_count(),
                    0,
                    "pacing sleep must not hold any audited lock"
                );
                parking_lot::rt::sleep(std::time::Duration::from_secs_f64(sleep_secs));
            }
            continue;
        }
        // End-of-stream: finalise exactly once, after the mailbox drained.
        if session.finishing.load(Ordering::Acquire) && session.rx.is_empty() {
            let mut state = session.state.lock();
            let mut ready: Vec<ResultCallback> = Vec::new();
            if state.result.is_none() && session.rx.is_empty() {
                let result = if state.poisoned {
                    Err(SessionError::Poisoned)
                } else {
                    let engine = state.engine.take().expect("finalised once");
                    let (sequences, evaluations) = engine.finish();
                    Ok(SessionResult {
                        sequences,
                        evaluations,
                        cost: state.ledger,
                        clips_processed: state.clips_processed,
                        dropped: session.counters.dropped.load(Ordering::Relaxed),
                    })
                };
                state.result = Some(result);
                // Callbacks registered before the latch run now; later
                // registrations run inline in `on_result`.
                ready = std::mem::take(&mut state.callbacks);
                session.done.notify_all();
            }
            let latched = state.result.clone();
            drop(state);
            if let Some(result) = latched {
                for callback in ready {
                    callback(result.clone());
                }
            }
        }

        session.scheduled.store(false, Ordering::Release);
        let more_work = !session.rx.is_empty()
            || (session.finishing.load(Ordering::Acquire) && session.state.lock().result.is_none());
        if !more_work {
            return;
        }
        // New tickets (or the finish marker) arrived between the drain and
        // the flag clear — reclaim ownership or leave it to the scheduler.
        if session
            .scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use svq_core::online::OnlineConfig;
    use svq_types::{
        ActionClass, ActionQuery, BBox, FrameId, Interval, ObjectClass, TrackId, VideoGeometry,
        VideoId,
    };
    use svq_vision::models::{ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};
    use svq_vision::VideoStream;

    /// 40 clips (2000 frames); car & jumping on clips 12..=19.
    fn oracle(video: u64, seed: u64) -> Arc<DetectionOracle> {
        let mut gt = GroundTruth::new(VideoId::new(video), VideoGeometry::default(), 2_000);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(600), FrameId::new(999)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(600), FrameId::new(999)),
            salience: 1.0,
        });
        let confusion = SceneConfusion {
            objects: vec![(ObjectClass::named("car"), 1.0)],
            actions: vec![(ActionClass::named("jumping"), 1.0)],
        };
        Arc::new(DetectionOracle::new(
            Arc::new(gt),
            ModelSuite::accurate(),
            &confusion,
            seed,
        ))
    }

    /// Like [`oracle`] but 300 clips (15 000 frames), for stress tests that
    /// need long in-order streams.
    fn long_oracle(video: u64, seed: u64) -> Arc<DetectionOracle> {
        let mut gt = GroundTruth::new(VideoId::new(video), VideoGeometry::default(), 15_000);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(600), FrameId::new(999)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(600), FrameId::new(999)),
            salience: 1.0,
        });
        let confusion = SceneConfusion {
            objects: vec![(ObjectClass::named("car"), 1.0)],
            actions: vec![(ActionClass::named("jumping"), 1.0)],
        };
        Arc::new(DetectionOracle::new(
            Arc::new(gt),
            ModelSuite::accurate(),
            &confusion,
            seed,
        ))
    }

    fn svaqd_engine(oracle: &DetectionOracle) -> SessionEngine {
        SessionEngine::Svaqd(Svaqd::new(
            ActionQuery::named("jumping", &["car"]),
            oracle.truth().geometry,
            OnlineConfig::default(),
            1e-4,
            1e-4,
        ))
    }

    /// Reference: the same engine run single-threaded over a VideoStream.
    fn sequential(
        oracle: &DetectionOracle,
    ) -> (Vec<ClipInterval>, Vec<ClipEvaluation>, CostLedger) {
        let mut stream = VideoStream::new(oracle);
        let mut engine = Svaqd::new(
            ActionQuery::named("jumping", &["car"]),
            stream.geometry(),
            OnlineConfig::default(),
            1e-4,
            1e-4,
        );
        while let Some(mut view) = stream.next_clip() {
            engine.push_clip(&mut view);
        }
        let (seqs, evals) = engine.finish();
        (seqs, evals, *stream.ledger())
    }

    #[test]
    fn multiplexed_sessions_match_sequential_runs() {
        // The determinism contract must survive every ingress/batch shape:
        // sharded feeders and batched drains may reorder *work*, never
        // *results*.
        for shards in [1usize, 2, 4] {
            for drain_batch in [1usize, 4, 16] {
                let mux = SessionMux::with_options(
                    MuxOptions::new(4)
                        .with_shards(shards)
                        .with_drain_batch(drain_batch),
                    ExecMetrics::new(),
                );
                let oracles: Vec<_> = (0..6).map(|i| oracle(i, 100 + i)).collect();
                let ids: Vec<SessionId> = oracles
                    .iter()
                    .enumerate()
                    .map(|(i, o)| {
                        mux.register(
                            format!("s{i}"),
                            o.clone(),
                            svaqd_engine(o),
                            Backpressure::Block,
                            16,
                        )
                    })
                    .collect();
                for &id in &ids {
                    mux.feed_stream(id);
                }
                for (id, o) in ids.iter().zip(&oracles) {
                    let got = mux.wait(*id).unwrap();
                    let (seqs, evals, cost) = sequential(o);
                    assert_eq!(
                        got.sequences, seqs,
                        "drifted at {shards} shards, batch {drain_batch}"
                    );
                    assert_eq!(got.evaluations, evals);
                    assert_eq!(got.clips_processed, 40);
                    assert_eq!(got.dropped, 0);
                    // Same clips evaluated in the same order: identical
                    // inference charge (algorithm wall-clock is not charged
                    // by either path here).
                    assert_eq!(got.cost.object_frames, cost.object_frames);
                    assert_eq!(got.cost.action_shots, cost.action_shots);
                }
                let snap = mux.metrics().snapshot();
                assert_eq!(snap.total_clips, 240);
                assert_eq!(snap.jobs_panicked, 0);
                assert_eq!(snap.shards.len(), shards);
                let delivered: u64 = snap.shards.iter().map(|s| s.delivered).sum();
                assert_eq!(delivered, 240, "every ticket crosses an ingress shard");
                assert_eq!(snap.shards.iter().map(|s| s.ingress_depth).sum::<u64>(), 0);
                mux.shutdown();
            }
        }
    }

    #[test]
    fn drop_oldest_sheds_and_counts() {
        // One worker, tiny mailbox, eager feeder: drops must occur and be
        // counted, and the session must still finish cleanly.
        let mux = SessionMux::new(1, ExecMetrics::new());
        let o = oracle(0, 7);
        let id = mux.register(
            "lossy".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::DropOldest,
            2,
        );
        for c in 0..200u64 {
            mux.feed(id, ClipId::new(c % 40)).unwrap();
        }
        mux.finish_session(id);
        let result = mux.wait(id).unwrap();
        assert_eq!(result.clips_processed + result.dropped, 200);
        assert!(result.dropped > 0, "tiny mailbox must shed load");
        let snap = mux.metrics().snapshot();
        assert_eq!(snap.sessions[0].dropped, result.dropped);
        mux.shutdown();
    }

    /// Queue-depth accounting under the feeder/worker `try_recv` race: the
    /// gauge must never wrap below zero, and every fed ticket must end up
    /// either processed or counted as dropped — across worker counts and a
    /// sharded, batched ingress.
    #[test]
    fn drop_oldest_queue_depth_never_underflows() {
        for workers in [1usize, 2, 4] {
            let mux = Arc::new(SessionMux::with_options(
                MuxOptions::new(workers).with_shards(2).with_drain_batch(4),
                ExecMetrics::new(),
            ));
            let oracles: Vec<_> = (0..4).map(|i| long_oracle(i, 50 + i)).collect();
            let ids: Vec<SessionId> = oracles
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    mux.register(
                        format!("under{i}"),
                        o.clone(),
                        svaqd_engine(o),
                        Backpressure::DropOldest,
                        1 + i % 2,
                    )
                })
                .collect();
            // Concurrent observer: sample the gauge while feeders and
            // workers race. An underflow shows up as a value near u64::MAX.
            let stop = Arc::new(AtomicBool::new(false));
            let observer = {
                let mux = mux.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut max_seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for s in mux.metrics().snapshot().sessions {
                            max_seen = max_seen.max(s.queue_depth);
                        }
                        std::thread::yield_now();
                    }
                    max_seen
                })
            };
            // Clip ids must be strictly increasing per session — the engines
            // require stream order even when DropOldest sheds some of them.
            const FED: u64 = 300;
            for c in 0..FED {
                for &id in &ids {
                    mux.feed(id, ClipId::new(c)).unwrap();
                }
            }
            for &id in &ids {
                mux.finish_session(id);
            }
            for &id in &ids {
                let result = mux.wait(id).unwrap();
                assert_eq!(
                    result.clips_processed + result.dropped,
                    FED,
                    "ticket lost at {workers} workers"
                );
            }
            stop.store(true, Ordering::Relaxed);
            let max_seen = observer.join().expect("observer");
            assert!(
                max_seen < u64::MAX / 2,
                "queue_depth underflowed (saw {max_seen}) at {workers} workers"
            );
            for s in mux.metrics().snapshot().sessions {
                assert_eq!(s.queue_depth, 0, "gauge must settle at zero");
            }
            Arc::try_unwrap(mux)
                .ok()
                .expect("observer joined")
                .shutdown();
        }
    }

    #[test]
    fn panicking_clip_poisons_only_its_session() {
        let mux = SessionMux::new(2, ExecMetrics::new());
        let o = oracle(0, 3);
        let bad = mux.register(
            "bad".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        let good = mux.register(
            "good".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        // Clip 10_000 is far past the 40-clip video: evaluating it panics
        // inside the oracle, which must poison `bad` and nothing else.
        mux.feed(bad, ClipId::new(0)).unwrap();
        mux.feed(bad, ClipId::new(10_000)).unwrap();
        mux.feed(bad, ClipId::new(1)).unwrap();
        mux.finish_session(bad);
        mux.feed_stream(good);
        assert_eq!(mux.wait(bad), Err(SessionError::Poisoned));
        let healthy = mux.wait(good).unwrap();
        assert_eq!(healthy.clips_processed, 40);
        mux.shutdown();
    }

    #[test]
    fn empty_session_finishes_immediately() {
        let mux = SessionMux::new(2, ExecMetrics::new());
        let o = oracle(0, 1);
        let id = mux.register(
            "empty".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            4,
        );
        mux.finish_session(id);
        let result = mux.wait(id).unwrap();
        assert_eq!(result.clips_processed, 0);
        assert!(result.sequences.is_empty());
        mux.shutdown();
    }

    /// Regression: `wait` used to consume a `bounded(1)` done token, so a
    /// second call deadlocked forever. The condvar latch makes it
    /// idempotent — verified under a 5 s watchdog.
    #[test]
    fn wait_twice_returns_the_same_result() {
        let mux = Arc::new(SessionMux::new(2, ExecMetrics::new()));
        let o = oracle(0, 9);
        let id = mux.register(
            "idempotent".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        mux.feed_stream(id);
        let waiter = {
            let mux = mux.clone();
            std::thread::spawn(move || (mux.wait(id), mux.wait(id)))
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        while !waiter.is_finished() {
            assert!(
                Instant::now() < deadline,
                "repeated wait() deadlocked (watchdog fired)"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let (first, second) = waiter.join().expect("waiter thread");
        let first = first.expect("healthy session");
        assert_eq!(first.clips_processed, 40);
        assert_eq!(Ok(first), second, "second wait saw a different result");
        Arc::try_unwrap(mux).ok().expect("waiter joined").shutdown();
    }

    /// Slot reuse: releasing a finished session frees its id for the next
    /// registration and retires its metrics line without losing clip
    /// totals — the contract a long-lived server leans on.
    #[test]
    fn released_slots_are_reused_and_totals_survive() {
        let mux = SessionMux::new(2, ExecMetrics::new());
        let o = oracle(0, 11);
        let first = mux.register(
            "gen1".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        mux.feed_stream(first);
        let result = mux.wait(first).unwrap();
        assert_eq!(result.clips_processed, 40);
        mux.release(first);
        let snap = mux.metrics().snapshot();
        assert_eq!(snap.sessions.len(), 0, "metrics line retired");
        assert_eq!(snap.total_clips, 40, "clips survive retirement");

        // The freed slot is handed out again; the session works end-to-end.
        let second = mux.register(
            "gen2".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        assert_eq!(second, first, "slot is reused");
        mux.feed_stream(second);
        assert_eq!(mux.wait(second).unwrap().clips_processed, 40);
        let snap = mux.metrics().snapshot();
        assert_eq!(snap.sessions.len(), 1);
        assert_eq!(snap.total_clips, 80);

        // Occupied slots are untouched: a live third session keeps its id.
        let third = mux.register(
            "gen3".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        assert_ne!(third, second);
        mux.release(second);
        mux.feed_stream(third);
        assert_eq!(mux.wait(third).unwrap().clips_processed, 40);
        mux.release(third);
        assert_eq!(mux.metrics().snapshot().total_clips, 120);
        mux.shutdown();
    }

    /// A late feed after `finish_session` is rejected with a hard error —
    /// identically in debug and release builds (this was a `debug_assert!`
    /// that silently dropped the ticket in release).
    #[test]
    fn feed_after_finish_is_a_hard_error() {
        let mux = SessionMux::new(1, ExecMetrics::new());
        let o = oracle(0, 5);
        let id = mux.register(
            "closed".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        mux.feed(id, ClipId::new(0)).unwrap();
        mux.feed(id, ClipId::new(1)).unwrap();
        mux.finish_session(id);
        assert_eq!(mux.feed(id, ClipId::new(2)), Err(FeedError::SessionClosed));
        let result = mux.wait(id).unwrap();
        assert_eq!(result.clips_processed, 2, "late ticket must not slip in");
        let snap = mux.metrics().snapshot();
        assert_eq!(snap.sessions[0].queue_depth, 0, "gauge must stay balanced");
        mux.shutdown();
    }
}
