//! Concurrent session multiplexer.
//!
//! A *session* pairs one parsed query's online engine ([`Svaqd`] or
//! [`ExprSvaqd`]) with one video stream, identified by the oracle it reads.
//! The multiplexer runs many sessions over one [`WorkerPool`]: feeders
//! enqueue lightweight clip tickets into per-session mailboxes (bounded
//! crossbeam channels) and workers perform the heavy per-clip model reads
//! and engine evaluation.
//!
//! Two properties anchor the design:
//!
//! * **Determinism.** A session is an actor: at most one worker drains a
//!   given mailbox at a time (an atomic `scheduled` flag arbitrates), and a
//!   mailbox is FIFO, so each engine consumes its clips in exactly feed
//!   order regardless of worker count. A multiplexed run is therefore
//!   byte-identical to running its sessions sequentially.
//! * **Isolation.** A panic while evaluating a clip poisons only the owning
//!   session — its remaining tickets are discarded and [`SessionMux::wait`]
//!   reports [`SessionError::Poisoned`] — while every other session and the
//!   pool keep running.
//!
//! Backpressure on a full mailbox is per session: [`Backpressure::Block`]
//! stalls the feeder (lossless, what query sessions want) while
//! [`Backpressure::DropOldest`] sheds the oldest waiting clip and counts it
//! (what live monitoring dashboards want).

use crate::metrics::{ExecMetrics, SessionCounters};
use crate::pool::WorkerPool;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use svq_core::expr::ExprSvaqd;
use svq_core::online::{ClipEvaluation, Svaqd};
use svq_types::{ClipId, ClipInterval};
use svq_vision::models::DetectionOracle;
use svq_vision::{CostLedger, OwnedClipView};

/// Mailbox policy when a session's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the feeder until the worker catches up (lossless).
    #[default]
    Block,
    /// Drop the oldest waiting clip and count it in the session metrics.
    DropOldest,
}

/// The per-session online engine.
// Variant sizes differ (~576 vs ~360 bytes) but a value is moved exactly
// once, into its session, so boxing would only add indirection to push_clip.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SessionEngine {
    Svaqd(Svaqd),
    Expr(ExprSvaqd),
}

impl SessionEngine {
    fn push_clip(&mut self, view: &mut OwnedClipView) -> Option<ClipInterval> {
        match self {
            SessionEngine::Svaqd(e) => e.push_clip(view),
            SessionEngine::Expr(e) => e.push_clip(view),
        }
    }

    fn finish(self) -> (Vec<ClipInterval>, Vec<ClipEvaluation>) {
        match self {
            SessionEngine::Svaqd(e) => e.finish(),
            SessionEngine::Expr(e) => (e.finish(), Vec::new()),
        }
    }
}

/// Handle to a registered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

/// What a finished session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Result sequences, as the engine's `finish` reports them.
    pub sequences: Vec<ClipInterval>,
    /// Per-clip evaluation trace (empty for [`SessionEngine::Expr`]).
    pub evaluations: Vec<ClipEvaluation>,
    /// Inference cost charged by this session's clip evaluations.
    pub cost: CostLedger,
    /// Clips evaluated (excludes dropped tickets).
    pub clips_processed: u64,
    /// Tickets shed by [`Backpressure::DropOldest`].
    pub dropped: u64,
}

/// Why a session failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// A clip evaluation panicked; the session's remaining work was
    /// discarded. Other sessions are unaffected.
    Poisoned,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Poisoned => {
                write!(f, "session poisoned by a panicking clip evaluation")
            }
        }
    }
}

impl std::error::Error for SessionError {}

struct SessionState {
    engine: Option<SessionEngine>,
    oracle: Arc<DetectionOracle>,
    ledger: CostLedger,
    clips_processed: u64,
    poisoned: bool,
    result: Option<Result<SessionResult, SessionError>>,
}

struct Session {
    tx: Sender<ClipId>,
    rx: Receiver<ClipId>,
    state: Mutex<SessionState>,
    /// True while a worker owns (or is committed to owning) the drain loop.
    scheduled: AtomicBool,
    /// Set once the feeder declared end-of-stream.
    finishing: AtomicBool,
    /// Wall seconds slept per *simulated* inference second (bits of `f64`).
    pacing: AtomicU64,
    policy: Backpressure,
    counters: Arc<SessionCounters>,
    done_tx: Sender<()>,
    done_rx: Receiver<()>,
}

/// Multiplexes many query sessions over one worker pool.
pub struct SessionMux {
    pool: WorkerPool,
    sessions: Mutex<Vec<Arc<Session>>>,
}

impl SessionMux {
    /// A multiplexer over `workers` threads reporting into `metrics`.
    pub fn new(workers: usize, metrics: ExecMetrics) -> Self {
        Self {
            pool: WorkerPool::new(workers, 1024, metrics),
            sessions: Mutex::new(Vec::new()),
        }
    }

    /// The metrics registry shared with the pool.
    pub fn metrics(&self) -> &ExecMetrics {
        self.pool.metrics()
    }

    /// Register a session: one engine consuming one oracle's clip stream.
    /// `mailbox_cap` bounds the ticket queue; `label` names the session in
    /// metrics snapshots.
    pub fn register(
        &self,
        label: String,
        oracle: Arc<DetectionOracle>,
        engine: SessionEngine,
        policy: Backpressure,
        mailbox_cap: usize,
    ) -> SessionId {
        let (tx, rx) = bounded(mailbox_cap.max(1));
        let (done_tx, done_rx) = bounded(1);
        let counters = self.pool.metrics().register_session(label);
        let session = Arc::new(Session {
            tx,
            rx,
            state: Mutex::new(SessionState {
                engine: Some(engine),
                oracle,
                ledger: CostLedger::default(),
                clips_processed: 0,
                poisoned: false,
                result: None,
            }),
            scheduled: AtomicBool::new(false),
            finishing: AtomicBool::new(false),
            pacing: AtomicU64::new(0f64.to_bits()),
            policy,
            counters,
            done_tx,
            done_rx,
        });
        let mut sessions = self.sessions.lock();
        sessions.push(session);
        SessionId(sessions.len() - 1)
    }

    fn session(&self, id: SessionId) -> Arc<Session> {
        self.sessions.lock()[id.0].clone()
    }

    /// Enqueue one clip for a session, applying its backpressure policy.
    pub fn feed(&self, id: SessionId, clip: ClipId) {
        let session = self.session(id);
        debug_assert!(
            !session.finishing.load(Ordering::Acquire),
            "feed after finish_session"
        );
        match session.policy {
            Backpressure::Block => {
                if let Err(TrySendError::Full(clip)) = session.tx.try_send(clip) {
                    let blocked = Instant::now();
                    session.tx.send(clip).expect("session mailbox open");
                    SessionCounters::add(
                        &session.counters.feed_block_nanos,
                        blocked.elapsed().as_nanos() as u64,
                    );
                }
            }
            Backpressure::DropOldest => {
                let mut clip = clip;
                loop {
                    match session.tx.try_send(clip) {
                        Ok(()) => break,
                        Err(TrySendError::Full(returned)) => {
                            clip = returned;
                            if session.rx.try_recv().is_ok() {
                                session.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                                session.counters.dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            unreachable!("session mailbox open")
                        }
                    }
                }
            }
        }
        session.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.schedule(&session);
    }

    /// Pace a session to its simulated inference cost: after each clip the
    /// worker sleeps `factor` wall seconds per simulated inference second
    /// charged by that clip. The simulator's clip evaluation is microseconds
    /// of table lookups, but deployed SVAQD spends >98 % of its time
    /// waiting on model inference (§5.2) — pacing restores that wait so
    /// executor-level concurrency measurements carry over. `0.0` (the
    /// default) disables pacing.
    pub fn set_pacing(&self, id: SessionId, factor: f64) {
        self.session(id)
            .pacing
            .store(factor.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Declare end-of-stream for a session. Must be called after the last
    /// [`SessionMux::feed`] for it; the engine finalises once the mailbox
    /// drains.
    pub fn finish_session(&self, id: SessionId) {
        let session = self.session(id);
        session.finishing.store(true, Ordering::Release);
        self.schedule(&session);
    }

    /// Block until a finished session's result is available.
    pub fn wait(&self, id: SessionId) -> Result<SessionResult, SessionError> {
        let session = self.session(id);
        session.done_rx.recv().expect("session finalised");
        let result = session.state.lock().result.clone();
        result.expect("result stored before done signal")
    }

    /// Convenience: feed every clip of the session's oracle in stream order
    /// and declare end-of-stream.
    pub fn feed_stream(&self, id: SessionId) {
        self.feed_streams(&[id]);
    }

    /// Feed several sessions their oracles' clips interleaved round-robin —
    /// the arrival order of concurrent live streams — then declare
    /// end-of-stream on each. Keeps every session supplied with work, which
    /// a per-stream sequential feed (blocked on one mailbox at a time)
    /// would not.
    pub fn feed_streams(&self, ids: &[SessionId]) {
        let clip_counts: Vec<u64> = ids
            .iter()
            .map(|&id| {
                let session = self.session(id);
                let truth = session.state.lock().oracle.truth().clone();
                truth.geometry.clip_count(truth.total_frames)
            })
            .collect();
        let longest = clip_counts.iter().copied().max().unwrap_or(0);
        for c in 0..longest {
            for (&id, &count) in ids.iter().zip(&clip_counts) {
                if c < count {
                    self.feed(id, ClipId::new(c));
                }
            }
        }
        for &id in ids {
            self.finish_session(id);
        }
    }

    /// Shut the pool down after all sessions were waited on.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }

    /// Hand a drain job to the pool unless one is already scheduled.
    fn schedule(&self, session: &Arc<Session>) {
        if session
            .scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let session = session.clone();
            self.pool.submit(Box::new(move || drain(&session)));
        }
    }
}

/// Worker side: serially process a session's mailbox, then finalise if the
/// feeder declared end-of-stream. The `scheduled` flag guarantees only one
/// worker runs this per session; the hand-off re-check closes the race
/// between draining the last ticket and a feeder enqueueing a new one.
fn drain(session: &Session) {
    loop {
        let mut state = session.state.lock();
        while let Ok(clip) = session.rx.try_recv() {
            session.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
            if state.poisoned {
                continue;
            }
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut view = OwnedClipView::new(state.oracle.clone(), clip);
                let closed = state
                    .engine
                    .as_mut()
                    .expect("engine present until finish")
                    .push_clip(&mut view);
                (*view.ledger(), closed)
            }));
            SessionCounters::add(
                &session.counters.eval_nanos,
                started.elapsed().as_nanos() as u64,
            );
            match outcome {
                Ok((ledger, _closed)) => {
                    state.ledger.merge(&ledger);
                    state.clips_processed += 1;
                    session
                        .counters
                        .clips_processed
                        .fetch_add(1, Ordering::Relaxed);
                    let pacing = f64::from_bits(session.pacing.load(Ordering::Relaxed));
                    if pacing > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(
                            ledger.inference_ms() / 1e3 * pacing,
                        ));
                    }
                }
                Err(_) => {
                    state.poisoned = true;
                }
            }
        }
        // End-of-stream: finalise exactly once, after the mailbox drained.
        if session.finishing.load(Ordering::Acquire)
            && state.result.is_none()
            && session.rx.is_empty()
        {
            let result = if state.poisoned {
                Err(SessionError::Poisoned)
            } else {
                let engine = state.engine.take().expect("finalised once");
                let (sequences, evaluations) = engine.finish();
                Ok(SessionResult {
                    sequences,
                    evaluations,
                    cost: state.ledger,
                    clips_processed: state.clips_processed,
                    dropped: session.counters.dropped.load(Ordering::Relaxed),
                })
            };
            state.result = Some(result);
            let _ = session.done_tx.try_send(());
        }
        drop(state);

        session.scheduled.store(false, Ordering::Release);
        let more_work = !session.rx.is_empty()
            || (session.finishing.load(Ordering::Acquire) && session.state.lock().result.is_none());
        if !more_work {
            return;
        }
        // New tickets (or the finish marker) arrived between the drain and
        // the flag clear — reclaim ownership or leave it to the scheduler.
        if session
            .scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svq_core::online::OnlineConfig;
    use svq_types::{
        ActionClass, ActionQuery, BBox, FrameId, Interval, ObjectClass, TrackId, VideoGeometry,
        VideoId,
    };
    use svq_vision::models::{ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};
    use svq_vision::VideoStream;

    /// 40 clips (2000 frames); car & jumping on clips 12..=19.
    fn oracle(video: u64, seed: u64) -> Arc<DetectionOracle> {
        let mut gt = GroundTruth::new(VideoId::new(video), VideoGeometry::default(), 2_000);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(600), FrameId::new(999)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(600), FrameId::new(999)),
            salience: 1.0,
        });
        let confusion = SceneConfusion {
            objects: vec![(ObjectClass::named("car"), 1.0)],
            actions: vec![(ActionClass::named("jumping"), 1.0)],
        };
        Arc::new(DetectionOracle::new(
            Arc::new(gt),
            ModelSuite::accurate(),
            &confusion,
            seed,
        ))
    }

    fn svaqd_engine(oracle: &DetectionOracle) -> SessionEngine {
        SessionEngine::Svaqd(Svaqd::new(
            ActionQuery::named("jumping", &["car"]),
            oracle.truth().geometry,
            OnlineConfig::default(),
            1e-4,
            1e-4,
        ))
    }

    /// Reference: the same engine run single-threaded over a VideoStream.
    fn sequential(
        oracle: &DetectionOracle,
    ) -> (Vec<ClipInterval>, Vec<ClipEvaluation>, CostLedger) {
        let mut stream = VideoStream::new(oracle);
        let mut engine = Svaqd::new(
            ActionQuery::named("jumping", &["car"]),
            stream.geometry(),
            OnlineConfig::default(),
            1e-4,
            1e-4,
        );
        while let Some(mut view) = stream.next_clip() {
            engine.push_clip(&mut view);
        }
        let (seqs, evals) = engine.finish();
        (seqs, evals, *stream.ledger())
    }

    #[test]
    fn multiplexed_sessions_match_sequential_runs() {
        let mux = SessionMux::new(4, ExecMetrics::new());
        let oracles: Vec<_> = (0..6).map(|i| oracle(i, 100 + i)).collect();
        let ids: Vec<SessionId> = oracles
            .iter()
            .enumerate()
            .map(|(i, o)| {
                mux.register(
                    format!("s{i}"),
                    o.clone(),
                    svaqd_engine(o),
                    Backpressure::Block,
                    16,
                )
            })
            .collect();
        for &id in &ids {
            mux.feed_stream(id);
        }
        for (id, o) in ids.iter().zip(&oracles) {
            let got = mux.wait(*id).unwrap();
            let (seqs, evals, cost) = sequential(o);
            assert_eq!(got.sequences, seqs);
            assert_eq!(got.evaluations, evals);
            assert_eq!(got.clips_processed, 40);
            assert_eq!(got.dropped, 0);
            // Same clips evaluated in the same order: identical inference
            // charge (algorithm wall-clock is not charged by either path
            // here).
            assert_eq!(got.cost.object_frames, cost.object_frames);
            assert_eq!(got.cost.action_shots, cost.action_shots);
        }
        let snap = mux.metrics().snapshot();
        assert_eq!(snap.total_clips, 240);
        assert_eq!(snap.jobs_panicked, 0);
        mux.shutdown();
    }

    #[test]
    fn drop_oldest_sheds_and_counts() {
        // One worker, tiny mailbox, eager feeder: drops must occur and be
        // counted, and the session must still finish cleanly.
        let mux = SessionMux::new(1, ExecMetrics::new());
        let o = oracle(0, 7);
        let id = mux.register(
            "lossy".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::DropOldest,
            2,
        );
        for c in 0..200u64 {
            mux.feed(id, ClipId::new(c % 40));
        }
        mux.finish_session(id);
        let result = mux.wait(id).unwrap();
        assert_eq!(result.clips_processed + result.dropped, 200);
        assert!(result.dropped > 0, "tiny mailbox must shed load");
        let snap = mux.metrics().snapshot();
        assert_eq!(snap.sessions[0].dropped, result.dropped);
        mux.shutdown();
    }

    #[test]
    fn panicking_clip_poisons_only_its_session() {
        let mux = SessionMux::new(2, ExecMetrics::new());
        let o = oracle(0, 3);
        let bad = mux.register(
            "bad".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        let good = mux.register(
            "good".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            8,
        );
        // Clip 10_000 is far past the 40-clip video: evaluating it panics
        // inside the oracle, which must poison `bad` and nothing else.
        mux.feed(bad, ClipId::new(0));
        mux.feed(bad, ClipId::new(10_000));
        mux.feed(bad, ClipId::new(1));
        mux.finish_session(bad);
        mux.feed_stream(good);
        assert_eq!(mux.wait(bad), Err(SessionError::Poisoned));
        let healthy = mux.wait(good).unwrap();
        assert_eq!(healthy.clips_processed, 40);
        mux.shutdown();
    }

    #[test]
    fn empty_session_finishes_immediately() {
        let mux = SessionMux::new(2, ExecMetrics::new());
        let o = oracle(0, 1);
        let id = mux.register(
            "empty".into(),
            o.clone(),
            svaqd_engine(&o),
            Backpressure::Block,
            4,
        );
        mux.finish_session(id);
        let result = mux.wait(id).unwrap();
        assert_eq!(result.clips_processed, 0);
        assert!(result.sequences.is_empty());
        mux.shutdown();
    }
}
