//! Panic-isolated worker pool over bounded crossbeam channels.
//!
//! Workers pull boxed jobs from one bounded MPMC channel. A panicking job is
//! caught at the worker (the submitting subsystem additionally marks the
//! owning session poisoned — see `mux`), so one bad clip never takes the
//! pool down. Shutdown is graceful: closing the job channel lets every
//! worker drain what it already accepted, then the pool joins them.

use crate::metrics::ExecMetrics;
use crossbeam::channel::{bounded, Sender};
use parking_lot::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size thread pool with a bounded job queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<rt::JoinHandle<()>>,
    metrics: ExecMetrics,
}

impl WorkerPool {
    /// Spawn `workers` threads behind a queue of `queue_cap` pending jobs.
    pub fn new(workers: usize, queue_cap: usize, metrics: ExecMetrics) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = bounded::<Job>(queue_cap.max(1));
        metrics.set_workers(workers);
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let metrics = metrics.clone();
                rt::spawn(&format!("svq-exec-{i}"), move || {
                    for job in rx.iter() {
                        metrics.pool().queue_depth.fetch_sub(1, Ordering::Relaxed);
                        let outcome = catch_unwind(AssertUnwindSafe(job));
                        metrics.pool().jobs_executed.fetch_add(1, Ordering::Relaxed);
                        if outcome.is_err() {
                            metrics.pool().jobs_panicked.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
                .expect("spawn worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers: handles,
            metrics,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The metrics registry this pool reports into.
    pub fn metrics(&self) -> &ExecMetrics {
        &self.metrics
    }

    /// Submit a job; blocks while the queue is full (pool backpressure).
    pub fn submit(&self, job: Job) {
        self.metrics
            .pool()
            .queue_depth
            .fetch_add(1, Ordering::Relaxed);
        if self
            .tx
            .as_ref()
            .expect("pool not shut down")
            .send(job)
            .is_err()
        {
            unreachable!("receiver ends held by live workers");
        }
    }

    /// Graceful shutdown: stop accepting jobs, drain the queue, join every
    /// worker. Dropping the pool does the same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Closing the channel ends each worker's `rx.iter()` once drained.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs_across_workers() {
        let metrics = ExecMetrics::new();
        let pool = WorkerPool::new(4, 8, metrics.clone());
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..100u64 {
            let counter = counter.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(i, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 4950);
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs_executed, 100);
        assert_eq!(snap.jobs_panicked, 0);
        assert_eq!(snap.pool_queue_depth, 0);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let metrics = ExecMetrics::new();
        let pool = WorkerPool::new(2, 4, metrics.clone());
        let done = Arc::new(AtomicU64::new(0));
        pool.submit(Box::new(|| panic!("poisoned clip")));
        for _ in 0..10 {
            let done = done.clone();
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 10);
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs_executed, 11);
        assert_eq!(snap.jobs_panicked, 1);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0, 0, ExecMetrics::new());
        assert_eq!(pool.worker_count(), 1);
        let ran = Arc::new(AtomicU64::new(0));
        let r = ran.clone();
        pool.submit(Box::new(move || {
            r.store(1, Ordering::Relaxed);
        }));
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
