//! Parallel repository ingestion over a pluggable [`CatalogSink`].
//!
//! Ingestion (§4.1) is query-independent and per-video: each video's catalog
//! is built from its own detections only. That makes the fan-out trivial to
//! parallelise — one pool job per video — and the fan-in the only place
//! determinism (and memory) could leak. [`parallel_ingest_into`] closes both
//! holes:
//!
//! * **Determinism.** The sink decides the merge: [`MemorySink`] keys by
//!   [`svq_types::VideoId`] and [`svq_storage::JsonDirSink`] canonicalises
//!   its manifest at finish, so the output is identical to a sequential
//!   ingest no matter how workers interleaved.
//! * **Memory.** Workers hand each finished [`svq_storage::IngestedVideo`]
//!   through a *bounded* (capacity-1) channel to a single consumer that
//!   feeds the sink. At most `workers + 1` finished catalogs exist at any
//!   instant — each worker holding one on a blocked send plus the one in
//!   the channel — instead of the unbounded buffering of the old
//!   `Vec`-collect fan-in. The spill sink therefore ingests repositories
//!   far larger than RAM.
//!
//! The hand-off depth is tracked in [`ExecMetrics::ingest`]
//! (`buffered_high_water`), which tests and the `ingest-spill` bench assert
//! against the `workers + 1` bound.

use crate::metrics::ExecMetrics;
use crate::pool::WorkerPool;
use crossbeam::channel::bounded;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use svq_core::offline::ingest;
use svq_core::online::OnlineConfig;
use svq_core::ScoringFunctions;
use svq_storage::{CatalogSink, MemorySink, VideoRepository};
use svq_types::SvqResult;
use svq_vision::models::DetectionOracle;

/// Ingest many videos concurrently, streaming each finished catalog into
/// `sink` the moment a worker completes it.
///
/// Spawns one job per oracle on a fresh pool of `workers` threads (metrics
/// land in `metrics` under one session entry per video, hand-off depth and
/// sink latency under [`ExecMetrics::ingest`]). Panicking ingests are
/// isolated by the pool; their videos are simply absent from the result,
/// mirroring how the multiplexer poisons only the failing session. A sink
/// error aborts consumption and is returned after the pool drains.
pub fn parallel_ingest_into<S: CatalogSink>(
    oracles: &[Arc<DetectionOracle>],
    scoring: Arc<dyn ScoringFunctions + Send + Sync>,
    config: OnlineConfig,
    workers: usize,
    metrics: ExecMetrics,
    mut sink: S,
) -> SvqResult<S::Output> {
    let pool = WorkerPool::new(workers, oracles.len().max(1), metrics.clone());
    // Capacity 1: a worker with a finished catalog blocks until the
    // consumer is ready, bounding resident catalogs at `workers + 1`.
    let (tx, rx) = bounded(1);
    for oracle in oracles {
        let oracle = oracle.clone();
        let scoring = scoring.clone();
        let tx = tx.clone();
        let metrics = metrics.clone();
        let counters = pool
            .metrics()
            .register_session(format!("ingest/v{}", oracle.truth().video.raw()));
        pool.submit(Box::new(move || {
            let started = std::time::Instant::now();
            let catalog = ingest(&oracle, scoring.as_ref(), &config);
            counters
                .clips_processed
                .fetch_add(catalog.clip_count, Ordering::Relaxed);
            counters
                .eval_nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            metrics.ingest().enter_buffer();
            let _ = tx.send(catalog);
        }));
    }
    drop(tx);
    // Workers drop their tx clones with the job closures; consuming until
    // disconnect therefore drains exactly the non-panicked catalogs.
    let mut sink_error = None;
    for catalog in rx.iter() {
        metrics.ingest().exit_buffer();
        if sink_error.is_some() {
            continue; // keep draining so workers never block forever
        }
        let accepted = std::time::Instant::now();
        let outcome = sink.accept(catalog);
        let ing = metrics.ingest();
        ing.sink_nanos
            .fetch_add(accepted.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match outcome {
            Ok(()) => {
                ing.catalogs_sunk.fetch_add(1, Ordering::Relaxed);
                ing.bytes_written
                    .store(sink.bytes_written(), Ordering::Relaxed);
            }
            Err(e) => sink_error = Some(e),
        }
    }
    pool.shutdown();
    match sink_error {
        Some(e) => Err(e),
        None => sink.finish(),
    }
}

/// Ingest many videos concurrently into one deterministic in-memory
/// repository — [`parallel_ingest_into`] with a [`MemorySink`].
pub fn parallel_ingest(
    oracles: &[Arc<DetectionOracle>],
    scoring: Arc<dyn ScoringFunctions + Send + Sync>,
    config: OnlineConfig,
    workers: usize,
    metrics: ExecMetrics,
) -> VideoRepository {
    parallel_ingest_into(
        oracles,
        scoring,
        config,
        workers,
        metrics,
        MemorySink::new(),
    )
    .expect("MemorySink never fails")
}

#[cfg(test)]
mod tests {
    use super::*;
    use svq_core::PaperScoring;
    use svq_storage::JsonDirSink;
    use svq_types::{ActionClass, ObjectClass, VideoId};
    use svq_vision::models::ModelSuite;
    use svq_vision::synth::{ObjectSpec, ScenarioSpec};

    fn oracles(n: u64) -> Vec<Arc<DetectionOracle>> {
        (0..n)
            .map(|i| {
                let spec = ScenarioSpec::activitynet(
                    VideoId::new(i),
                    1_500,
                    ActionClass::named("jumping"),
                    vec![ObjectSpec::correlated(ObjectClass::named("car"))],
                    7 + i,
                );
                Arc::new(spec.generate().oracle(ModelSuite::accurate()))
            })
            .collect()
    }

    /// Byte-identical repository comparison via the persistence format.
    fn fingerprint(repo: &VideoRepository) -> Vec<String> {
        repo.catalogs()
            .map(|v| serde_json::to_string(&*v.unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn parallel_ingest_matches_sequential() {
        let oracles = oracles(4);
        let scoring: Arc<dyn ScoringFunctions + Send + Sync> = Arc::new(PaperScoring);
        let config = OnlineConfig::default();

        let sequential = VideoRepository::from_catalogs(
            oracles.iter().map(|o| ingest(o, &PaperScoring, &config)),
        );
        let parallel = parallel_ingest(&oracles, scoring, config, 4, ExecMetrics::new());

        assert_eq!(parallel.len(), 4);
        assert_eq!(fingerprint(&parallel), fingerprint(&sequential));
    }

    #[test]
    fn spilled_ingest_matches_memory_and_bounds_buffering() {
        let oracles = oracles(6);
        let scoring: Arc<dyn ScoringFunctions + Send + Sync> = Arc::new(PaperScoring);
        let config = OnlineConfig::default();
        let workers = 2;

        let memory = parallel_ingest(
            &oracles,
            scoring.clone(),
            config,
            workers,
            ExecMetrics::new(),
        );

        let dir = std::env::temp_dir().join("svq_parallel_spill_test");
        std::fs::remove_dir_all(&dir).ok();
        let metrics = ExecMetrics::new();
        let report = parallel_ingest_into(
            &oracles,
            scoring,
            config,
            workers,
            metrics.clone(),
            JsonDirSink::create(&dir).unwrap(),
        )
        .unwrap();
        assert_eq!(report.videos, 6);
        assert!(report.bytes_written > 0);

        let snap = metrics.snapshot();
        assert_eq!(snap.ingest.catalogs_built, 6);
        assert_eq!(snap.ingest.catalogs_sunk, 6);
        assert_eq!(snap.ingest.buffered, 0, "hand-off drained");
        assert!(
            snap.ingest.buffered_high_water <= workers as u64 + 1,
            "hand-off exceeded workers+1: {}",
            snap.ingest.buffered_high_water
        );
        assert_eq!(snap.ingest.bytes_written, report.bytes_written);

        // The spilled directory reloads into the same repository the
        // memory sink produced.
        let reloaded = VideoRepository::open_dir(&dir).unwrap();
        assert_eq!(fingerprint(&reloaded), fingerprint(&memory));
        std::fs::remove_dir_all(&dir).ok();
    }
}
