//! Parallel repository ingestion.
//!
//! Ingestion (§4.1) is query-independent and per-video: each video's catalog
//! is built from its own detections only. That makes the fan-out trivial to
//! parallelise — one pool job per video — and the fan-in the only place
//! determinism could leak. [`parallel_ingest`] closes that hole by merging
//! finished catalogs through [`VideoRepository::from_catalogs`], which keys
//! storage by [`svq_types::VideoId`]: the resulting repository is identical
//! to a sequential ingest no matter how workers interleaved.

use crate::metrics::ExecMetrics;
use crate::pool::WorkerPool;
use crossbeam::channel::unbounded;
use std::sync::Arc;
use svq_core::offline::ingest;
use svq_core::online::OnlineConfig;
use svq_core::ScoringFunctions;
use svq_storage::VideoRepository;
use svq_vision::models::DetectionOracle;

/// Ingest many videos concurrently into one deterministic repository.
///
/// Spawns one job per oracle on a fresh pool of `workers` threads (metrics
/// land in `metrics` under one session entry per video). Panicking ingests
/// are isolated by the pool; their videos are simply absent from the result,
/// mirroring how the multiplexer poisons only the failing session.
pub fn parallel_ingest(
    oracles: &[Arc<DetectionOracle>],
    scoring: Arc<dyn ScoringFunctions + Send + Sync>,
    config: OnlineConfig,
    workers: usize,
    metrics: ExecMetrics,
) -> VideoRepository {
    let pool = WorkerPool::new(workers, oracles.len().max(1), metrics);
    let (tx, rx) = unbounded();
    for oracle in oracles {
        let oracle = oracle.clone();
        let scoring = scoring.clone();
        let tx = tx.clone();
        let counters = pool
            .metrics()
            .register_session(format!("ingest/v{}", oracle.truth().video.raw()));
        pool.submit(Box::new(move || {
            let started = std::time::Instant::now();
            let catalog = ingest(&oracle, scoring.as_ref(), &config);
            counters
                .clips_processed
                .fetch_add(catalog.clip_count, std::sync::atomic::Ordering::Relaxed);
            counters.eval_nanos.fetch_add(
                started.elapsed().as_nanos() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            let _ = tx.send(catalog);
        }));
    }
    drop(tx);
    // Workers drop their tx clones with the job closures; collecting until
    // disconnect therefore yields exactly the non-panicked catalogs.
    let catalogs: Vec<_> = rx.iter().collect();
    pool.shutdown();
    VideoRepository::from_catalogs(catalogs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svq_core::PaperScoring;
    use svq_types::{ActionClass, ObjectClass, VideoId};
    use svq_vision::models::ModelSuite;
    use svq_vision::synth::{ObjectSpec, ScenarioSpec};

    fn oracles(n: u64) -> Vec<Arc<DetectionOracle>> {
        (0..n)
            .map(|i| {
                let spec = ScenarioSpec::activitynet(
                    VideoId::new(i),
                    1_500,
                    ActionClass::named("jumping"),
                    vec![ObjectSpec::correlated(ObjectClass::named("car"))],
                    7 + i,
                );
                Arc::new(spec.generate().oracle(ModelSuite::accurate()))
            })
            .collect()
    }

    /// Byte-identical repository comparison via the persistence format.
    fn fingerprint(repo: &VideoRepository) -> Vec<String> {
        repo.iter()
            .map(|v| serde_json::to_string(v).unwrap())
            .collect()
    }

    #[test]
    fn parallel_ingest_matches_sequential() {
        let oracles = oracles(4);
        let scoring: Arc<dyn ScoringFunctions + Send + Sync> = Arc::new(PaperScoring);
        let config = OnlineConfig::default();

        let sequential = VideoRepository::from_catalogs(
            oracles.iter().map(|o| ingest(o, &PaperScoring, &config)),
        );
        let parallel = parallel_ingest(&oracles, scoring, config, 4, ExecMetrics::new());

        assert_eq!(parallel.len(), 4);
        assert_eq!(fingerprint(&parallel), fingerprint(&sequential));
    }
}
