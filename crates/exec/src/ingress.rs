//! Sharded asynchronous ingress for the session multiplexer.
//!
//! The accept path ([`crate::SessionMux::feed`]) used to apply backpressure
//! inline: one full [`Block`](crate::Backpressure::Block) mailbox stalled
//! the caller — and, through `feed_streams`' round-robin loop, every other
//! live stream behind it. This module decouples the two sides. Each
//! session's stream hashes by `VideoId` to one of N *shards*; a shard is an
//! unbounded FIFO queue of ingress events plus one feeder thread that moves
//! tickets into session mailboxes, applying the backpressure policy there.
//! `feed` becomes a non-blocking enqueue, and a stalled mailbox blocks only
//! its shard's feeder.
//!
//! Ordering: all events for a session traverse the same shard queue in
//! accept order, and a shard delivers FIFO, so per-session feed order — the
//! determinism anchor of the multiplexer — is preserved at any shard count.
//! End-of-stream markers ride the same queue and therefore cannot overtake
//! a ticket fed before them.

use crate::metrics::ShardCounters;
use crate::mux::{deliver, IngressEvent, MuxCore};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::rt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use svq_types::VideoId;

/// The sharded ingress: N queues, N feeder threads, shared counters.
pub(crate) struct Ingress {
    shards: Vec<Shard>,
}

struct Shard {
    /// `None` once shutdown began; dropping the sender ends the feeder's
    /// `rx.iter()` after it drains everything already queued.
    tx: Option<Sender<IngressEvent>>,
    counters: Arc<ShardCounters>,
    feeder: Option<rt::JoinHandle<()>>,
}

impl Ingress {
    /// Spawn `shards` feeder threads delivering into `core`'s sessions.
    pub(crate) fn new(shards: usize, core: Arc<MuxCore>) -> Self {
        let blocks = core.pool.metrics().register_shards(shards.max(1));
        let shards = blocks
            .into_iter()
            .enumerate()
            .map(|(i, counters)| {
                let (tx, rx) = unbounded::<IngressEvent>();
                let core = core.clone();
                let in_thread = counters.clone();
                let feeder = rt::spawn(&format!("svq-ingress-{i}"), move || {
                    for event in rx.iter() {
                        in_thread.ingress_depth.fetch_sub(1, Ordering::Relaxed);
                        deliver(&core, event, &in_thread);
                    }
                })
                .expect("spawn ingress feeder");
                Shard {
                    tx: Some(tx),
                    counters,
                    feeder: Some(feeder),
                }
            })
            .collect();
        Self { shards }
    }

    /// Number of shards (and feeder threads).
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a stream's tickets route through.
    pub(crate) fn shard_of(&self, video: VideoId) -> usize {
        shard_index(video, self.shards.len())
    }

    /// Non-blocking enqueue onto a shard. The queue is unbounded, so the
    /// accept path never waits on a session mailbox.
    pub(crate) fn enqueue(&self, shard: usize, event: IngressEvent) {
        let shard = &self.shards[shard];
        // Count before sending so the feeder's decrement always pairs with
        // an earlier increment (the gauge can never wrap below zero).
        shard.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        shard.counters.ingress_depth.fetch_add(1, Ordering::Relaxed);
        if shard
            .tx
            .as_ref()
            .expect("ingress running")
            .send(event)
            .is_err()
        {
            unreachable!("feeder holds its receiver until the sender drops");
        }
    }

    fn shutdown_in_place(&mut self) {
        for shard in &mut self.shards {
            shard.tx.take();
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.feeder.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Ingress {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Deterministic `VideoId` → shard mapping. The splitmix64 finaliser
/// avalanches the raw id so the consecutive ids synthetic workloads use
/// spread across shards instead of marching through them in lockstep.
///
/// Public so operators (and the `mux-ingress` benchmark) can predict which
/// streams share a feeder thread — co-sharded streams contend for delivery;
/// streams on different shards cannot stall each other.
pub fn shard_index(video: VideoId, shards: usize) -> usize {
    let mut x = video.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for v in 0..64u64 {
                let s = shard_index(VideoId::new(v), shards);
                assert!(s < shards);
                assert_eq!(s, shard_index(VideoId::new(v), shards), "deterministic");
            }
        }
    }

    #[test]
    fn shard_index_spreads_consecutive_ids() {
        // 64 consecutive VideoIds over 4 shards: every shard must see some
        // traffic (raw modulo would too, but this pins the avalanche in
        // case the hash changes).
        let shards = 4;
        let mut hit = vec![0usize; shards];
        for v in 0..64u64 {
            hit[shard_index(VideoId::new(v), shards)] += 1;
        }
        assert!(hit.iter().all(|&h| h > 0), "unbalanced: {hit:?}");
    }
}
