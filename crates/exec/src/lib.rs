//! # svq-exec — concurrent execution engine for SVQ-ACT
//!
//! The paper's engines are single-stream by construction: `Svaqd` consumes
//! one video's clips in order, ingestion builds one video's catalog at a
//! time. Real deployments watch many streams and answer many queries at
//! once. This crate adds that layer without touching the algorithms:
//!
//! * [`pool::WorkerPool`] — fixed worker threads behind a bounded job
//!   queue, with per-job panic isolation and graceful drain-then-join
//!   shutdown.
//! * [`mux::SessionMux`] — the session multiplexer: each (query, stream)
//!   pair owns its engine and a FIFO mailbox with a configurable
//!   backpressure policy; an atomic scheduled flag makes each session an
//!   actor, so results are byte-identical to sequential runs at any worker
//!   count, shard count, or drain batch size.
//! * [`ingress::Ingress`] — the sharded asynchronous ingress behind
//!   [`mux::SessionMux::feed`]: streams hash by `VideoId` to per-shard
//!   queues with one feeder thread each, so the accept path never blocks
//!   on a full mailbox and a stalled session stalls only its shard.
//! * [`ingest::parallel_ingest_into`] — one job per video fanning into a
//!   pluggable [`svq_storage::CatalogSink`] through a bounded hand-off (at
//!   most `workers + 1` finished catalogs resident): `MemorySink` keeps
//!   today's in-RAM repository, `JsonDirSink` streams every catalog
//!   straight to disk so repository scale is bounded by storage, not RAM.
//!   [`ingest::parallel_ingest`] is the memory-sink shorthand.
//! * [`metrics::ExecMetrics`] — atomics-only counter registry (clips/sec
//!   per session and pool-wide, queue depths, stage latencies) snapshotted
//!   by `svqact mux` and `svq-bench`.
//!
//! Everything is built on `crossbeam` channels and `parking_lot` locks —
//! no other dependencies.

#![forbid(unsafe_code)]

pub mod ingest;
pub mod ingress;
pub mod metrics;
pub mod mux;
pub mod pool;

pub use ingest::{parallel_ingest, parallel_ingest_into};
pub use ingress::shard_index;
pub use metrics::{
    ExecMetrics, IngestCounters, IngestSnapshot, LatencyHistogram, MetricsSnapshot, ServerCounters,
    ServerSnapshot, SessionSnapshot, ShardSnapshot,
};
pub use mux::{
    Backpressure, ClipNotice, FeedError, MuxOptions, SessionEngine, SessionError, SessionId,
    SessionMux, SessionResult, POISON_CLIP,
};
pub use pool::{Job, WorkerPool};

/// Compile-time thread-safety proofs for everything the executor moves
/// across threads. The engines were written single-threaded; these
/// assertions pin down — at compile time, with no test to forget to run —
/// that none of them ever grows an `Rc`/`RefCell`/raw-pointer field that
/// would silently make the multiplexer unsound.
#[allow(dead_code)]
mod thread_safety {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}

    const _: () = {
        // Online engine state: owned by one session, handed between workers.
        assert_send::<svq_core::Svaqd>();
        assert_send::<svq_core::expr::ExprSvaqd>();
        assert_send::<crate::mux::SessionEngine>();
        // Clip inputs: the oracle is shared read-only across sessions; an
        // owned view travels into whichever worker evaluates the clip.
        assert_send::<svq_vision::models::DetectionOracle>();
        assert_sync::<svq_vision::models::DetectionOracle>();
        assert_send::<svq_vision::OwnedClipView>();
        // Offline side: per-video catalogs cross the ingest fan-in channel;
        // the merged repository is read by query threads.
        assert_send::<svq_storage::IngestedVideo>();
        assert_send::<svq_storage::ClipScoreTable>();
        assert_send::<svq_storage::VideoRepository>();
        assert_sync::<svq_storage::VideoRepository>();
        // The executor's own shared surface.
        assert_send::<crate::ExecMetrics>();
        assert_sync::<crate::ExecMetrics>();
        assert_send::<crate::SessionMux>();
        assert_sync::<crate::SessionMux>();
    };
}
