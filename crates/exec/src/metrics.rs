//! Execution metrics registry.
//!
//! Lock-free counters (atomics; `parking_lot` only to guard the session
//! list) updated by feeders and workers, exposed through [`ExecMetrics::snapshot`]
//! as a plain data [`MetricsSnapshot`] that `svqact mux` and `svq-bench`
//! print. Rates are computed at snapshot time from a monotonic start
//! instant, so reading metrics never perturbs the hot path.

use parking_lot::{rt, Condvar, Mutex, RwLock};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters for one multiplexed session.
#[derive(Debug, Default)]
pub struct SessionCounters {
    /// Clips fully evaluated through the session's engine.
    pub clips_processed: AtomicU64,
    /// Tickets discarded by the drop-oldest backpressure policy.
    pub dropped: AtomicU64,
    /// Current mailbox depth (tickets enqueued and not yet consumed).
    pub queue_depth: AtomicU64,
    /// Nanoseconds feeders spent blocked on a full mailbox.
    pub feed_block_nanos: AtomicU64,
    /// Nanoseconds workers spent inside engine evaluation for this session.
    pub eval_nanos: AtomicU64,
}

impl SessionCounters {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Counters for one ingress shard (see `svq_exec::ingress`).
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Events accepted into the shard's ingress queue (feeds + finishes).
    pub enqueued: AtomicU64,
    /// Clip tickets the shard feeder moved into session mailboxes.
    pub delivered: AtomicU64,
    /// Current ingress queue depth (events enqueued and not yet delivered).
    pub ingress_depth: AtomicU64,
    /// Nanoseconds the shard feeder spent blocked on full `Block` mailboxes.
    pub feed_block_nanos: AtomicU64,
}

/// Counters for the parallel-ingest fan-in (see `svq_exec::ingest`).
///
/// "Buffered" counts catalogs a worker has finished building that the
/// sink consumer has not yet pulled out of the bounded hand-off. With a
/// capacity-1 hand-off channel the high-water mark is bounded by
/// `workers + 1` (each worker holding one finished catalog on a blocked
/// send, plus the one in the channel) — the invariant the spill path
/// exists to enforce, asserted by tests and the `ingest-spill` bench.
#[derive(Debug, Default)]
pub struct IngestCounters {
    /// Catalogs completed by workers.
    pub catalogs_built: AtomicU64,
    /// Catalogs accepted by the sink.
    pub catalogs_sunk: AtomicU64,
    /// Bytes the sink reported durably written (0 for memory sinks).
    pub bytes_written: AtomicU64,
    /// Nanoseconds spent inside `CatalogSink::accept` (serialisation +
    /// write + rename + manifest append for the spill sink).
    pub sink_nanos: AtomicU64,
    /// Finished catalogs currently waiting in the hand-off (gauge).
    pub buffered: AtomicU64,
    /// High-water mark of `buffered` over the run.
    pub buffered_high_water: AtomicU64,
}

impl IngestCounters {
    /// A worker finished a catalog: it now occupies the hand-off.
    pub(crate) fn enter_buffer(&self) {
        self.catalogs_built.fetch_add(1, Ordering::Relaxed);
        let depth = self.buffered.fetch_add(1, Ordering::Relaxed) + 1;
        self.buffered_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// The consumer pulled a catalog out of the hand-off.
    pub(crate) fn exit_buffer(&self) {
        self.buffered.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Number of fixed power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds; the last bucket absorbs everything above).
const LATENCY_BUCKETS: usize = 32;

/// A hand-rolled fixed-bucket latency histogram.
///
/// Lock-free: `record` is two relaxed `fetch_add`s on the hot path.
/// Buckets are powers of two in microseconds, so 32 of them span 1 µs to
/// over an hour with ≤ 2× relative error — plenty for serving-latency
/// tails. Quantiles are read at snapshot time and report the *upper* edge
/// of the bucket holding the requested rank (a conservative estimate:
/// reported p99 is never below the true p99's bucket).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let idx = (micros.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e6 / n as f64
    }

    /// The `q`-quantile (`0 < q <= 1`) in milliseconds: the upper edge of
    /// the bucket containing the rank-`ceil(q·n)` observation. 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return (1u128 << (i + 1)) as f64 / 1e3;
            }
        }
        // Unreachable while count tracks the buckets; degrade gracefully.
        (1u128 << LATENCY_BUCKETS) as f64 / 1e3
    }
}

/// Counters for the `svq-serve` service layer.
///
/// All updates are relaxed atomics on connection/request paths; the
/// latency histogram covers successfully answered requests end-to-end
/// (parse → execute → response flushed).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections currently admitted and not yet closed (gauge).
    pub active_conns: AtomicU64,
    /// High-water mark of `active_conns`.
    pub peak_conns: AtomicU64,
    /// Connections admitted past the admission controller.
    pub accepted: AtomicU64,
    /// Connections refused with a `busy` frame (all slots occupied).
    pub rejected_busy: AtomicU64,
    /// Connections refused with a `draining` frame (shutdown in progress).
    pub rejected_draining: AtomicU64,
    /// Connections closed by a read/write deadline expiring.
    pub timed_out: AtomicU64,
    /// Malformed frames answered with a typed error (connection survived).
    pub malformed: AtomicU64,
    /// Acceptor `accept` failures survived with backoff (e.g. EMFILE).
    pub accept_errors: AtomicU64,
    /// Offline `query` requests whose catalog was already resident.
    pub catalog_hits: AtomicU64,
    /// Offline `query` requests that had to (re)load their catalog.
    pub catalog_misses: AtomicU64,
    /// `query` requests answered.
    pub req_query: AtomicU64,
    /// `stream` requests answered.
    pub req_stream: AtomicU64,
    /// `subscribe` requests answered.
    pub req_subscribe: AtomicU64,
    /// `unsubscribe` requests answered.
    pub req_unsubscribe: AtomicU64,
    /// `stats` requests answered.
    pub req_stats: AtomicU64,
    /// `shutdown` requests honoured.
    pub req_shutdown: AtomicU64,
    /// Standing subscriptions currently registered (gauge).
    pub subs_active: AtomicU64,
    /// High-water mark of `subs_active`.
    pub subs_peak: AtomicU64,
    /// Subscriptions ever registered.
    pub subs_opened: AtomicU64,
    /// `event` frames handed to subscription push queues.
    pub subs_events: AtomicU64,
    /// `lagged` gap notices pushed after a push-queue overflow.
    pub subs_lagged: AtomicU64,
    /// Events dropped (and counted) because a push queue was at budget.
    pub subs_missed: AtomicU64,
    /// End-to-end latency of answered requests.
    pub latency: LatencyHistogram,
}

impl ServerCounters {
    /// A connection was admitted: bump the gauge and its high-water mark.
    pub fn conn_opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let active = self.active_conns.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_conns.fetch_max(active, Ordering::Relaxed);
    }

    /// An admitted connection finished (any reason).
    pub fn conn_closed(&self) {
        self.active_conns.fetch_sub(1, Ordering::Relaxed);
    }

    /// A subscription was registered: bump the gauge and its high-water
    /// mark.
    pub fn sub_opened(&self) {
        self.subs_opened.fetch_add(1, Ordering::Relaxed);
        let active = self.subs_active.fetch_add(1, Ordering::Relaxed) + 1;
        self.subs_peak.fetch_max(active, Ordering::Relaxed);
    }

    /// A subscription was torn down (unsubscribe, connection close, or
    /// source end).
    pub fn sub_closed(&self) {
        self.subs_active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Counters for the worker pool itself.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Jobs executed to completion (including panicked ones).
    pub jobs_executed: AtomicU64,
    /// Jobs that panicked (each poisons only its own session).
    pub jobs_panicked: AtomicU64,
    /// Current depth of the pool's job queue.
    pub queue_depth: AtomicU64,
}

/// The process-wide exec metrics registry.
///
/// Cheap to clone (`Arc` inside); one registry is shared by a pool, its
/// multiplexer, and whatever wants to print progress.
#[derive(Clone, Default)]
pub struct ExecMetrics {
    inner: Arc<MetricsInner>,
}

struct MetricsInner {
    started: Instant,
    workers: AtomicU64,
    pool: PoolCounters,
    ingest: IngestCounters,
    server: ServerCounters,
    /// Clips processed by sessions that have since been retired — folded
    /// in so `total_clips` stays monotonic across session churn.
    retired_clips: AtomicU64,
    sessions: RwLock<Vec<(String, Arc<SessionCounters>)>>,
    shards: RwLock<Vec<Arc<ShardCounters>>>,
}

impl Default for MetricsInner {
    fn default() -> Self {
        Self {
            started: Instant::now(),
            workers: AtomicU64::new(0),
            pool: PoolCounters::default(),
            ingest: IngestCounters::default(),
            server: ServerCounters::default(),
            retired_clips: AtomicU64::new(0),
            sessions: RwLock::new(Vec::new()),
            shards: RwLock::new(Vec::new()),
        }
    }
}

impl ExecMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool-level counters.
    pub fn pool(&self) -> &PoolCounters {
        &self.inner.pool
    }

    /// Parallel-ingest fan-in counters.
    pub fn ingest(&self) -> &IngestCounters {
        &self.inner.ingest
    }

    /// Service-layer counters.
    pub fn server(&self) -> &ServerCounters {
        &self.inner.server
    }

    pub(crate) fn set_workers(&self, n: usize) {
        self.inner.workers.store(n as u64, Ordering::Relaxed);
    }

    /// Register a session's counter block under a display label.
    pub fn register_session(&self, label: String) -> Arc<SessionCounters> {
        let counters = Arc::new(SessionCounters::default());
        self.inner.sessions.write().push((label, counters.clone()));
        counters
    }

    /// Retire a session's counter block: drop its per-session snapshot line
    /// while folding its processed-clip total into a monotonic residue, so
    /// a long-lived server answering thousands of stream requests neither
    /// grows the snapshot without bound nor loses throughput history.
    pub fn retire_session(&self, counters: &Arc<SessionCounters>) {
        let mut sessions = self.inner.sessions.write();
        if let Some(at) = sessions.iter().position(|(_, c)| Arc::ptr_eq(c, counters)) {
            let (_, retired) = sessions.remove(at);
            self.inner.retired_clips.fetch_add(
                retired.clips_processed.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
    }

    /// Register one counter block per ingress shard.
    pub fn register_shards(&self, n: usize) -> Vec<Arc<ShardCounters>> {
        let counters: Vec<Arc<ShardCounters>> =
            (0..n).map(|_| Arc::new(ShardCounters::default())).collect();
        self.inner.shards.write().extend(counters.iter().cloned());
        counters
    }

    /// Point-in-time view of every counter plus derived rates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let elapsed = self.inner.started.elapsed().as_secs_f64().max(1e-9);
        let sessions: Vec<SessionSnapshot> = self
            .inner
            .sessions
            .read()
            .iter()
            .map(|(label, c)| {
                let clips = c.clips_processed.load(Ordering::Relaxed);
                SessionSnapshot {
                    label: label.clone(),
                    clips_processed: clips,
                    clips_per_sec: clips as f64 / elapsed,
                    dropped: c.dropped.load(Ordering::Relaxed),
                    queue_depth: c.queue_depth.load(Ordering::Relaxed),
                    feed_block_ms: c.feed_block_nanos.load(Ordering::Relaxed) as f64 / 1e6,
                    eval_ms: c.eval_nanos.load(Ordering::Relaxed) as f64 / 1e6,
                }
            })
            .collect();
        let total_clips: u64 = sessions.iter().map(|s| s.clips_processed).sum::<u64>()
            + self.inner.retired_clips.load(Ordering::Relaxed);
        let shards: Vec<ShardSnapshot> = self
            .inner
            .shards
            .read()
            .iter()
            .enumerate()
            .map(|(shard, c)| ShardSnapshot {
                shard,
                enqueued: c.enqueued.load(Ordering::Relaxed),
                delivered: c.delivered.load(Ordering::Relaxed),
                ingress_depth: c.ingress_depth.load(Ordering::Relaxed),
                feed_block_ms: c.feed_block_nanos.load(Ordering::Relaxed) as f64 / 1e6,
            })
            .collect();
        let ing = &self.inner.ingest;
        let srv = &self.inner.server;
        let requests = srv.req_query.load(Ordering::Relaxed)
            + srv.req_stream.load(Ordering::Relaxed)
            + srv.req_subscribe.load(Ordering::Relaxed)
            + srv.req_unsubscribe.load(Ordering::Relaxed)
            + srv.req_stats.load(Ordering::Relaxed)
            + srv.req_shutdown.load(Ordering::Relaxed);
        let server = ServerSnapshot {
            active_conns: srv.active_conns.load(Ordering::Relaxed),
            peak_conns: srv.peak_conns.load(Ordering::Relaxed),
            accepted: srv.accepted.load(Ordering::Relaxed),
            rejected_busy: srv.rejected_busy.load(Ordering::Relaxed),
            rejected_draining: srv.rejected_draining.load(Ordering::Relaxed),
            timed_out: srv.timed_out.load(Ordering::Relaxed),
            malformed: srv.malformed.load(Ordering::Relaxed),
            accept_errors: srv.accept_errors.load(Ordering::Relaxed),
            catalog_hits: srv.catalog_hits.load(Ordering::Relaxed),
            catalog_misses: srv.catalog_misses.load(Ordering::Relaxed),
            req_query: srv.req_query.load(Ordering::Relaxed),
            req_stream: srv.req_stream.load(Ordering::Relaxed),
            req_subscribe: srv.req_subscribe.load(Ordering::Relaxed),
            req_unsubscribe: srv.req_unsubscribe.load(Ordering::Relaxed),
            req_stats: srv.req_stats.load(Ordering::Relaxed),
            req_shutdown: srv.req_shutdown.load(Ordering::Relaxed),
            subs_active: srv.subs_active.load(Ordering::Relaxed),
            subs_peak: srv.subs_peak.load(Ordering::Relaxed),
            subs_opened: srv.subs_opened.load(Ordering::Relaxed),
            subs_events: srv.subs_events.load(Ordering::Relaxed),
            subs_lagged: srv.subs_lagged.load(Ordering::Relaxed),
            subs_missed: srv.subs_missed.load(Ordering::Relaxed),
            requests,
            requests_per_sec: requests as f64 / elapsed,
            latency_mean_ms: srv.latency.mean_ms(),
            latency_p50_ms: srv.latency.quantile_ms(0.50),
            latency_p95_ms: srv.latency.quantile_ms(0.95),
            latency_p99_ms: srv.latency.quantile_ms(0.99),
        };
        MetricsSnapshot {
            elapsed_sec: elapsed,
            workers: self.inner.workers.load(Ordering::Relaxed),
            jobs_executed: self.inner.pool.jobs_executed.load(Ordering::Relaxed),
            jobs_panicked: self.inner.pool.jobs_panicked.load(Ordering::Relaxed),
            pool_queue_depth: self.inner.pool.queue_depth.load(Ordering::Relaxed),
            total_clips,
            total_clips_per_sec: total_clips as f64 / elapsed,
            ingest: IngestSnapshot {
                catalogs_built: ing.catalogs_built.load(Ordering::Relaxed),
                catalogs_sunk: ing.catalogs_sunk.load(Ordering::Relaxed),
                bytes_written: ing.bytes_written.load(Ordering::Relaxed),
                sink_ms: ing.sink_nanos.load(Ordering::Relaxed) as f64 / 1e6,
                buffered: ing.buffered.load(Ordering::Relaxed),
                buffered_high_water: ing.buffered_high_water.load(Ordering::Relaxed),
            },
            server,
            shards,
            sessions,
            lock_holds: lock_hold_snapshots(),
        }
    }

    /// Spawn a background thread delivering a fresh [`MetricsSnapshot`] to
    /// `sink` every `every` until the returned [`MetricsReporter`] is
    /// stopped (or dropped). Backs `svqact mux --metrics-every <secs>`.
    ///
    /// The reporter parks on a condvar rather than sleeping, so `stop()`
    /// returns promptly instead of waiting out the interval.
    pub fn spawn_reporter<F>(&self, every: Duration, mut sink: F) -> MetricsReporter
    where
        F: FnMut(MetricsSnapshot) + Send + 'static,
    {
        let metrics = self.clone();
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let in_thread = shared.clone();
        let handle = rt::spawn("svq-metrics-reporter", move || {
            let (stop, cv) = &*in_thread;
            let mut stopped = stop.lock();
            loop {
                // Check before parking: a stop that lands before this
                // thread first takes the lock has already spent its
                // notification, and nothing else would wake the wait.
                if *stopped {
                    return;
                }
                let timed_out = cv.wait_for(&mut stopped, every).timed_out();
                if *stopped {
                    return;
                }
                if timed_out {
                    sink(metrics.snapshot());
                }
                // Spurious wake with no stop: park again.
            }
        })
        .expect("spawn metrics reporter");
        MetricsReporter {
            shared,
            handle: Some(handle),
        }
    }
}

/// Handle to a periodic reporter thread from [`ExecMetrics::spawn_reporter`].
/// Dropping it stops the thread.
pub struct MetricsReporter {
    shared: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<rt::JoinHandle<()>>,
}

impl MetricsReporter {
    /// Stop the reporter and join its thread.
    pub fn stop(mut self) {
        self.stop_in_place();
    }

    fn stop_in_place(&mut self) {
        let (stop, cv) = &*self.shared;
        *stop.lock() = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsReporter {
    fn drop(&mut self) {
        self.stop_in_place();
    }
}

/// One session's metrics at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    pub label: String,
    pub clips_processed: u64,
    pub clips_per_sec: f64,
    pub dropped: u64,
    pub queue_depth: u64,
    /// Total feeder time blocked on this session's mailbox.
    pub feed_block_ms: f64,
    /// Total worker time inside engine evaluation.
    pub eval_ms: f64,
}

/// One ingress shard's metrics at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    pub shard: usize,
    pub enqueued: u64,
    pub delivered: u64,
    /// Events waiting in the shard's ingress queue right now.
    pub ingress_depth: u64,
    /// Total feeder time blocked on full session mailboxes in this shard.
    pub feed_block_ms: f64,
}

/// The parallel-ingest fan-in at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IngestSnapshot {
    pub catalogs_built: u64,
    pub catalogs_sunk: u64,
    pub bytes_written: u64,
    /// Total time inside `CatalogSink::accept` (spill latency).
    pub sink_ms: f64,
    /// Finished catalogs currently waiting in the hand-off.
    pub buffered: u64,
    /// Peak simultaneous waiting catalogs — bounded by `workers + 1`.
    pub buffered_high_water: u64,
}

/// The `svq-serve` service layer at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerSnapshot {
    /// Connections currently admitted.
    pub active_conns: u64,
    /// Peak simultaneous admitted connections.
    pub peak_conns: u64,
    /// Total connections admitted.
    pub accepted: u64,
    /// Connections refused with a `busy` frame.
    pub rejected_busy: u64,
    /// Connections refused with a `draining` frame.
    pub rejected_draining: u64,
    /// Connections closed by an expired deadline.
    pub timed_out: u64,
    /// Malformed frames answered with typed errors.
    pub malformed: u64,
    /// Acceptor `accept` failures survived with backoff.
    pub accept_errors: u64,
    /// Offline queries served from an already-resident catalog.
    pub catalog_hits: u64,
    /// Offline queries that (re)loaded their catalog from disk.
    pub catalog_misses: u64,
    pub req_query: u64,
    pub req_stream: u64,
    pub req_subscribe: u64,
    pub req_unsubscribe: u64,
    pub req_stats: u64,
    pub req_shutdown: u64,
    /// Standing-query subscriptions currently registered.
    pub subs_active: u64,
    /// Peak simultaneous subscriptions.
    pub subs_peak: u64,
    /// Subscriptions ever opened.
    pub subs_opened: u64,
    /// `event` frames pushed to subscribers.
    pub subs_events: u64,
    /// `lagged` notices pushed when a push queue overflowed.
    pub subs_lagged: u64,
    /// Events dropped (and accounted) across all lagged subscribers.
    pub subs_missed: u64,
    /// All requests answered.
    pub requests: u64,
    /// Answered-request throughput since registry start.
    pub requests_per_sec: f64,
    pub latency_mean_ms: f64,
    pub latency_p50_ms: f64,
    pub latency_p95_ms: f64,
    pub latency_p99_ms: f64,
}

/// Guard-lifetime statistics for one lock-acquisition site, from the
/// lock-order auditor. Only populated under `--features lock-audit`;
/// always empty otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct LockHoldSnapshot {
    /// `file:line:column` of the `#[track_caller]` acquisition site.
    pub site: String,
    /// Guards acquired (and released) at this site.
    pub count: u64,
    /// Total milliseconds guards from this site were held.
    pub total_ms: f64,
    /// Longest single hold, in milliseconds.
    pub max_ms: f64,
}

/// Whole-registry metrics at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub elapsed_sec: f64,
    pub workers: u64,
    pub jobs_executed: u64,
    pub jobs_panicked: u64,
    pub pool_queue_depth: u64,
    pub total_clips: u64,
    /// Pool-wide throughput across all sessions.
    pub total_clips_per_sec: f64,
    pub ingest: IngestSnapshot,
    pub server: ServerSnapshot,
    pub shards: Vec<ShardSnapshot>,
    pub sessions: Vec<SessionSnapshot>,
    /// Longest-held lock guards per acquisition site (lock-audit builds
    /// only; empty without the feature).
    pub lock_holds: Vec<LockHoldSnapshot>,
}

/// Guard-lifetime report from the lock auditor, longest hold first.
/// Compiled to an empty list without `--features lock-audit`.
fn lock_hold_snapshots() -> Vec<LockHoldSnapshot> {
    #[cfg(feature = "lock-audit")]
    {
        parking_lot::lock_audit::guard_report()
            .into_iter()
            .map(|h| LockHoldSnapshot {
                site: h.site,
                count: h.count,
                total_ms: h.total_nanos as f64 / 1e6,
                max_ms: h.max_nanos as f64 / 1e6,
            })
            .collect()
    }
    #[cfg(not(feature = "lock-audit"))]
    Vec::new()
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "exec: {} workers, {:.2}s elapsed, {} clips ({:.0} clips/s), \
             {} jobs ({} panicked), pool queue {}",
            self.workers,
            self.elapsed_sec,
            self.total_clips,
            self.total_clips_per_sec,
            self.jobs_executed,
            self.jobs_panicked,
            self.pool_queue_depth,
        )?;
        if self.server.accepted + self.server.rejected_busy + self.server.rejected_draining > 0 {
            writeln!(
                f,
                "  serve    {:>4} active (peak {})  {:>6} accepted  busy {:>4}  \
                 draining {:>4}  timeout {:>4}  malformed {:>4}",
                self.server.active_conns,
                self.server.peak_conns,
                self.server.accepted,
                self.server.rejected_busy,
                self.server.rejected_draining,
                self.server.timed_out,
                self.server.malformed,
            )?;
            if self.server.accept_errors + self.server.catalog_hits + self.server.catalog_misses > 0
            {
                writeln!(
                    f,
                    "  accept errors {:>4}  catalog hits {:>6}  misses {:>6}",
                    self.server.accept_errors, self.server.catalog_hits, self.server.catalog_misses,
                )?;
            }
            writeln!(
                f,
                "  requests {:>6} ({:>6.0}/s)  query {:>5}  stream {:>5}  stats {:>5}  \
                 shutdown {:>2}  p50 {:>7.2} ms  p95 {:>7.2} ms  p99 {:>7.2} ms",
                self.server.requests,
                self.server.requests_per_sec,
                self.server.req_query,
                self.server.req_stream,
                self.server.req_stats,
                self.server.req_shutdown,
                self.server.latency_p50_ms,
                self.server.latency_p95_ms,
                self.server.latency_p99_ms,
            )?;
            if self.server.subs_opened > 0 {
                writeln!(
                    f,
                    "  subs     {:>4} active (peak {})  {:>6} opened  events {:>8}  \
                     lagged {:>4}  missed {:>6}",
                    self.server.subs_active,
                    self.server.subs_peak,
                    self.server.subs_opened,
                    self.server.subs_events,
                    self.server.subs_lagged,
                    self.server.subs_missed,
                )?;
            }
        }
        if self.ingest.catalogs_built > 0 {
            writeln!(
                f,
                "  ingest   {:>8} built  {:>8} sunk  {:>10} bytes  sink {:>8.1} ms  \
                 buffered {} (peak {})",
                self.ingest.catalogs_built,
                self.ingest.catalogs_sunk,
                self.ingest.bytes_written,
                self.ingest.sink_ms,
                self.ingest.buffered,
                self.ingest.buffered_high_water,
            )?;
        }
        for s in &self.shards {
            writeln!(
                f,
                "  shard {:<2} {:>8} enqueued  {:>8} delivered  ingress {:>4}  \
                 feed-block {:>8.1} ms",
                s.shard, s.enqueued, s.delivered, s.ingress_depth, s.feed_block_ms,
            )?;
        }
        for s in &self.sessions {
            writeln!(
                f,
                "  {:<28} {:>8} clips ({:>8.0}/s)  dropped {:>5}  queue {:>4}  \
                 eval {:>9.1} ms  feed-block {:>8.1} ms",
                s.label,
                s.clips_processed,
                s.clips_per_sec,
                s.dropped,
                s.queue_depth,
                s.eval_ms,
                s.feed_block_ms,
            )?;
        }
        // Top guard-hold sites (lock-audit builds only; the list is empty
        // otherwise). Five is enough to spot the contended lock.
        for h in self.lock_holds.iter().take(5) {
            writeln!(
                f,
                "  hold     {:<40} {:>8} holds  max {:>8.3} ms  total {:>8.1} ms",
                h.site, h.count, h.max_ms, h.total_ms,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_aggregates_sessions() {
        let metrics = ExecMetrics::new();
        metrics.set_workers(4);
        let a = metrics.register_session("q0/v0".into());
        let b = metrics.register_session("q1/v0".into());
        a.clips_processed.store(30, Ordering::Relaxed);
        b.clips_processed.store(12, Ordering::Relaxed);
        b.dropped.store(3, Ordering::Relaxed);
        let snap = metrics.snapshot();
        assert_eq!(snap.workers, 4);
        assert_eq!(snap.total_clips, 42);
        assert_eq!(snap.sessions.len(), 2);
        assert_eq!(snap.sessions[1].dropped, 3);
        assert!(snap.total_clips_per_sec > 0.0);
        let text = snap.to_string();
        assert!(text.contains("q0/v0"));
        assert!(text.contains("42 clips"));
    }

    #[test]
    fn shard_counters_appear_in_snapshots() {
        let metrics = ExecMetrics::new();
        let shards = metrics.register_shards(2);
        shards[0].enqueued.store(41, Ordering::Relaxed);
        shards[0].delivered.store(40, Ordering::Relaxed);
        shards[0].ingress_depth.store(1, Ordering::Relaxed);
        shards[1]
            .feed_block_nanos
            .store(2_000_000, Ordering::Relaxed);
        let snap = metrics.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[0].shard, 0);
        assert_eq!(snap.shards[0].enqueued, 41);
        assert_eq!(snap.shards[0].delivered, 40);
        assert_eq!(snap.shards[0].ingress_depth, 1);
        assert!((snap.shards[1].feed_block_ms - 2.0).abs() < 1e-9);
        let text = snap.to_string();
        assert!(text.contains("shard 0"), "{text}");
        assert!(text.contains("41 enqueued"), "{text}");
    }

    #[test]
    fn ingest_counters_track_hand_off_high_water() {
        let metrics = ExecMetrics::new();
        let ing = metrics.ingest();
        ing.enter_buffer();
        ing.enter_buffer();
        ing.exit_buffer();
        ing.enter_buffer(); // depth back to 2: peak stays 2
        ing.catalogs_sunk.store(1, Ordering::Relaxed);
        ing.bytes_written.store(4_096, Ordering::Relaxed);
        ing.sink_nanos.store(3_000_000, Ordering::Relaxed);
        let snap = metrics.snapshot();
        assert_eq!(snap.ingest.catalogs_built, 3);
        assert_eq!(snap.ingest.catalogs_sunk, 1);
        assert_eq!(snap.ingest.buffered, 2);
        assert_eq!(snap.ingest.buffered_high_water, 2);
        assert_eq!(snap.ingest.bytes_written, 4_096);
        assert!((snap.ingest.sink_ms - 3.0).abs() < 1e-9);
        let text = snap.to_string();
        assert!(text.contains("ingest"), "{text}");
        assert!(text.contains("peak 2"), "{text}");
        // Quiet registries do not print an ingest line.
        assert!(!ExecMetrics::new().snapshot().to_string().contains("ingest"));
    }

    #[test]
    fn histogram_quantiles_bound_observations() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ms(0.5), 0.0, "empty histogram reads 0");
        assert_eq!(h.mean_ms(), 0.0);
        // 99 fast observations (~100 µs) and one slow outlier (~50 ms).
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.50);
        let p99 = h.quantile_ms(0.99);
        let p100 = h.quantile_ms(1.0);
        // Bucket upper edges: conservative but within 2x of the truth.
        assert!((0.1..=0.26).contains(&p50), "p50 = {p50}");
        assert!(p99 <= p100, "quantiles are monotonic");
        assert!((50.0..=140.0).contains(&p100), "p100 = {p100}");
        assert!(h.mean_ms() > 0.0);
    }

    #[test]
    fn server_counters_roll_up_into_the_snapshot() {
        let metrics = ExecMetrics::new();
        let srv = metrics.server();
        srv.conn_opened();
        srv.conn_opened();
        srv.conn_closed();
        srv.rejected_busy.fetch_add(1, Ordering::Relaxed);
        srv.req_query.fetch_add(3, Ordering::Relaxed);
        srv.req_stats.fetch_add(1, Ordering::Relaxed);
        srv.latency.record(Duration::from_micros(700));
        let snap = metrics.snapshot().server;
        assert_eq!(snap.active_conns, 1);
        assert_eq!(snap.peak_conns, 2);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected_busy, 1);
        assert_eq!(snap.requests, 4);
        assert!(snap.requests_per_sec > 0.0);
        assert!(snap.latency_p99_ms > 0.0);
        let text = metrics.snapshot().to_string();
        assert!(text.contains("serve"), "{text}");
        assert!(text.contains("p99"), "{text}");
        // Registries that never served do not print server lines.
        let quiet = ExecMetrics::new().snapshot().to_string();
        assert!(!quiet.contains("serve"), "{quiet}");
    }

    #[test]
    fn retiring_a_session_preserves_clip_totals() {
        let metrics = ExecMetrics::new();
        let a = metrics.register_session("stream/1".into());
        let b = metrics.register_session("stream/2".into());
        a.clips_processed.store(10, Ordering::Relaxed);
        b.clips_processed.store(5, Ordering::Relaxed);
        assert_eq!(metrics.snapshot().total_clips, 15);
        metrics.retire_session(&a);
        let snap = metrics.snapshot();
        assert_eq!(snap.sessions.len(), 1, "retired line is gone");
        assert_eq!(snap.total_clips, 15, "clip total stays monotonic");
        // Retiring twice (or an unknown block) is harmless.
        metrics.retire_session(&a);
        assert_eq!(metrics.snapshot().total_clips, 15);
    }

    #[test]
    fn reporter_delivers_snapshots_then_stops() {
        let metrics = ExecMetrics::new();
        let session = metrics.register_session("r/0".into());
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let reporter = metrics.spawn_reporter(Duration::from_millis(2), move |snap| {
            sink.lock().push(snap.total_clips);
        });
        session.clips_processed.store(7, Ordering::Relaxed);
        // Wait until at least one snapshot lands (bounded, not timing-exact).
        for _ in 0..500 {
            if !seen.lock().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        reporter.stop();
        let delivered = seen.lock().len();
        assert!(delivered >= 1, "reporter never fired");
        // Stopped means stopped: no more deliveries.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(seen.lock().len(), delivered);
    }

    #[test]
    fn dropping_the_reporter_joins_promptly() {
        let metrics = ExecMetrics::new();
        let started = Instant::now();
        let reporter = metrics.spawn_reporter(Duration::from_secs(3600), |_| {});
        drop(reporter);
        // The condvar wakes the thread immediately; nothing close to the
        // hour-long interval.
        assert!(started.elapsed() < Duration::from_secs(60));
    }
}
