//! Inference cost accounting.
//!
//! The paper reports that online query latency is dominated (>98 %) by
//! model inference (§5.2, "Runtime Superiority"). Our substrate replaces
//! GPU inference with table lookups, so wall-clock alone would misrepresent
//! the paper's cost structure. [`CostModel`] attaches the per-invocation
//! simulated costs of the profiled models, and [`CostLedger`] accumulates
//! them alongside real algorithm wall-clock, letting the runtime experiment
//! reproduce the decomposition.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-invocation simulated inference costs, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Object detector + tracker, per frame.
    pub object_ms_per_frame: f64,
    /// Action recognizer, per shot.
    pub action_ms_per_shot: f64,
}

impl CostModel {
    /// Derive the cost model from a model suite.
    pub fn from_suite(suite: &crate::models::ModelSuite) -> Self {
        Self {
            object_ms_per_frame: suite.detector.ms_per_frame + suite.tracker.ms_per_frame,
            action_ms_per_shot: suite.recognizer.ms_per_shot,
        }
    }
}

/// Accumulated cost of one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Frames sent through the object detector.
    pub object_frames: u64,
    /// Shots sent through the action recognizer.
    pub action_shots: u64,
    /// Simulated object-detection milliseconds.
    pub object_ms: f64,
    /// Simulated action-recognition milliseconds.
    pub action_ms: f64,
    /// Real wall-clock spent in the query algorithm itself, milliseconds.
    pub algorithm_ms: f64,
}

impl CostLedger {
    /// Charge an object-detection pass over one frame.
    pub fn charge_object_frame(&mut self, model: &CostModel) {
        self.object_frames += 1;
        self.object_ms += model.object_ms_per_frame;
    }

    /// Charge an action-recognition pass over one shot.
    pub fn charge_action_shot(&mut self, model: &CostModel) {
        self.action_shots += 1;
        self.action_ms += model.action_ms_per_shot;
    }

    /// Record algorithm wall-clock.
    pub fn charge_algorithm(&mut self, elapsed: Duration) {
        self.algorithm_ms += elapsed.as_secs_f64() * 1e3;
    }

    /// Total simulated inference milliseconds.
    pub fn inference_ms(&self) -> f64 {
        self.object_ms + self.action_ms
    }

    /// End-to-end milliseconds (inference + algorithm).
    pub fn total_ms(&self) -> f64 {
        self.inference_ms() + self.algorithm_ms
    }

    /// Fraction of end-to-end time spent on inference — the paper's
    /// ">98 %" figure for the online case.
    pub fn inference_fraction(&self) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            0.0
        } else {
            self.inference_ms() / total
        }
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.object_frames += other.object_frames;
        self.action_shots += other.action_shots;
        self.object_ms += other.object_ms;
        self.action_ms += other.action_ms;
        self.algorithm_ms += other.algorithm_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelSuite;

    #[test]
    fn charges_accumulate() {
        let model = CostModel {
            object_ms_per_frame: 75.0,
            action_ms_per_shot: 140.0,
        };
        let mut ledger = CostLedger::default();
        for _ in 0..100 {
            ledger.charge_object_frame(&model);
        }
        for _ in 0..10 {
            ledger.charge_action_shot(&model);
        }
        ledger.charge_algorithm(Duration::from_millis(20));
        assert_eq!(ledger.object_frames, 100);
        assert_eq!(ledger.action_shots, 10);
        assert!((ledger.object_ms - 7_500.0).abs() < 1e-9);
        assert!((ledger.action_ms - 1_400.0).abs() < 1e-9);
        assert!((ledger.total_ms() - 8_920.0).abs() < 1e-6);
        assert!(ledger.inference_fraction() > 0.99);
    }

    #[test]
    fn from_suite_includes_tracker() {
        let m = CostModel::from_suite(&ModelSuite::accurate());
        assert!((m.object_ms_per_frame - 93.0).abs() < 1e-9); // 75 + 18
        assert!((m.action_ms_per_shot - 140.0).abs() < 1e-9);
        let ideal = CostModel::from_suite(&ModelSuite::ideal());
        assert_eq!(ideal.object_ms_per_frame, 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let model = CostModel {
            object_ms_per_frame: 1.0,
            action_ms_per_shot: 2.0,
        };
        let mut a = CostLedger::default();
        a.charge_object_frame(&model);
        let mut b = CostLedger::default();
        b.charge_action_shot(&model);
        a.merge(&b);
        assert_eq!(a.object_frames, 1);
        assert_eq!(a.action_shots, 1);
        assert!((a.inference_ms() - 3.0).abs() < 1e-12);
    }
}
