//! Ground-truth scripts.
//!
//! A [`GroundTruth`] is the annotation layer the paper's authors produced by
//! hand for ActivityNet videos (§5.1, "Datasets"): for each video, the
//! temporal boundaries of every appearance of each queried object and every
//! episode of each action. The simulator uses the same structure *as the
//! scene script* — the stochastic models in [`crate::models`] sample their
//! detections from it — and the evaluation uses it as ground truth, exactly
//! mirroring the paper's setup where the detector sees the scene the
//! annotators annotated.

use serde::{Deserialize, Serialize};
use svq_types::{
    ActionClass, ActionQuery, BBox, FrameId, FrameInterval, Interval, ObjectClass, TrackId,
    VideoGeometry, VideoId,
};

/// One object instance visible over a contiguous frame range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectTrack {
    pub class: ObjectClass,
    pub track: TrackId,
    /// Frames during which the instance is visible.
    pub frames: FrameInterval,
    /// Nominal detectability of this instance in `[0, 1]`: small/occluded
    /// instances are harder for every detector; profiles scale their TPR by
    /// this factor.
    pub visibility: f64,
    /// Nominal location (fixed per track; adequate for spatial predicates).
    pub bbox: BBox,
}

/// One action episode over a contiguous frame range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionSpan {
    pub class: ActionClass,
    pub frames: FrameInterval,
    /// How prototypical the episode is; recognizer TPR scales with it.
    pub salience: f64,
}

/// The full script / annotation of one video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    pub video: VideoId,
    pub geometry: VideoGeometry,
    pub total_frames: u64,
    pub tracks: Vec<ObjectTrack>,
    pub actions: Vec<ActionSpan>,
}

impl GroundTruth {
    /// Create an empty script.
    pub fn new(video: VideoId, geometry: VideoGeometry, total_frames: u64) -> Self {
        Self {
            video,
            geometry,
            total_frames,
            tracks: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// Object tracks of `class` visible on `frame`.
    pub fn tracks_at(
        &self,
        frame: FrameId,
        class: ObjectClass,
    ) -> impl Iterator<Item = &ObjectTrack> {
        self.tracks
            .iter()
            .filter(move |t| t.class == class && t.frames.contains(frame))
    }

    /// Whether any instance of `class` is visible on `frame`.
    pub fn object_visible(&self, frame: FrameId, class: ObjectClass) -> bool {
        self.tracks_at(frame, class).next().is_some()
    }

    /// All object tracks visible on `frame` (any class).
    pub fn all_tracks_at(&self, frame: FrameId) -> impl Iterator<Item = &ObjectTrack> {
        self.tracks.iter().filter(move |t| t.frames.contains(frame))
    }

    /// The action span of `class` covering the *majority* of the shot
    /// containing `shot_start..shot_end` frames, if any. Action recognizers
    /// classify whole shots; a shot "contains" the action when at least half
    /// its frames lie inside an episode.
    pub fn action_in_shot(
        &self,
        shot_frames: std::ops::Range<u64>,
        class: ActionClass,
    ) -> Option<&ActionSpan> {
        let shot_len = shot_frames.end - shot_frames.start;
        if shot_len == 0 {
            return None;
        }
        let shot_iv = Interval::new(
            FrameId::new(shot_frames.start),
            FrameId::new(shot_frames.end - 1),
        );
        self.actions
            .iter()
            .filter(|a| a.class == class)
            .find(|a| a.frames.overlap_len(&shot_iv) * 2 >= shot_len)
    }

    /// Merged visibility intervals of an object class across the video.
    pub fn object_intervals(&self, class: ObjectClass) -> Vec<FrameInterval> {
        svq_types::interval::merge_intervals(
            self.tracks
                .iter()
                .filter(|t| t.class == class)
                .map(|t| t.frames)
                .collect(),
        )
    }

    /// Merged episode intervals of an action class.
    pub fn action_intervals(&self, class: ActionClass) -> Vec<FrameInterval> {
        svq_types::interval::merge_intervals(
            self.actions
                .iter()
                .filter(|a| a.class == class)
                .map(|a| a.frames)
                .collect(),
        )
    }

    /// Ground-truth result sequences for a query: the intersection of the
    /// temporal intervals of all query-specified objects and the action
    /// (§5.1: "The intersection of the temporal intervals of all the
    /// query-specified objects and the action will be considered as the
    /// result sequence that satisfies this query").
    ///
    /// Intersections separated by less than two seconds merge: annotators
    /// do not split a result because an object left frame for a moment,
    /// and the paper's clip-level semantics cannot resolve sub-clip gaps
    /// either.
    pub fn query_truth(&self, query: &ActionQuery) -> Vec<FrameInterval> {
        let mut current = self.action_intervals(query.action);
        for &obj in &query.objects {
            let other = self.object_intervals(obj);
            current = intersect_interval_lists(&current, &other);
            if current.is_empty() {
                break;
            }
        }
        let tolerance = (2 * self.geometry.fps) as u64;
        merge_with_tolerance(current, tolerance)
    }

    /// Total frames covered by the ground-truth sequences of a query.
    pub fn query_truth_frames(&self, query: &ActionQuery) -> u64 {
        self.query_truth(query).iter().map(|iv| iv.len()).sum()
    }
}

/// Merge intervals whose gaps are below `tolerance` frames.
pub fn merge_with_tolerance(intervals: Vec<FrameInterval>, tolerance: u64) -> Vec<FrameInterval> {
    let mut out: Vec<FrameInterval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match out.last_mut() {
            Some(last) if iv.start.raw() <= last.end.raw() + tolerance + 1 => {
                *last = last.hull(&iv);
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Intersect two sorted disjoint interval lists by a linear sweep.
pub fn intersect_interval_lists(a: &[FrameInterval], b: &[FrameInterval]) -> Vec<FrameInterval> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if let Some(iv) = a[i].intersect(&b[j]) {
            out.push(iv);
        }
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fi(s: u64, e: u64) -> FrameInterval {
        Interval::new(FrameId::new(s), FrameId::new(e))
    }

    fn sample_truth() -> GroundTruth {
        let mut gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 1_000);
        let car = ObjectClass::named("car");
        let person = ObjectClass::named("person");
        let jumping = ActionClass::named("jumping");
        gt.tracks.push(ObjectTrack {
            class: car,
            track: TrackId::new(1),
            frames: fi(100, 399),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.tracks.push(ObjectTrack {
            class: car,
            track: TrackId::new(2),
            frames: fi(350, 500),
            visibility: 0.8,
            bbox: BBox::new(0.1, 0.1, 0.4, 0.4),
        });
        gt.tracks.push(ObjectTrack {
            class: person,
            track: TrackId::new(3),
            frames: fi(0, 999),
            visibility: 1.0,
            bbox: BBox::new(0.5, 0.2, 0.9, 0.9),
        });
        gt.actions.push(ActionSpan {
            class: jumping,
            frames: fi(200, 449),
            salience: 1.0,
        });
        gt
    }

    #[test]
    fn visibility_queries() {
        let gt = sample_truth();
        let car = ObjectClass::named("car");
        assert!(!gt.object_visible(FrameId::new(99), car));
        assert!(gt.object_visible(FrameId::new(100), car));
        assert!(gt.object_visible(FrameId::new(500), car));
        assert!(!gt.object_visible(FrameId::new(501), car));
        assert_eq!(gt.tracks_at(FrameId::new(360), car).count(), 2);
        assert_eq!(gt.all_tracks_at(FrameId::new(360)).count(), 3);
    }

    #[test]
    fn object_intervals_merge_overlapping_tracks() {
        let gt = sample_truth();
        assert_eq!(
            gt.object_intervals(ObjectClass::named("car")),
            vec![fi(100, 500)]
        );
        assert!(gt.object_intervals(ObjectClass::named("dog")).is_empty());
    }

    #[test]
    fn action_in_shot_uses_majority_rule() {
        let gt = sample_truth();
        let jumping = ActionClass::named("jumping");
        // Shot covering frames 195..205: 5 of 10 frames in [200,449] — ok.
        assert!(gt.action_in_shot(195..205, jumping).is_some());
        // Shot covering frames 190..200: 0 frames inside.
        assert!(gt.action_in_shot(190..200, jumping).is_none());
        // Shot 196..206: 6 inside.
        assert!(gt.action_in_shot(196..206, jumping).is_some());
        // Shot 444..454: 6 of 10 inside [200,449] — ok.
        assert!(gt.action_in_shot(444..454, jumping).is_some());
        // Shot 445..455: 5 of 10 inside — exactly half counts.
        assert!(gt.action_in_shot(445..455, jumping).is_some());
        // Shot 446..456: 4 of 10 — not a majority.
        assert!(gt.action_in_shot(446..456, jumping).is_none());
    }

    #[test]
    fn query_truth_is_interval_intersection() {
        let gt = sample_truth();
        let q = ActionQuery::named("jumping", &["car", "person"]);
        // action [200,449] ∩ car [100,500] ∩ person [0,999] = [200,449].
        assert_eq!(gt.query_truth(&q), vec![fi(200, 449)]);
        assert_eq!(gt.query_truth_frames(&q), 250);
        // Adding an absent object empties the truth.
        let q2 = ActionQuery::named("jumping", &["car", "dog"]);
        assert!(gt.query_truth(&q2).is_empty());
    }

    #[test]
    fn interval_list_intersection_cases() {
        let a = vec![fi(0, 10), fi(20, 30), fi(40, 50)];
        let b = vec![fi(5, 25), fi(45, 60)];
        assert_eq!(
            intersect_interval_lists(&a, &b),
            vec![fi(5, 10), fi(20, 25), fi(45, 50)]
        );
        assert!(intersect_interval_lists(&a, &[]).is_empty());
        // Touching-but-not-overlapping intervals do not intersect.
        let c = vec![fi(11, 19)];
        assert!(intersect_interval_lists(&a, &c).is_empty());
    }

    #[test]
    fn truth_serialises() {
        let gt = sample_truth();
        let json = serde_json::to_string(&gt).unwrap();
        let back: GroundTruth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, gt);
    }
}
