//! The production [`Clock`]: monotonic platform time.
//!
//! Lives here — not in `svq-types` or `svq-core` — because those crates are
//! determinism-checked by `svq-lint` (no `Instant::now` allowed); the
//! vision substrate is the layer that already owns simulated wall-cost, so
//! it is the natural home for the one real time source.

use std::time::Instant;
use svq_types::Clock;

/// A [`Clock`] backed by [`Instant`], anchored at construction.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl WallClock {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let t0 = c.now_nanos();
        let t1 = c.now_nanos();
        assert!(t1 >= t0);
        assert_eq!(c.nanos_since(u64::MAX), 0, "saturating, never underflows");
    }
}
