//! Model profiles: the accuracy/cost ladder of the paper's §5.1.
//!
//! Each profile calibrates a simulated model to the *accuracy class* of a
//! published model — not to its pixel-level behaviour, which the query
//! algorithms never observe. The operative quantities are the per-OU
//! true-positive rate, the burstiness of misses, the false-positive rate on
//! scene-confusable classes, the confidence-score distributions, and the
//! inference cost per invocation. Table 4's ladder (Mask R-CNN > YOLOv3;
//! ideal models = ground truth) and Table 5's pre-filter FPR levels
//! (objects ≈ 0.18-0.31, actions ≈ 0.10-0.16 on the evaluated queries) pin
//! the calibration.

use crate::noise::ScoreModel;
use serde::Serialize;

/// Calibration of a simulated object detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ObjectDetectorProfile {
    pub name: &'static str,
    /// Per-frame detection probability for a fully visible instance outside
    /// miss bursts.
    pub tpr: f64,
    /// Fraction of time a visible track sits in a sustained miss burst
    /// (occlusion, blur).
    pub miss_rate: f64,
    /// Mean length of a miss burst, frames.
    pub miss_burst: f64,
    /// False-positive rate on *scene-confusable* classes (the scenario
    /// decides which classes those are — e.g. "dish" in a kitchen video).
    pub fp_rate_confusable: f64,
    /// Mean false-positive burst length, frames.
    pub fp_burst: f64,
    /// Baseline false-positive rate on every other supported class.
    pub fp_rate_base: f64,
    /// Confidence scores.
    pub scores: ScoreModel,
    /// Simulated inference cost, milliseconds per frame.
    pub ms_per_frame: f64,
}

/// Calibration of a simulated action recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ActionRecognizerProfile {
    pub name: &'static str,
    /// Per-shot recognition probability for a prototypical episode.
    pub tpr: f64,
    /// Mean length of recognition dropouts inside an episode, shots.
    pub miss_burst: f64,
    /// Fraction of time inside an episode lost to dropouts.
    pub miss_rate: f64,
    /// False-positive rate per shot on scene-confusable action classes.
    pub fp_rate_confusable: f64,
    /// Mean false-positive burst length, shots.
    pub fp_burst: f64,
    /// Baseline false-positive rate on other action classes.
    pub fp_rate_base: f64,
    /// Confidence scores.
    pub scores: ScoreModel,
    /// Simulated inference cost, milliseconds per shot.
    pub ms_per_shot: f64,
}

/// Calibration of the simulated object tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrackerProfile {
    pub name: &'static str,
    /// Probability per frame that a track's identity is switched to a fresh
    /// identifier (the classic tracker failure mode).
    pub id_switch_rate: f64,
    /// Simulated cost, milliseconds per frame.
    pub ms_per_frame: f64,
}

// False-positive scores straddle the decision thresholds (T_obj = 0.5,
// T_act = 0.45 by default): a real detector's false fires are mostly
// low-confidence, so thresholding removes the bulk of them and the scan
// statistics deal with the high-confidence remainder. Raw (pre-threshold)
// rates are what Table 5's "w/o SVAQD" column reports.
const DEFAULT_OBJ_SCORES: ScoreModel = ScoreModel {
    tp_floor: 0.55,
    tp_shape: 2.5,
    fp_floor: 0.2,
    fp_ceil: 0.64,
};
const DEFAULT_ACT_SCORES: ScoreModel = ScoreModel {
    tp_floor: 0.5,
    tp_shape: 2.0,
    fp_floor: 0.2,
    fp_ceil: 0.54,
};

/// Mask R-CNN (He et al. 2017): the paper's accurate two-stage detector.
pub const MASK_RCNN: ObjectDetectorProfile = ObjectDetectorProfile {
    name: "MaskRCNN",
    tpr: 0.97,
    miss_rate: 0.03,
    miss_burst: 6.0,
    fp_rate_confusable: 0.20,
    fp_burst: 10.0,
    fp_rate_base: 0.0008,
    scores: DEFAULT_OBJ_SCORES,
    ms_per_frame: 75.0,
};

/// YOLOv3 (Redmon & Farhadi 2018): faster, noisier one-stage detector.
pub const YOLOV3: ObjectDetectorProfile = ObjectDetectorProfile {
    name: "YOLOv3",
    tpr: 0.90,
    miss_rate: 0.06,
    miss_burst: 8.0,
    fp_rate_confusable: 0.30,
    fp_burst: 14.0,
    fp_rate_base: 0.002,
    scores: DEFAULT_OBJ_SCORES,
    ms_per_frame: 22.0,
};

/// Ground-truth object "detector" — the paper's Ideal Model control.
pub const IDEAL_DETECTOR: ObjectDetectorProfile = ObjectDetectorProfile {
    name: "IdealDetector",
    tpr: 1.0,
    miss_rate: 0.0,
    miss_burst: 1.0,
    fp_rate_confusable: 0.0,
    fp_burst: 1.0,
    fp_rate_base: 0.0,
    scores: ScoreModel {
        tp_floor: 0.99,
        tp_shape: 8.0,
        fp_floor: 0.0,
        fp_ceil: 0.01,
    },
    ms_per_frame: 0.0,
};

/// I3D (Carreira & Zisserman 2017): the paper's two-stream inflated 3D
/// ConvNet action recognizer, trained on Kinetics.
pub const I3D: ActionRecognizerProfile = ActionRecognizerProfile {
    name: "I3D",
    tpr: 0.97,
    miss_burst: 1.0,
    miss_rate: 0.02,
    fp_rate_confusable: 0.13,
    fp_burst: 2.0,
    fp_rate_base: 0.001,
    scores: DEFAULT_ACT_SCORES,
    ms_per_shot: 140.0,
};

/// Ground-truth action "recognizer" — the Ideal Model control.
pub const IDEAL_RECOGNIZER: ActionRecognizerProfile = ActionRecognizerProfile {
    name: "IdealRecognizer",
    tpr: 1.0,
    miss_burst: 1.0,
    miss_rate: 0.0,
    fp_rate_confusable: 0.0,
    fp_burst: 1.0,
    fp_rate_base: 0.0,
    scores: ScoreModel {
        tp_floor: 0.99,
        tp_shape: 8.0,
        fp_floor: 0.0,
        fp_ceil: 0.01,
    },
    ms_per_shot: 0.0,
};

/// CenterTrack (Zhou et al. 2020): the paper's real-time tracker.
pub const CENTER_TRACK: TrackerProfile = TrackerProfile {
    name: "CenterTrack",
    id_switch_rate: 0.004,
    ms_per_frame: 18.0,
};

/// Perfect tracker — identities never switch.
pub const IDEAL_TRACKER: TrackerProfile = TrackerProfile {
    name: "IdealTracker",
    id_switch_rate: 0.0,
    ms_per_frame: 0.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the subject
    fn ladder_orders_accuracy_and_cost() {
        assert!(MASK_RCNN.tpr > YOLOV3.tpr);
        assert!(MASK_RCNN.fp_rate_confusable < YOLOV3.fp_rate_confusable);
        assert!(MASK_RCNN.ms_per_frame > YOLOV3.ms_per_frame);
        assert_eq!(IDEAL_DETECTOR.tpr, 1.0);
        assert_eq!(IDEAL_DETECTOR.fp_rate_confusable, 0.0);
    }

    #[test]
    fn confusable_fpr_matches_table5_band() {
        // Table 5 reports pre-SVAQD object FPR of 0.18-0.31 on the evaluated
        // queries and action FPR of 0.10-0.16.
        for p in [MASK_RCNN, YOLOV3] {
            assert!((0.15..=0.35).contains(&p.fp_rate_confusable), "{}", p.name);
        }
        assert!((0.08..=0.18).contains(&I3D.fp_rate_confusable));
    }

    #[test]
    fn profiles_serialise() {
        let json = serde_json::to_string(&MASK_RCNN).unwrap();
        assert!(json.contains("MaskRCNN"));
        assert!(json.contains("ms_per_frame"));
    }
}
