//! # svq-vision
//!
//! The simulated vision substrate.
//!
//! The paper runs Mask R-CNN / YOLOv3 (object detection), CenterTrack
//! (object tracking) and I3D (action recognition) over real videos. The
//! query algorithms under study never look at pixels — they consume the
//! models' *outputs*: per-frame object detections with confidence scores and
//! per-shot action scores, plus interval ground truth for evaluation. This
//! crate reproduces that interface with a statistically calibrated
//! simulator (see DESIGN.md for the substitution argument):
//!
//! * [`truth`] — ground-truth *scripts*: object-track intervals and action
//!   episodes on a frame timeline, plus the intersection semantics used to
//!   derive per-query ground-truth result sequences;
//! * [`synth`] — seeded scenario generators producing ActivityNet-like and
//!   movie-like scripts (episode lengths, occupancy, correlated objects);
//! * [`noise`] — bursty (two-state Markov) false-positive/false-negative
//!   processes: real detector errors are temporally correlated, which is
//!   precisely the regime scan statistics must discriminate against;
//! * [`models`] — the simulated [`ObjectDetector`], [`ActionRecognizer`]
//!   and tracker with per-model [`profiles`] (`MASK_RCNN`, `YOLOV3`, `I3D`,
//!   `CENTER_TRACK`, `IDEAL_*`) spanning the accuracy ladder of Table 4;
//! * [`cost`] — the inference cost model: per-invocation simulated
//!   milliseconds, so the runtime experiments can reproduce the paper's
//!   ">98 % of online latency is model inference" decomposition;
//! * [`stream`] — [`VideoStream`], the clip-at-a-time source the online
//!   algorithms consume, and the batch accessors ingestion uses.

#![forbid(unsafe_code)]

pub mod clock;
pub mod cost;
pub mod models;
pub mod noise;
pub mod profiles;
pub mod stream;
pub mod synth;
pub mod truth;

pub use clock::WallClock;
pub use cost::{CostLedger, CostModel};
pub use models::{ActionRecognizer, ModelSuite, ObjectDetector};
pub use stream::{ClipAccess, ClipData, FrameData, OwnedClipView, ShotData, VideoStream};
pub use synth::{MovieSpec, ScenarioSpec, SyntheticVideo};
pub use truth::{ActionSpan, GroundTruth, ObjectTrack};
