//! The simulated vision models.
//!
//! [`DetectionOracle`] materialises, for one video and one [`ModelSuite`],
//! every model output the paper's pipeline would produce: per-frame tracked
//! object detections and per-shot action scores. Outcomes are a
//! deterministic function of `(ground truth, suite, seed)` — independent of
//! *which* algorithm later reads them and in what order, exactly as a real
//! video's pixels are. Inference *cost* is charged separately at access
//! time (see [`crate::stream`]), so predicate short-circuiting saves
//! simulated inference without perturbing outcomes.
//!
//! Error structure (see [`crate::noise`]): misses and false fires are bursty
//! two-state Markov processes; false fires on scene-confusable classes run
//! at the profile's confusable rate (optionally scaled per class by the
//! scenario), all other classes at a low base rate; the tracker occasionally
//! switches identities.

use crate::noise::BurstProcess;
use crate::profiles::{
    ActionRecognizerProfile, ObjectDetectorProfile, TrackerProfile, CENTER_TRACK, I3D,
    IDEAL_DETECTOR, IDEAL_RECOGNIZER, IDEAL_TRACKER, MASK_RCNN, YOLOV3,
};
use crate::truth::GroundTruth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use svq_types::{
    ActionClass, ActionScore, BBox, Detection, FrameId, ObjectClass, ShotId, TrackId,
    TrackedDetection, Vocabulary,
};

/// Marker trait for simulated object detectors (implemented by the oracle's
/// read view); exists so downstream crates can be generic over detector
/// sources if they bring their own.
pub trait ObjectDetector {
    /// Detections on one frame (already tracked).
    fn detect(&self, frame: FrameId) -> &[TrackedDetection];
    /// Simulated inference cost per frame, milliseconds.
    fn ms_per_frame(&self) -> f64;
}

/// Marker trait for simulated action recognizers.
pub trait ActionRecognizer {
    /// Scores of all predicted action categories on one shot.
    fn recognize(&self, shot: ShotId) -> &[ActionScore];
    /// Simulated inference cost per shot, milliseconds.
    fn ms_per_shot(&self) -> f64;
}

/// A bundle of model profiles: detector + recognizer + tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSuite {
    pub detector: ObjectDetectorProfile,
    pub recognizer: ActionRecognizerProfile,
    pub tracker: TrackerProfile,
}

impl ModelSuite {
    /// Mask R-CNN + I3D + CenterTrack — the paper's accurate configuration.
    pub fn accurate() -> Self {
        Self {
            detector: MASK_RCNN,
            recognizer: I3D,
            tracker: CENTER_TRACK,
        }
    }

    /// YOLOv3 + I3D + CenterTrack — the faster, noisier configuration.
    pub fn fast() -> Self {
        Self {
            detector: YOLOV3,
            recognizer: I3D,
            tracker: CENTER_TRACK,
        }
    }

    /// Ground-truth models — the paper's Ideal Model control (Table 4).
    pub fn ideal() -> Self {
        Self {
            detector: IDEAL_DETECTOR,
            recognizer: IDEAL_RECOGNIZER,
            tracker: IDEAL_TRACKER,
        }
    }

    /// A human-readable name, e.g. `"MaskRCNN+I3D"`.
    pub fn name(&self) -> String {
        format!("{}+{}", self.detector.name, self.recognizer.name)
    }
}

/// Scene-level confusability: which classes the scene tends to fool the
/// models into firing on, with a per-class rate multiplier applied to the
/// profile's confusable FP rate.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SceneConfusion {
    pub objects: Vec<(ObjectClass, f64)>,
    pub actions: Vec<(ActionClass, f64)>,
}

/// Compressed sparse row storage: per-row slices over one backing vector.
#[derive(Debug, Clone)]
struct Csr<T> {
    items: Vec<T>,
    offsets: Vec<u32>,
}

impl<T> Csr<T> {
    fn builder(rows_hint: usize) -> CsrBuilder<T> {
        CsrBuilder {
            items: Vec::new(),
            offsets: {
                let mut v = Vec::with_capacity(rows_hint + 1);
                v.push(0);
                v
            },
        }
    }

    fn row(&self, i: usize) -> &[T] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.items[lo..hi]
    }

    fn rows(&self) -> usize {
        self.offsets.len() - 1
    }
}

struct CsrBuilder<T> {
    items: Vec<T>,
    offsets: Vec<u32>,
}

impl<T> CsrBuilder<T> {
    fn push_row(&mut self, row: impl IntoIterator<Item = T>) {
        self.items.extend(row);
        self.offsets.push(self.items.len() as u32);
    }

    fn finish(self) -> Csr<T> {
        Csr {
            items: self.items,
            offsets: self.offsets,
        }
    }
}

/// All model outputs for one `(video, suite, seed)` triple.
///
/// Construction simulates the full inference pass; accessors are cheap
/// slices. Use [`crate::stream::VideoStream`] to consume it clip-by-clip
/// with cost accounting, or index it directly during ingestion.
pub struct DetectionOracle {
    truth: Arc<GroundTruth>,
    suite: ModelSuite,
    frames: Csr<TrackedDetection>,
    shots: Csr<ActionScore>,
}

impl DetectionOracle {
    /// Simulate the suite over the whole video.
    pub fn new(
        truth: Arc<GroundTruth>,
        suite: ModelSuite,
        confusion: &SceneConfusion,
        seed: u64,
    ) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ truth.video.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let frames = Self::simulate_objects(&truth, &suite, confusion, &mut rng);
        let shots = Self::simulate_actions(&truth, &suite, confusion, &mut rng);
        Self {
            truth,
            suite,
            frames,
            shots,
        }
    }

    fn simulate_objects(
        truth: &GroundTruth,
        suite: &ModelSuite,
        confusion: &SceneConfusion,
        rng: &mut StdRng,
    ) -> Csr<TrackedDetection> {
        let det = &suite.detector;
        let n_frames = truth.total_frames as usize;
        let mut builder = Csr::builder(n_frames);

        // Per-class false-positive processes. Confusable classes get bursty
        // processes at the (scaled) confusable rate; every other class fires
        // i.i.d. at the base rate.
        let confusable: HashMap<ObjectClass, BurstProcess> = confusion
            .objects
            .iter()
            .map(|&(class, mult)| {
                let rate = (det.fp_rate_confusable * mult).min(0.95);
                (class, BurstProcess::with_rate(rate, det.fp_burst))
            })
            .collect();
        let mut fp_procs: Vec<(ObjectClass, BurstProcess)> = confusable.into_iter().collect();
        fp_procs.sort_by_key(|(c, _)| *c);

        // Per-track miss processes and tracker identity state.
        let mut miss: HashMap<TrackId, BurstProcess> = truth
            .tracks
            .iter()
            .map(|t| {
                (
                    t.track,
                    BurstProcess::with_rate(det.miss_rate, det.miss_burst),
                )
            })
            .collect();
        let mut assigned: HashMap<TrackId, TrackId> = HashMap::new();
        // Synthetic ids for tracker switches and phantom (FP) tracks live
        // far above ground-truth ids.
        let mut next_synthetic: u64 = 1 << 32;
        // Current phantom track per confusable class (one per burst).
        let mut phantom: HashMap<ObjectClass, TrackId> = HashMap::new();
        let mut phantom_active: HashMap<ObjectClass, bool> = HashMap::new();

        // Sort tracks by start frame for an active-set sweep.
        let mut order: Vec<usize> = (0..truth.tracks.len()).collect();
        order.sort_by_key(|&i| truth.tracks[i].frames.start);
        let mut next_track = 0usize;
        let mut active: Vec<usize> = Vec::new();

        let base_classes: Vec<ObjectClass> = if det.fp_rate_base > 0.0 {
            ObjectClass::all()
                .filter(|c| !confusion.objects.iter().any(|(cc, _)| cc == c))
                .collect()
        } else {
            Vec::new()
        };

        let mut row: Vec<TrackedDetection> = Vec::new();
        for f in 0..truth.total_frames {
            row.clear();
            let frame = FrameId::new(f);
            // Maintain the active track set.
            while next_track < order.len() && truth.tracks[order[next_track]].frames.start <= frame
            {
                active.push(order[next_track]);
                next_track += 1;
            }
            active.retain(|&i| truth.tracks[i].frames.end >= frame);

            // True detections.
            for &i in &active {
                let track = &truth.tracks[i];
                let in_miss = miss
                    .get_mut(&track.track)
                    .map(|m| m.step(rng))
                    .unwrap_or(false);
                let p = (det.tpr * (0.85 + 0.15 * track.visibility)).min(1.0);
                if !in_miss && p > 0.0 && rng.gen_bool(p) {
                    // Tracker identity, with occasional switches.
                    let id = assigned.entry(track.track).or_insert(track.track);
                    if suite.tracker.id_switch_rate > 0.0
                        && rng.gen_bool(suite.tracker.id_switch_rate)
                    {
                        *id = TrackId::new(next_synthetic);
                        next_synthetic += 1;
                    }
                    let jitter = 0.01 * (rng.gen::<f32>() - 0.5);
                    row.push(TrackedDetection {
                        detection: Detection {
                            class: track.class,
                            score: det.scores.sample_tp(track.visibility, rng),
                            bbox: BBox::new(
                                (track.bbox.x0 + jitter).clamp(0.0, 1.0),
                                (track.bbox.y0 + jitter).clamp(0.0, 1.0),
                                (track.bbox.x1 + jitter).clamp(0.0, 1.0),
                                (track.bbox.y1 + jitter).clamp(0.0, 1.0),
                            ),
                        },
                        track: *id,
                    });
                }
            }

            // Bursty false positives on confusable classes.
            for (class, proc_) in fp_procs.iter_mut() {
                let was_active = phantom_active.get(class).copied().unwrap_or(false);
                if proc_.step(rng) {
                    if !was_active {
                        phantom.insert(*class, TrackId::new(next_synthetic));
                        next_synthetic += 1;
                        phantom_active.insert(*class, true);
                    }
                    row.push(TrackedDetection {
                        detection: Detection {
                            class: *class,
                            score: det.scores.sample_fp(rng),
                            bbox: BBox::new(0.4, 0.4, 0.6, 0.6),
                        },
                        track: phantom[class],
                    });
                } else if was_active {
                    phantom_active.insert(*class, false);
                }
            }

            // Low-rate i.i.d. false positives everywhere else.
            if det.fp_rate_base > 0.0 {
                for &class in &base_classes {
                    if rng.gen_bool(det.fp_rate_base) {
                        row.push(TrackedDetection {
                            detection: Detection {
                                class,
                                score: det.scores.sample_fp(rng),
                                bbox: BBox::new(0.45, 0.45, 0.55, 0.55),
                            },
                            track: TrackId::new(next_synthetic),
                        });
                        next_synthetic += 1;
                    }
                }
            }

            builder.push_row(row.drain(..));
        }
        builder.finish()
    }

    fn simulate_actions(
        truth: &GroundTruth,
        suite: &ModelSuite,
        confusion: &SceneConfusion,
        rng: &mut StdRng,
    ) -> Csr<ActionScore> {
        let rec = &suite.recognizer;
        let n_shots = truth.geometry.shot_count(truth.total_frames) as usize;
        let mut builder = Csr::builder(n_shots);

        let mut fp_procs: Vec<(ActionClass, BurstProcess)> = confusion
            .actions
            .iter()
            .map(|&(class, mult)| {
                let rate = (rec.fp_rate_confusable * mult).min(0.95);
                (class, BurstProcess::with_rate(rate, rec.fp_burst))
            })
            .collect();
        fp_procs.sort_by_key(|(c, _)| *c);

        // Dropout processes per action class present in the truth.
        let mut miss: HashMap<ActionClass, BurstProcess> = truth
            .actions
            .iter()
            .map(|a| {
                (
                    a.class,
                    BurstProcess::with_rate(rec.miss_rate, rec.miss_burst),
                )
            })
            .collect();

        let base_classes: Vec<ActionClass> = if rec.fp_rate_base > 0.0 {
            ActionClass::all()
                .filter(|c| !confusion.actions.iter().any(|(cc, _)| cc == c))
                .collect()
        } else {
            Vec::new()
        };

        let mut row: Vec<ActionScore> = Vec::new();
        for s in 0..n_shots {
            row.clear();
            let shot_frames = truth.geometry.frames_of_shot(ShotId::new(s as u64));
            // True recognitions: one per action class active in the shot.
            let mut active_classes: Vec<(ActionClass, f64)> = Vec::new();
            for span in &truth.actions {
                if truth
                    .action_in_shot(shot_frames.clone(), span.class)
                    .map(|found| std::ptr::eq(found, span))
                    .unwrap_or(false)
                {
                    active_classes.push((span.class, span.salience));
                }
            }
            for (class, salience) in active_classes {
                let in_miss = miss.get_mut(&class).map(|m| m.step(rng)).unwrap_or(false);
                let p = (rec.tpr * (0.9 + 0.1 * salience)).min(1.0);
                if !in_miss && p > 0.0 && rng.gen_bool(p) {
                    row.push(ActionScore {
                        class,
                        score: rec.scores.sample_tp(salience, rng),
                    });
                }
            }
            // Bursty confusable false positives.
            for (class, proc_) in fp_procs.iter_mut() {
                if proc_.step(rng) && !row.iter().any(|a| a.class == *class) {
                    row.push(ActionScore {
                        class: *class,
                        score: rec.scores.sample_fp(rng),
                    });
                }
            }
            // Base-rate false positives.
            if rec.fp_rate_base > 0.0 {
                for &class in &base_classes {
                    if rng.gen_bool(rec.fp_rate_base) && !row.iter().any(|a| a.class == class) {
                        row.push(ActionScore {
                            class,
                            score: rec.scores.sample_fp(rng),
                        });
                    }
                }
            }
            builder.push_row(row.drain(..));
        }
        builder.finish()
    }

    /// The ground truth the oracle was simulated from.
    pub fn truth(&self) -> &Arc<GroundTruth> {
        &self.truth
    }

    /// Number of whole clips in this oracle's stream. Cheap metadata read
    /// for feeders and schedulers — no truth clone, no score-table access.
    pub fn clip_count(&self) -> u64 {
        self.truth.geometry.clip_count(self.truth.total_frames)
    }

    /// The simulated model suite.
    pub fn suite(&self) -> &ModelSuite {
        &self.suite
    }

    /// Number of frames simulated.
    pub fn frame_count(&self) -> u64 {
        self.frames.rows() as u64
    }

    /// Number of shots simulated.
    pub fn shot_count(&self) -> u64 {
        self.shots.rows() as u64
    }
}

impl ObjectDetector for DetectionOracle {
    fn detect(&self, frame: FrameId) -> &[TrackedDetection] {
        self.frames.row(frame.index())
    }

    fn ms_per_frame(&self) -> f64 {
        self.suite.detector.ms_per_frame + self.suite.tracker.ms_per_frame
    }
}

impl ActionRecognizer for DetectionOracle {
    fn recognize(&self, shot: ShotId) -> &[ActionScore] {
        self.shots.row(shot.index())
    }

    fn ms_per_shot(&self) -> f64 {
        self.suite.recognizer.ms_per_shot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{ActionSpan, ObjectTrack};
    use svq_types::{Interval, VideoGeometry, VideoId};

    fn truth_with_signal() -> Arc<GroundTruth> {
        let mut gt = GroundTruth::new(VideoId::new(1), VideoGeometry::default(), 5_000);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(1_000), FrameId::new(2_999)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(1_500), FrameId::new(2_499)),
            salience: 1.0,
        });
        Arc::new(gt)
    }

    fn rate_inside_outside(
        oracle: &DetectionOracle,
        class: ObjectClass,
        inside: std::ops::Range<u64>,
    ) -> (f64, f64) {
        let mut hits_in = 0u64;
        let mut hits_out = 0u64;
        let mut n_in = 0u64;
        let mut n_out = 0u64;
        for f in 0..oracle.frame_count() {
            let fired = oracle
                .detect(FrameId::new(f))
                .iter()
                .any(|d| d.detection.class == class && d.detection.score >= 0.5);
            if inside.contains(&f) {
                n_in += 1;
                hits_in += fired as u64;
            } else {
                n_out += 1;
                hits_out += fired as u64;
            }
        }
        (hits_in as f64 / n_in as f64, hits_out as f64 / n_out as f64)
    }

    #[test]
    fn ideal_models_match_ground_truth_exactly() {
        let truth = truth_with_signal();
        let oracle = DetectionOracle::new(
            truth.clone(),
            ModelSuite::ideal(),
            &SceneConfusion::default(),
            1,
        );
        for f in 0..truth.total_frames {
            let dets = oracle.detect(FrameId::new(f));
            let visible = truth.object_visible(FrameId::new(f), ObjectClass::named("car"));
            assert_eq!(
                dets.iter()
                    .any(|d| d.detection.class == ObjectClass::named("car")),
                visible
            );
            for d in dets {
                assert!(d.detection.score >= 0.99);
            }
        }
        // Shots: action recognised exactly on majority-covered shots.
        for s in 0..oracle.shot_count() {
            let fired = oracle
                .recognize(ShotId::new(s))
                .iter()
                .any(|a| a.class == ActionClass::named("jumping"));
            let expected = truth
                .action_in_shot(
                    truth.geometry.frames_of_shot(ShotId::new(s)),
                    ActionClass::named("jumping"),
                )
                .is_some();
            assert_eq!(fired, expected, "shot {s}");
        }
    }

    #[test]
    fn realistic_detector_rates_match_profile() {
        let truth = truth_with_signal();
        let car = ObjectClass::named("car");
        let confusion = SceneConfusion {
            objects: vec![(car, 1.0)],
            actions: vec![],
        };
        let oracle = DetectionOracle::new(truth, ModelSuite::accurate(), &confusion, 7);
        let (tpr, fpr) = rate_inside_outside(&oracle, car, 1_000..3_000);
        // Inside: tpr * (1 - miss_rate) ≈ 0.97 * 0.97 ≈ 0.94.
        assert!((0.85..=1.0).contains(&tpr), "tpr {tpr}");
        // Outside: the raw confusable rate is ≈ 0.2, but most false fires
        // score below the 0.5 threshold this test applies — the separation
        // the decision thresholds exploit.
        assert!((0.02..=0.2).contains(&fpr), "fpr {fpr}");
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let truth = truth_with_signal();
        let confusion = SceneConfusion {
            objects: vec![(ObjectClass::named("car"), 1.0)],
            actions: vec![(ActionClass::named("jumping"), 1.0)],
        };
        let a = DetectionOracle::new(truth.clone(), ModelSuite::accurate(), &confusion, 42);
        let b = DetectionOracle::new(truth, ModelSuite::accurate(), &confusion, 42);
        for f in 0..a.frame_count() {
            assert_eq!(a.detect(FrameId::new(f)), b.detect(FrameId::new(f)));
        }
        for s in 0..a.shot_count() {
            assert_eq!(a.recognize(ShotId::new(s)), b.recognize(ShotId::new(s)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let truth = truth_with_signal();
        let confusion = SceneConfusion {
            objects: vec![(ObjectClass::named("car"), 1.0)],
            actions: vec![],
        };
        let a = DetectionOracle::new(truth.clone(), ModelSuite::accurate(), &confusion, 1);
        let b = DetectionOracle::new(truth, ModelSuite::accurate(), &confusion, 2);
        let differs =
            (0..a.frame_count()).any(|f| a.detect(FrameId::new(f)) != b.detect(FrameId::new(f)));
        assert!(differs);
    }

    #[test]
    fn action_recognition_fires_inside_episodes() {
        let truth = truth_with_signal();
        let jumping = ActionClass::named("jumping");
        let confusion = SceneConfusion {
            objects: vec![],
            actions: vec![(jumping, 1.0)],
        };
        let oracle = DetectionOracle::new(truth.clone(), ModelSuite::accurate(), &confusion, 3);
        // Shots fully inside the episode: frames 1500-2499 = shots 150-249.
        let mut hits_in = 0;
        let mut hits_out = 0;
        let (mut n_in, mut n_out) = (0, 0);
        for s in 0..oracle.shot_count() {
            let fired = oracle
                .recognize(ShotId::new(s))
                .iter()
                .any(|a| a.class == jumping && a.score >= 0.45);
            if (150..250).contains(&s) {
                n_in += 1;
                hits_in += fired as u32;
            } else {
                n_out += 1;
                hits_out += fired as u32;
            }
        }
        let tpr = hits_in as f64 / n_in as f64;
        let fpr = hits_out as f64 / n_out as f64;
        assert!(tpr > 0.8, "action tpr {tpr}");
        // Post-threshold rate: most false fires score below T_act.
        assert!((0.01..0.25).contains(&fpr), "action fpr {fpr}");
    }

    #[test]
    fn tracker_ids_are_mostly_stable() {
        let truth = truth_with_signal();
        let oracle =
            DetectionOracle::new(truth, ModelSuite::accurate(), &SceneConfusion::default(), 9);
        let car = ObjectClass::named("car");
        let mut ids = std::collections::HashSet::new();
        for f in 1_000..3_000u64 {
            for d in oracle.detect(FrameId::new(f)) {
                if d.detection.class == car {
                    ids.insert(d.track);
                }
            }
        }
        // 2000 frames at 0.4% switch rate: expect a handful of identities,
        // never hundreds.
        assert!(!ids.is_empty());
        assert!(ids.len() < 40, "too many identity switches: {}", ids.len());
    }

    #[test]
    fn base_rate_false_positives_are_rare_but_present() {
        let truth = truth_with_signal();
        let oracle = DetectionOracle::new(
            truth,
            ModelSuite::accurate(),
            &SceneConfusion::default(),
            11,
        );
        let mut spurious = 0u64;
        for f in 0..oracle.frame_count() {
            spurious += oracle
                .detect(FrameId::new(f))
                .iter()
                .filter(|d| d.detection.class != ObjectClass::named("car"))
                .count() as u64;
        }
        // 5000 frames * 89 classes * 0.0008 ≈ 356 expected.
        assert!(
            spurious > 100,
            "expected some base-rate FPs, got {spurious}"
        );
        assert!(spurious < 1_200, "too many base-rate FPs: {spurious}");
    }
}
