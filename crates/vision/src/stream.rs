//! Clip-at-a-time video streaming.
//!
//! [`VideoStream`] is the `X.next()` of Algorithm 1: it walks a
//! [`DetectionOracle`] clip by clip, packaging the per-frame detections and
//! per-shot action scores of each clip into a [`ClipData`], and charging
//! simulated inference cost to a [`CostLedger`] *only for the occurrence
//! units the consumer actually requests* — which is how Algorithm 2's
//! predicate short-circuiting translates into saved inference.

use crate::cost::{CostLedger, CostModel};
use crate::models::{ActionRecognizer, DetectionOracle, ObjectDetector};
use std::sync::Arc;
use svq_types::{ActionScore, ClipId, FrameId, ShotId, TrackedDetection, VideoGeometry};

/// Model outputs for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameData {
    pub frame: FrameId,
    pub detections: Vec<TrackedDetection>,
}

/// Model outputs for one shot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotData {
    pub shot: ShotId,
    pub actions: Vec<ActionScore>,
}

/// One clip's worth of (lazily charged) model outputs.
///
/// Frame detections and shot scores are fetched — and their inference cost
/// charged — on demand through [`ClipView`]; consuming only the object
/// predicates of a clip never pays for its action recognition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipData {
    pub clip: ClipId,
    pub frames: Vec<FrameData>,
    pub shots: Vec<ShotData>,
}

/// Cost-charging access to one clip's model outputs — the surface the
/// online evaluators (`evaluate_clip` and the SVAQ/SVAQD push loops)
/// actually consume. Implemented by the borrowing [`ClipView`]
/// (single-threaded streaming) and the owning [`OwnedClipView`] (clip
/// tickets handed across threads by the exec layer).
pub trait ClipAccess {
    /// The clip id.
    fn clip(&self) -> ClipId;
    /// Detections on every frame of the clip (charges detector passes).
    fn object_frames(&mut self) -> Vec<FrameData>;
    /// Action scores on every shot of the clip (charges recognizer passes).
    fn action_shots(&mut self) -> Vec<ShotData>;
}

/// A borrowed, cost-charging view over one clip of the oracle.
pub struct ClipView<'a> {
    oracle: &'a DetectionOracle,
    cost_model: CostModel,
    ledger: &'a mut CostLedger,
    clip: ClipId,
    geometry: VideoGeometry,
}

impl<'a> ClipView<'a> {
    /// The clip id.
    pub fn clip(&self) -> ClipId {
        self.clip
    }

    /// Detections on every frame of the clip; charges one object-detector
    /// pass per frame.
    pub fn object_frames(&mut self) -> Vec<FrameData> {
        self.geometry
            .frames_of_clip(self.clip)
            .map(|f| {
                self.ledger.charge_object_frame(&self.cost_model);
                FrameData {
                    frame: FrameId::new(f),
                    detections: self.oracle.detect(FrameId::new(f)).to_vec(),
                }
            })
            .collect()
    }

    /// Detections on one frame of the clip (charged once per call).
    pub fn detections(&mut self, frame: FrameId) -> &[TrackedDetection] {
        debug_assert!(self
            .geometry
            .frames_of_clip(self.clip)
            .contains(&frame.raw()));
        self.ledger.charge_object_frame(&self.cost_model);
        self.oracle.detect(frame)
    }

    /// Action scores on every shot of the clip; charges one recognizer pass
    /// per shot.
    pub fn action_shots(&mut self) -> Vec<ShotData> {
        self.geometry
            .shots_of_clip(self.clip)
            .map(|s| {
                self.ledger.charge_action_shot(&self.cost_model);
                ShotData {
                    shot: ShotId::new(s),
                    actions: self.oracle.recognize(ShotId::new(s)).to_vec(),
                }
            })
            .collect()
    }

    /// Materialise the whole clip (pays for every frame and shot).
    pub fn materialise(&mut self) -> ClipData {
        ClipData {
            clip: self.clip,
            frames: self.object_frames(),
            shots: self.action_shots(),
        }
    }
}

impl ClipAccess for ClipView<'_> {
    fn clip(&self) -> ClipId {
        ClipView::clip(self)
    }

    fn object_frames(&mut self) -> Vec<FrameData> {
        ClipView::object_frames(self)
    }

    fn action_shots(&mut self) -> Vec<ShotData> {
        ClipView::action_shots(self)
    }
}

/// An owning, cost-charging view over one clip — the thread-crossing
/// counterpart of [`ClipView`].
///
/// Holds its oracle by `Arc` and accumulates inference cost in a private
/// [`CostLedger`], so a clip can be described by a lightweight ticket
/// (oracle handle + clip id), shipped to a worker thread, evaluated there,
/// and its cost merged back into per-session accounting afterwards.
pub struct OwnedClipView {
    oracle: Arc<DetectionOracle>,
    cost_model: CostModel,
    ledger: CostLedger,
    clip: ClipId,
    geometry: VideoGeometry,
}

impl OwnedClipView {
    /// View `clip` of `oracle`'s video with a fresh ledger.
    pub fn new(oracle: Arc<DetectionOracle>, clip: ClipId) -> Self {
        let geometry = oracle.truth().geometry;
        Self {
            cost_model: CostModel::from_suite(oracle.suite()),
            ledger: CostLedger::default(),
            clip,
            geometry,
            oracle,
        }
    }

    /// Inference cost charged through this view so far.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }
}

impl ClipAccess for OwnedClipView {
    fn clip(&self) -> ClipId {
        self.clip
    }

    fn object_frames(&mut self) -> Vec<FrameData> {
        self.geometry
            .frames_of_clip(self.clip)
            .map(|f| {
                self.ledger.charge_object_frame(&self.cost_model);
                FrameData {
                    frame: FrameId::new(f),
                    detections: self.oracle.detect(FrameId::new(f)).to_vec(),
                }
            })
            .collect()
    }

    fn action_shots(&mut self) -> Vec<ShotData> {
        self.geometry
            .shots_of_clip(self.clip)
            .map(|s| {
                self.ledger.charge_action_shot(&self.cost_model);
                ShotData {
                    shot: ShotId::new(s),
                    actions: self.oracle.recognize(ShotId::new(s)).to_vec(),
                }
            })
            .collect()
    }
}

/// Streaming access to an oracle, clip by clip.
pub struct VideoStream<'a> {
    oracle: &'a DetectionOracle,
    cost_model: CostModel,
    ledger: CostLedger,
    next_clip: u64,
    clip_count: u64,
}

impl<'a> VideoStream<'a> {
    /// Open a stream over the oracle's video.
    pub fn new(oracle: &'a DetectionOracle) -> Self {
        let truth = oracle.truth();
        let clip_count = truth.geometry.clip_count(truth.total_frames);
        Self {
            oracle,
            cost_model: CostModel::from_suite(oracle.suite()),
            ledger: CostLedger::default(),
            next_clip: 0,
            clip_count,
        }
    }

    /// Geometry of the underlying video.
    pub fn geometry(&self) -> VideoGeometry {
        self.oracle.truth().geometry
    }

    /// Total clips in the stream.
    pub fn clip_count(&self) -> u64 {
        self.clip_count
    }

    /// Whether the stream is exhausted — the `X.end()` of Algorithm 1.
    pub fn at_end(&self) -> bool {
        self.next_clip >= self.clip_count
    }

    /// The next clip as a cost-charging view, or `None` at end of stream —
    /// the `X.next()` of Algorithm 1.
    pub fn next_clip(&mut self) -> Option<ClipView<'_>> {
        if self.at_end() {
            return None;
        }
        let clip = ClipId::new(self.next_clip);
        self.next_clip += 1;
        Some(ClipView {
            oracle: self.oracle,
            cost_model: self.cost_model,
            ledger: &mut self.ledger,
            clip,
            geometry: self.oracle.truth().geometry,
        })
    }

    /// Inference cost accumulated so far.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (for recording algorithm wall-clock).
    pub fn ledger_mut(&mut self) -> &mut CostLedger {
        &mut self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ModelSuite, SceneConfusion};
    use crate::truth::GroundTruth;
    use std::sync::Arc;
    use svq_types::{VideoGeometry, VideoId};

    fn small_oracle() -> DetectionOracle {
        let gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 500);
        DetectionOracle::new(
            Arc::new(gt),
            ModelSuite::accurate(),
            &SceneConfusion::default(),
            1,
        )
    }

    #[test]
    fn stream_walks_every_clip_once() {
        let oracle = small_oracle();
        let mut stream = VideoStream::new(&oracle);
        assert_eq!(stream.clip_count(), 10); // 500 frames / 50.
        let mut seen = Vec::new();
        while let Some(view) = stream.next_clip() {
            seen.push(view.clip().raw());
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(stream.at_end());
        assert!(stream.next_clip().is_none());
    }

    #[test]
    fn cost_charged_only_for_requested_units() {
        let oracle = small_oracle();
        let mut stream = VideoStream::new(&oracle);
        {
            let mut view = stream.next_clip().unwrap();
            let frames = view.object_frames();
            assert_eq!(frames.len(), 50);
            // Action shots never requested for this clip.
        }
        assert_eq!(stream.ledger().object_frames, 50);
        assert_eq!(stream.ledger().action_shots, 0);
        {
            let mut view = stream.next_clip().unwrap();
            let shots = view.action_shots();
            assert_eq!(shots.len(), 5);
        }
        assert_eq!(stream.ledger().object_frames, 50);
        assert_eq!(stream.ledger().action_shots, 5);
    }

    #[test]
    fn materialise_pays_for_everything() {
        let oracle = small_oracle();
        let mut stream = VideoStream::new(&oracle);
        let data = stream.next_clip().unwrap().materialise();
        assert_eq!(data.frames.len(), 50);
        assert_eq!(data.shots.len(), 5);
        assert_eq!(stream.ledger().object_frames, 50);
        assert_eq!(stream.ledger().action_shots, 5);
        let expected_ms = 50.0 * (75.0 + 18.0) + 5.0 * 140.0;
        assert!((stream.ledger().inference_ms() - expected_ms).abs() < 1e-9);
    }

    #[test]
    fn frame_ids_are_absolute() {
        let oracle = small_oracle();
        let mut stream = VideoStream::new(&oracle);
        let _ = stream.next_clip().unwrap(); // clip 0
        let data = stream.next_clip().unwrap().materialise(); // clip 1
        assert_eq!(data.frames[0].frame, FrameId::new(50));
        assert_eq!(data.shots[0].shot, ShotId::new(5));
    }
}
