//! Bursty error processes for the simulated models.
//!
//! Real detector errors are temporally correlated: a reflection that looks
//! like a faucet stays in shot for dozens of frames; a motion blur that
//! hides a car persists while the camera pans. Modelling errors as i.i.d.
//! coin flips would make the scan-statistic layer's job artificially easy —
//! isolated single-frame errors almost never reach a critical value. A
//! two-state Markov chain ([`BurstProcess`]) reproduces the bursty structure:
//! the process is "quiet" most of the time and occasionally enters an
//! "active" burst whose length is geometric.
//!
//! The stationary rate of the process is `enter / (enter + exit)` for entry
//! probability `enter` and exit probability `exit`; [`BurstProcess::with_rate`]
//! solves for `enter` given a target rate and a mean burst length, which is
//! how the model profiles express "FPR ≈ 0.2 with bursts of ~12 frames".

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A two-state (quiet/active) Markov error process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstProcess {
    /// P(quiet → active) per occurrence unit.
    pub enter: f64,
    /// P(active → quiet) per occurrence unit.
    pub exit: f64,
    /// Current state.
    active: bool,
}

impl BurstProcess {
    /// A process that is never active.
    pub const OFF: BurstProcess = BurstProcess {
        enter: 0.0,
        exit: 1.0,
        active: false,
    };

    /// Build from transition probabilities.
    pub fn new(enter: f64, exit: f64) -> Self {
        assert!((0.0..=1.0).contains(&enter) && (0.0..=1.0).contains(&exit));
        Self {
            enter,
            exit,
            active: false,
        }
    }

    /// Build from a target stationary rate and mean burst length (in
    /// occurrence units). `rate = enter/(enter+exit)`, `mean_burst = 1/exit`.
    pub fn with_rate(rate: f64, mean_burst: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "rate must be in [0,1), got {rate}"
        );
        assert!(mean_burst >= 1.0, "mean burst must be at least one OU");
        if rate <= 0.0 {
            return Self::OFF;
        }
        let exit = 1.0 / mean_burst;
        // rate = enter / (enter + exit)  =>  enter = exit * rate / (1-rate).
        let enter = (exit * rate / (1.0 - rate)).min(1.0);
        Self {
            enter,
            exit,
            active: false,
        }
    }

    /// Advance one occurrence unit and report whether the process is active.
    pub fn step(&mut self, rng: &mut impl Rng) -> bool {
        let p = if self.active {
            1.0 - self.exit
        } else {
            self.enter
        };
        self.active = p > 0.0 && rng.gen_bool(p);
        self.active
    }

    /// The stationary activity rate.
    pub fn stationary_rate(&self) -> f64 {
        if self.enter <= 0.0 {
            0.0
        } else {
            self.enter / (self.enter + self.exit)
        }
    }

    /// Reset to the quiet state.
    pub fn reset(&mut self) {
        self.active = false;
    }
}

/// Confidence-score sampler: detections need plausible scores on both sides
/// of the decision thresholds `T_obj` / `T_act`.
///
/// True-positive scores concentrate high (a power-shaped distribution on
/// `[floor, 1]`); false-positive scores concentrate just above the
/// threshold — real detector false fires are rarely maximally confident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreModel {
    /// Lower bound of emitted true-positive scores.
    pub tp_floor: f64,
    /// Shape of the true-positive distribution: larger skews toward 1.
    pub tp_shape: f64,
    /// Lower bound of false-positive scores.
    pub fp_floor: f64,
    /// Upper bound of false-positive scores.
    pub fp_ceil: f64,
}

impl ScoreModel {
    /// Sample a true-positive score, scaled by instance visibility.
    pub fn sample_tp(&self, visibility: f64, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen();
        let base = self.tp_floor + (1.0 - self.tp_floor) * u.powf(1.0 / self.tp_shape);
        (base * (0.85 + 0.15 * visibility)).clamp(0.0, 1.0)
    }

    /// Sample a false-positive score.
    pub fn sample_fp(&self, rng: &mut impl Rng) -> f64 {
        rng.gen_range(self.fp_floor..self.fp_ceil)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn off_process_never_fires() {
        let mut p = BurstProcess::OFF;
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..1000).all(|_| !p.step(&mut rng)));
        assert_eq!(p.stationary_rate(), 0.0);
    }

    #[test]
    fn with_rate_hits_target_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(rate, burst) in &[(0.05f64, 5.0f64), (0.2, 12.0), (0.4, 3.0)] {
            let mut p = BurstProcess::with_rate(rate, burst);
            assert!((p.stationary_rate() - rate).abs() < 1e-9);
            let n = 200_000;
            let fired = (0..n).filter(|_| p.step(&mut rng)).count();
            let observed = fired as f64 / n as f64;
            assert!(
                (observed - rate).abs() < 0.01,
                "rate {rate} burst {burst}: observed {observed}"
            );
        }
    }

    #[test]
    fn bursts_have_expected_length() {
        let mut p = BurstProcess::with_rate(0.1, 10.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut bursts = Vec::new();
        let mut current = 0u64;
        for _ in 0..300_000 {
            if p.step(&mut rng) {
                current += 1;
            } else if current > 0 {
                bursts.push(current);
                current = 0;
            }
        }
        let mean = bursts.iter().sum::<u64>() as f64 / bursts.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean burst {mean}");
    }

    #[test]
    fn errors_are_clustered_not_iid() {
        // Autocorrelation at lag 1 should be clearly positive.
        let mut p = BurstProcess::with_rate(0.2, 15.0);
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| p.step(&mut rng) as u8 as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let cov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>();
        let rho = cov / var;
        assert!(
            rho > 0.5,
            "lag-1 autocorrelation {rho} too small for bursts"
        );
    }

    #[test]
    fn score_models_respect_thresholds() {
        let m = ScoreModel {
            tp_floor: 0.55,
            tp_shape: 3.0,
            fp_floor: 0.5,
            fp_ceil: 0.85,
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let tp = m.sample_tp(1.0, &mut rng);
            assert!((0.0..=1.0).contains(&tp));
            let fp = m.sample_fp(&mut rng);
            assert!((0.5..0.85).contains(&fp));
        }
        // Low visibility drags scores down (mildly: detection probability
        // carries most of the visibility effect).
        let hi: f64 = (0..4000).map(|_| m.sample_tp(1.0, &mut rng)).sum::<f64>() / 4000.0;
        let lo: f64 = (0..4000).map(|_| m.sample_tp(0.2, &mut rng)).sum::<f64>() / 4000.0;
        assert!(hi > lo + 0.05, "visibility should matter: {hi} vs {lo}");
    }
}
