//! Seeded scenario generators.
//!
//! These produce the [`GroundTruth`] scripts the simulator runs on:
//! ActivityNet-style clips (one dominant activity occurring in episodes,
//! with scene objects correlated to the activity) via [`ScenarioSpec`], and
//! feature-length movies (rare action episodes in hours of footage) via
//! [`MovieSpec`]. All structure — episode lengths, occupancy, object
//! correlation — is parameterised, and every draw flows from the spec's
//! seed, so workloads are reproducible bit-for-bit.

use crate::models::{DetectionOracle, ModelSuite, SceneConfusion};
use crate::truth::{ActionSpan, GroundTruth, ObjectTrack};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use svq_types::{
    ActionClass, BBox, FrameId, Interval, ObjectClass, TrackId, VideoGeometry, VideoId,
};

/// How one object class behaves in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectSpec {
    pub class: ObjectClass,
    /// Probability that each action episode is accompanied by a track of
    /// this object overlapping it — the "predicate correlation" Table 3
    /// studies.
    pub action_correlation: f64,
    /// Rate of independent appearances, tracks per 10 000 frames.
    pub independent_rate: f64,
    /// Mean visible duration of an independent track, frames.
    pub mean_visible: f64,
    /// Multiplier on the detector's confusable false-positive rate for this
    /// class (1.0 = profile rate, 0.0 = only base-rate noise).
    pub confusion: f64,
    /// Fraction of an appearance during which the object is actually in
    /// frame: appearances are split into visible segments alternating with
    /// out-of-frame gaps (the camera pans, the object is occluded). 1.0 =
    /// continuously visible.
    pub duty_cycle: f64,
}

impl ObjectSpec {
    /// An object that almost always accompanies the action (e.g. `person`
    /// for *blowing leaves*): high correlation, low confusion.
    pub fn correlated(class: ObjectClass) -> Self {
        Self {
            class,
            action_correlation: 0.95,
            independent_rate: 0.4,
            mean_visible: 800.0,
            confusion: 0.25,
            duty_cycle: 1.0,
        }
    }

    /// A scene object that appears both with and without the action (e.g.
    /// `car` in street scenes): high correlation — the paper\'s annotators
    /// picked objects that genuinely appear in each activity\'s videos —
    /// plus independent appearances and scene-level confusion.
    pub fn scene(class: ObjectClass) -> Self {
        Self {
            class,
            action_correlation: 0.93,
            independent_rate: 1.2,
            mean_visible: 500.0,
            confusion: 1.0,
            duty_cycle: 1.0,
        }
    }

    /// An incidental object (e.g. `sunglasses`): weaker correlation.
    pub fn incidental(class: ObjectClass) -> Self {
        Self {
            class,
            action_correlation: 0.85,
            independent_rate: 1.5,
            mean_visible: 300.0,
            confusion: 1.0,
            duty_cycle: 1.0,
        }
    }
}

/// An ActivityNet-style scenario: one dominant activity in episodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    pub video: VideoId,
    pub geometry: VideoGeometry,
    pub total_frames: u64,
    pub action: ActionClass,
    /// Fraction of the video covered by action episodes.
    pub action_occupancy: f64,
    /// Mean episode length, frames.
    pub mean_episode: f64,
    /// Multiplier on the recognizer's confusable FP rate for this action.
    pub action_confusion: f64,
    pub objects: Vec<ObjectSpec>,
    pub seed: u64,
}

impl ScenarioSpec {
    /// ActivityNet-like defaults: 25 fps, clips of 50 frames. The
    /// `action_occupancy` target drives the episode/gap process; the
    /// guaranteed opening set-piece (ActivityNet videos centre on one long
    /// activity segment) raises *effective* occupancy above it, typically
    /// to 0.4-0.6.
    pub fn activitynet(
        video: VideoId,
        total_frames: u64,
        action: ActionClass,
        objects: Vec<ObjectSpec>,
        seed: u64,
    ) -> Self {
        Self {
            video,
            geometry: VideoGeometry::default(),
            total_frames,
            action,
            action_occupancy: 0.35,
            mean_episode: 600.0,
            action_confusion: 1.0,
            objects,
            seed,
        }
    }

    /// Generate the script and its scene confusion.
    pub fn generate(&self) -> SyntheticVideo {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ self.video.raw().wrapping_mul(0x517c_c1b7_2722_0a95));
        let mut gt = GroundTruth::new(self.video, self.geometry, self.total_frames);
        let mut next_track: u64 = 1;

        // --- Action episodes: alternate gap / episode with exponential
        // lengths tuned to hit the target occupancy.
        let occ = self.action_occupancy.clamp(0.0, 0.95);
        if occ > 0.0 {
            let mean_gap = self.mean_episode * (1.0 - occ) / occ;
            let mut t: u64 = sample_exp(&mut rng, mean_gap * 0.5).max(1.0) as u64;
            let mut episode_index = 0u32;
            while t + 2 < self.total_frames {
                // Heavy-tailed episode lengths: most scenes short, a few
                // extended set-pieces — matching the scene structure of
                // real footage (one long smoking scene dominates *Coffee
                // and Cigarettes*). Set-pieces are also the most intense
                // scenes: prototypical action (high salience) and several
                // instances of the scene objects in frame, which is what
                // concentrates ranking mass on them.
                let set_piece = episode_index == 0 || rng.gen_bool(0.08);
                episode_index += 1;
                let mean = if set_piece {
                    self.mean_episode * 6.0
                } else {
                    self.mean_episode * 0.45
                };
                // Annotated episodes are never sub-clip blips: ActivityNet
                // segments run many seconds. Floor at two clips.
                let len = (sample_exp(&mut rng, mean)
                    .max(2.0 * self.geometry.frames_per_clip() as f64))
                    as u64;
                let end = (t + len).min(self.total_frames - 1);
                gt.actions.push(ActionSpan {
                    class: self.action,
                    frames: Interval::new(FrameId::new(t), FrameId::new(end)),
                    salience: if set_piece {
                        rng.gen_range(0.9..1.0)
                    } else {
                        rng.gen_range(0.7..1.0)
                    },
                });
                // Episode-correlated objects; set-pieces hold several
                // instances of each.
                for spec in &self.objects {
                    if rng.gen_bool(spec.action_correlation) {
                        let instances = if set_piece { rng.gen_range(2..=4) } else { 1 };
                        for _ in 0..instances {
                            let pre = sample_exp(&mut rng, 120.0) as u64;
                            let post = sample_exp(&mut rng, 120.0) as u64;
                            let s = t.saturating_sub(pre);
                            let e = (end + post).min(self.total_frames - 1);
                            let visibility = rng.gen_range(0.6..1.0);
                            push_track_segments(
                                &mut gt,
                                &mut rng,
                                &mut next_track,
                                spec.class,
                                s,
                                e,
                                spec.duty_cycle,
                                visibility,
                            );
                        }
                    }
                }
                t = end + 1 + sample_exp(&mut rng, mean_gap).max(1.0) as u64;
            }
        }

        // --- Independent object appearances: Poisson arrivals.
        for spec in &self.objects {
            let rate_per_frame = spec.independent_rate / 10_000.0;
            if rate_per_frame <= 0.0 {
                continue;
            }
            let mut t = sample_exp(&mut rng, 1.0 / rate_per_frame) as u64;
            while t + 1 < self.total_frames {
                let len = sample_exp(&mut rng, spec.mean_visible).max(10.0) as u64;
                let end = (t + len).min(self.total_frames - 1);
                let visibility = rng.gen_range(0.5..1.0);
                push_track_segments(
                    &mut gt,
                    &mut rng,
                    &mut next_track,
                    spec.class,
                    t,
                    end,
                    spec.duty_cycle,
                    visibility,
                );
                t = end + 1 + sample_exp(&mut rng, 1.0 / rate_per_frame).max(1.0) as u64;
            }
        }

        let confusion = SceneConfusion {
            objects: self
                .objects
                .iter()
                .filter(|s| s.confusion > 0.0)
                .map(|s| (s.class, s.confusion))
                .collect(),
            actions: if self.action_confusion > 0.0 {
                vec![(self.action, self.action_confusion)]
            } else {
                vec![]
            },
        };
        SyntheticVideo {
            truth: Arc::new(gt),
            confusion,
            seed: self.seed,
        }
    }
}

/// A feature-length movie: hours of footage, rare action episodes, queried
/// objects appearing sporadically — the workload of Tables 2, 6 and 8.
#[derive(Debug, Clone, PartialEq)]
pub struct MovieSpec {
    pub video: VideoId,
    pub title: &'static str,
    pub geometry: VideoGeometry,
    /// Running time in minutes.
    pub minutes: u32,
    pub action: ActionClass,
    pub objects: Vec<ObjectSpec>,
    /// Number of genuine action episodes in the movie.
    pub episodes: u32,
    /// Mean episode length, frames.
    pub mean_episode: f64,
    pub seed: u64,
}

impl MovieSpec {
    /// Construct a movie spec with genre-typical defaults: ~20 episodes of
    /// ~30 s each (matching the "21 ground truth result sequences" the
    /// paper reports for *Coffee and Cigarettes*).
    pub fn new(
        video: VideoId,
        title: &'static str,
        minutes: u32,
        action: ActionClass,
        objects: Vec<ObjectSpec>,
        seed: u64,
    ) -> Self {
        Self {
            video,
            title,
            geometry: VideoGeometry::default(),
            minutes,
            action,
            objects,
            episodes: 22,
            mean_episode: 750.0,
            seed,
        }
    }

    /// Total frames at the movie's geometry.
    pub fn total_frames(&self) -> u64 {
        self.minutes as u64 * 60 * self.geometry.fps as u64
    }

    /// Generate the movie script.
    pub fn generate(&self) -> SyntheticVideo {
        let total = self.total_frames();
        let occupancy = (self.episodes as f64 * self.mean_episode / total as f64).min(0.5);
        let spec = ScenarioSpec {
            video: self.video,
            geometry: self.geometry,
            total_frames: total,
            action: self.action,
            action_occupancy: occupancy,
            mean_episode: self.mean_episode,
            action_confusion: 1.0,
            objects: self.objects.clone(),
            seed: self.seed,
        };
        spec.generate()
    }
}

/// A generated video: script plus scene confusion plus the seed that made
/// it — everything needed to build oracles for any model suite.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SyntheticVideo {
    pub truth: Arc<GroundTruth>,
    pub confusion: SceneConfusion,
    pub seed: u64,
}

impl SyntheticVideo {
    /// Simulate a model suite over this video.
    pub fn oracle(&self, suite: ModelSuite) -> DetectionOracle {
        DetectionOracle::new(self.truth.clone(), suite, &self.confusion, self.seed)
    }

    /// Re-express the video at a different clip size — the sweep of
    /// Figures 4-5. Ground truth is geometry-independent, so only the
    /// geometry field changes.
    pub fn with_shots_per_clip(&self, shots_per_clip: u32) -> Self {
        let mut truth = (*self.truth).clone();
        truth.geometry = truth.geometry.with_shots_per_clip(shots_per_clip);
        Self {
            truth: Arc::new(truth),
            confusion: self.confusion.clone(),
            seed: self.seed,
        }
    }
}

/// Split one appearance `[start, end]` into visible segments per the duty
/// cycle and push a track per segment. Mean visible segment: 200 frames.
#[allow(clippy::too_many_arguments)]
fn push_track_segments(
    gt: &mut GroundTruth,
    rng: &mut StdRng,
    next_track: &mut u64,
    class: ObjectClass,
    start: u64,
    end: u64,
    duty_cycle: f64,
    visibility: f64,
) {
    let bbox = random_bbox(rng);
    if duty_cycle >= 0.999 {
        gt.tracks.push(ObjectTrack {
            class,
            track: TrackId::new(*next_track),
            frames: Interval::new(FrameId::new(start), FrameId::new(end)),
            visibility,
            bbox,
        });
        *next_track += 1;
        return;
    }
    let mean_visible = 600.0;
    let mean_gap = mean_visible * (1.0 - duty_cycle) / duty_cycle.max(0.05);
    let mut t = start;
    loop {
        let seg = sample_exp(rng, mean_visible).max(10.0) as u64;
        let seg_end = (t + seg).min(end);
        gt.tracks.push(ObjectTrack {
            class,
            track: TrackId::new(*next_track),
            frames: Interval::new(FrameId::new(t), FrameId::new(seg_end)),
            visibility,
            bbox,
        });
        *next_track += 1;
        if seg_end >= end {
            break;
        }
        t = seg_end + 1 + sample_exp(rng, mean_gap).max(1.0) as u64;
        if t >= end {
            break;
        }
    }
}

fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

fn random_bbox(rng: &mut StdRng) -> BBox {
    let x0 = rng.gen_range(0.0..0.6);
    let y0 = rng.gen_range(0.0..0.6);
    let w = rng.gen_range(0.1..0.4);
    let h = rng.gen_range(0.1..0.4);
    BBox::new(x0, y0, (x0 + w).min(1.0), (y0 + h).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::activitynet(
            VideoId::new(3),
            30_000, // 20 minutes at 25 fps
            ActionClass::named("blowing leaves"),
            vec![
                ObjectSpec::correlated(ObjectClass::named("person")),
                ObjectSpec::scene(ObjectClass::named("car")),
            ],
            // Seed chosen to realize a typical occupancy (~0.42) under the
            // workspace PRNG; see occupancy_is_near_target.
            7,
        )
    }

    #[test]
    fn occupancy_is_near_target() {
        let video = spec().generate();
        let covered: u64 = video
            .truth
            .action_intervals(ActionClass::named("blowing leaves"))
            .iter()
            .map(|iv| iv.len())
            .sum();
        let occ = covered as f64 / 30_000.0;
        // Target 0.35 plus the dominant set-piece: expect 0.3-0.75.
        assert!((0.3..=0.75).contains(&occ), "occupancy {occ} out of band");
    }

    #[test]
    fn correlated_objects_overlap_episodes() {
        let video = spec().generate();
        let person = ObjectClass::named("person");
        let action = ActionClass::named("blowing leaves");
        let episodes = video.truth.action_intervals(action);
        let person_iv = video.truth.object_intervals(person);
        let mut overlapping = 0usize;
        for ep in &episodes {
            if person_iv.iter().any(|p| p.overlaps(ep)) {
                overlapping += 1;
            }
        }
        assert!(
            overlapping as f64 / episodes.len() as f64 > 0.8,
            "only {overlapping}/{} episodes have a person",
            episodes.len()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate();
        let b = spec().generate();
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.confusion, b.confusion);
    }

    #[test]
    fn different_seeds_give_different_scripts() {
        let mut s2 = spec();
        s2.seed = 100;
        assert_ne!(spec().generate().truth, s2.generate().truth);
    }

    #[test]
    fn confusion_lists_queried_classes() {
        let video = spec().generate();
        assert!(video
            .confusion
            .objects
            .iter()
            .any(|(c, _)| *c == ObjectClass::named("car")));
        assert!(video
            .confusion
            .actions
            .iter()
            .any(|(a, _)| *a == ActionClass::named("blowing leaves")));
    }

    #[test]
    fn movie_spec_scales_to_runtime() {
        let movie = MovieSpec::new(
            VideoId::new(10),
            "Coffee and Cigarettes",
            96,
            ActionClass::named("smoking"),
            vec![
                ObjectSpec::scene(ObjectClass::named("wine glass")),
                ObjectSpec::scene(ObjectClass::named("cup")),
            ],
            5,
        );
        assert_eq!(movie.total_frames(), 96 * 60 * 25);
        let video = movie.generate();
        let episodes = video.truth.action_intervals(ActionClass::named("smoking"));
        assert!(
            (10..=40).contains(&episodes.len()),
            "unexpected episode count {}",
            episodes.len()
        );
    }

    #[test]
    fn clip_size_variant_only_changes_geometry() {
        let a = spec().generate();
        let b = a.with_shots_per_clip(10);
        assert_eq!(b.truth.geometry.shots_per_clip, 10);
        assert_eq!(a.truth.tracks, b.truth.tracks);
        assert_eq!(a.truth.actions, b.truth.actions);
    }

    #[test]
    fn tracks_stay_within_video_bounds() {
        let video = spec().generate();
        for t in &video.truth.tracks {
            assert!(t.frames.end.raw() < 30_000);
        }
        for a in &video.truth.actions {
            assert!(a.frames.end.raw() < 30_000);
        }
    }
}
