//! Strongly-typed identifiers for the video hierarchy.
//!
//! Using newtypes (rather than bare `u64`s) makes it impossible to, say,
//! index a clip-score table with a frame id — a class of bug that is easy to
//! introduce in the RVAQ bound-refinement code where frame, shot and clip
//! indices all circulate at once.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// Wrap a raw index.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw index.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The raw index as a `usize` (for slice indexing).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The identifier `n` positions later.
            #[inline]
            pub const fn offset(self, n: u64) -> Self {
                Self(self.0 + n)
            }

            /// The next identifier.
            #[inline]
            pub const fn next(self) -> Self {
                Self(self.0 + 1)
            }

            /// The previous identifier, or `None` at zero.
            #[inline]
            pub fn prev(self) -> Option<Self> {
                self.0.checked_sub(1).map(Self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_newtype!(
    /// Index of a frame within a video (0-based).
    FrameId,
    "f"
);
id_newtype!(
    /// Index of a shot within a video (0-based).
    ///
    /// Shots are the occurrence unit for action recognition.
    ShotId,
    "s"
);
id_newtype!(
    /// Index of a clip within a video (0-based). Clips are the unit at which
    /// query predicates are decided and the `cid` key of clip score tables.
    ClipId,
    "c"
);
id_newtype!(
    /// Identifier assigned by the object tracker to one object instance; the
    /// id is stable across the frames in which the instance remains visible.
    TrackId,
    "t"
);
id_newtype!(
    /// Identifier of a video within a repository.
    VideoId,
    "v"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(FrameId::new(7).to_string(), "f7");
        assert_eq!(ShotId::new(0).to_string(), "s0");
        assert_eq!(ClipId::new(123).to_string(), "c123");
        assert_eq!(TrackId::new(5).to_string(), "t5");
        assert_eq!(VideoId::new(2).to_string(), "v2");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(ClipId::new(3) < ClipId::new(4));
        assert_eq!(ClipId::new(9).next(), ClipId::new(10));
        assert_eq!(ClipId::new(9).prev(), Some(ClipId::new(8)));
        assert_eq!(ClipId::new(0).prev(), None);
        assert_eq!(ClipId::new(4).offset(6), ClipId::new(10));
    }

    #[test]
    fn conversions_round_trip() {
        let c = ClipId::from(42u64);
        assert_eq!(u64::from(c), 42);
        assert_eq!(c.index(), 42usize);
        assert_eq!(c.raw(), 42);
    }

    #[test]
    fn serde_is_transparent() {
        let c = ClipId::new(17);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(json, "17");
        let back: ClipId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
