//! Records produced by the vision models.
//!
//! Object detectors emit per-frame [`Detection`]s (class, confidence score,
//! bounding box); the tracker upgrades them to [`TrackedDetection`]s with a
//! stable [`TrackId`]; action recognizers emit per-shot [`ActionScore`]s.
//! These are precisely the quantities `S_{o_i}^{t(v)}` and `S_{a_j}^{(s)}`
//! of the paper's §2.

use crate::ids::TrackId;
use crate::labels::{ActionClass, ObjectClass};
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in normalised image coordinates
/// (`0.0 ..= 1.0` on both axes, `(0,0)` top-left).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    pub x0: f32,
    pub y0: f32,
    pub x1: f32,
    pub y1: f32,
}

impl BBox {
    /// Construct, normalising a flipped box so `x0 <= x1`, `y0 <= y1`.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        Self {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// The full frame.
    pub const FULL: BBox = BBox {
        x0: 0.0,
        y0: 0.0,
        x1: 1.0,
        y1: 1.0,
    };

    /// Box area (zero for degenerate boxes).
    pub fn area(&self) -> f32 {
        (self.x1 - self.x0).max(0.0) * (self.y1 - self.y0).max(0.0)
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix0 = self.x0.max(other.x0);
        let iy0 = self.y0.max(other.y0);
        let ix1 = self.x1.min(other.x1);
        let iy1 = self.y1.min(other.y1);
        let inter = (ix1 - ix0).max(0.0) * (iy1 - iy0).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Horizontal centre, used by spatial-relationship predicates.
    pub fn cx(&self) -> f32 {
        (self.x0 + self.x1) * 0.5
    }

    /// Vertical centre.
    pub fn cy(&self) -> f32 {
        (self.y0 + self.y1) * 0.5
    }

    /// `true` if this box is entirely left of `other` (no horizontal
    /// overlap).
    pub fn left_of(&self, other: &BBox) -> bool {
        self.x1 <= other.x0
    }
}

/// One object instance detected on one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predicted object type.
    pub class: ObjectClass,
    /// Detector confidence in `[0, 1]` — the paper's `S*`.
    pub score: f64,
    /// Predicted location.
    pub bbox: BBox,
}

/// A detection augmented with the tracker's stable instance identifier —
/// the paper's `S_{o_i}^{t(v)}` carries exactly this `(class, t, score)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackedDetection {
    pub detection: Detection,
    pub track: TrackId,
}

/// One action category scored on one shot — the paper's `S_{a_j}^{(s)}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActionScore {
    pub class: ActionClass,
    /// Recognizer confidence in `[0, 1]`.
    pub score: f64,
}

/// The maximum score over all instances of `class` among `detections` —
/// the paper's `maxS_{o_i}^{(v)}`. Returns `None` if no instance of the
/// class was detected on the frame.
pub fn max_score_for(detections: &[Detection], class: ObjectClass) -> Option<f64> {
    detections
        .iter()
        .filter(|d| d.class == class)
        .map(|d| d.score)
        .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: &str, score: f64) -> Detection {
        Detection {
            class: ObjectClass::named(class),
            score,
            bbox: BBox::FULL,
        }
    }

    #[test]
    fn bbox_normalises_flipped_corners() {
        let b = BBox::new(0.8, 0.9, 0.2, 0.1);
        assert_eq!((b.x0, b.y0, b.x1, b.y1), (0.2, 0.1, 0.8, 0.9));
    }

    #[test]
    fn bbox_iou_basics() {
        let a = BBox::new(0.0, 0.0, 0.5, 0.5);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        let b = BBox::new(0.5, 0.5, 1.0, 1.0);
        assert_eq!(a.iou(&b), 0.0);
        let c = BBox::new(0.25, 0.0, 0.75, 0.5);
        // intersection 0.25x0.5 = 0.125; union 0.25 + 0.25 - 0.125 = 0.375.
        assert!((a.iou(&c) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_spatial_relations() {
        let a = BBox::new(0.0, 0.0, 0.3, 1.0);
        let b = BBox::new(0.5, 0.0, 0.9, 1.0);
        assert!(a.left_of(&b));
        assert!(!b.left_of(&a));
        assert!(a.cx() < b.cx());
    }

    #[test]
    fn max_score_selects_per_class_maximum() {
        let ds = vec![det("car", 0.4), det("car", 0.9), det("person", 0.7)];
        assert_eq!(max_score_for(&ds, ObjectClass::named("car")), Some(0.9));
        assert_eq!(max_score_for(&ds, ObjectClass::named("person")), Some(0.7));
        assert_eq!(max_score_for(&ds, ObjectClass::named("dog")), None);
    }

    #[test]
    fn degenerate_box_has_zero_area_and_iou() {
        let p = BBox::new(0.5, 0.5, 0.5, 0.5);
        assert_eq!(p.area(), 0.0);
        assert_eq!(p.iou(&BBox::FULL), 0.0);
    }
}
