//! The scoring-function algebra of §4.1.
//!
//! RVAQ ranks result sequences through three user-supplied functions plus an
//! aggregation operator:
//!
//! * `h` — folds the raw model scores of one class inside one clip into a
//!   per-class clip score (`S_{o_i}^{(c)}`, Eq. 7; `S_{a_j}^{(c)}`, Eq. 8);
//! * `g` — folds the per-class clip scores into the clip's overall score
//!   `S_q^{(c)}` (Eq. 9); must be monotone in every argument;
//! * `f` — folds clip scores into a sequence score `S_q^{(z)}` (Eq. 10);
//!   must be monotone, must not increase on sub-sequences, and must
//!   decompose over a partition via the operator `⊙` (Eq. 11).
//!
//! [`ScoringFunctions`] captures exactly this contract. The fold-based
//! shape (`f_identity` / `f_combine` for `⊙`) guarantees Eq. 11 by
//! construction, and the RVAQ bound refinement (Eqs. 13-14) only ever needs
//! `⊙` plus [`ScoringFunctions::f_repeat`], the score of `n` hypothetical
//! copies of one clip.
//!
//! [`PaperScoring`] is the instantiation used in the paper's experiments
//! (§5): `h` = sum, `g` = action × Σ objects, `f` = sum with `⊙` = `+`.
//! [`MaxScoring`] (`f` = `⊙` = max) demonstrates that any conforming
//! algebra drops in.

/// User-pluggable scoring algebra for the offline engine.
pub trait ScoringFunctions: std::fmt::Debug {
    /// `h` for object classes: fold all tracked-detection scores of one
    /// class inside one clip.
    fn h_object(&self, scores: &[f64]) -> f64;

    /// `h` for action classes: fold all shot scores of one class inside one
    /// clip.
    fn h_action(&self, scores: &[f64]) -> f64;

    /// `g`: fold per-class clip scores into the clip score. Must be
    /// monotone non-decreasing in every argument.
    fn g(&self, object_scores: &[f64], action_score: f64) -> f64;

    /// The identity of `⊙` (the score of an empty sub-sequence).
    fn f_identity(&self) -> f64;

    /// `⊙`: combine the scores of two disjoint sub-sequences (Eq. 11).
    /// Folding clip scores with this operator from `f_identity` *is* `f`.
    fn f_combine(&self, a: f64, b: f64) -> f64;

    /// `f` applied to `n` copies of the same clip score — the bound
    /// arithmetic of Eqs. 13-14. The default folds `n` times; additive
    /// algebras override with `n × score`.
    fn f_repeat(&self, clip_score: f64, n: u64) -> f64 {
        let mut acc = self.f_identity();
        for _ in 0..n {
            acc = self.f_combine(acc, clip_score);
        }
        acc
    }

    /// `f` over a slice of clip scores.
    fn f(&self, clip_scores: &[f64]) -> f64 {
        clip_scores
            .iter()
            .fold(self.f_identity(), |acc, &s| self.f_combine(acc, s))
    }
}

/// The paper's §5 scoring functions: everything additive, `g` multiplicative.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaperScoring;

impl ScoringFunctions for PaperScoring {
    fn h_object(&self, scores: &[f64]) -> f64 {
        scores.iter().sum()
    }

    fn h_action(&self, scores: &[f64]) -> f64 {
        scores.iter().sum()
    }

    fn g(&self, object_scores: &[f64], action_score: f64) -> f64 {
        action_score * object_scores.iter().sum::<f64>()
    }

    fn f_identity(&self) -> f64 {
        0.0
    }

    fn f_combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn f_repeat(&self, clip_score: f64, n: u64) -> f64 {
        clip_score * n as f64
    }
}

/// A max-based algebra: a sequence is as good as its best clip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxScoring;

impl ScoringFunctions for MaxScoring {
    fn h_object(&self, scores: &[f64]) -> f64 {
        scores.iter().copied().fold(0.0, f64::max)
    }

    fn h_action(&self, scores: &[f64]) -> f64 {
        scores.iter().copied().fold(0.0, f64::max)
    }

    fn g(&self, object_scores: &[f64], action_score: f64) -> f64 {
        action_score * object_scores.iter().copied().fold(0.0, f64::max)
    }

    fn f_identity(&self) -> f64 {
        0.0
    }

    fn f_combine(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }

    fn f_repeat(&self, clip_score: f64, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            clip_score
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_contract<S: ScoringFunctions>(s: &S) {
        // ⊙ identity.
        assert_eq!(s.f_combine(s.f_identity(), 3.0), 3.0);
        // f via fold equals explicit slice f.
        let scores = [1.0, 2.0, 4.0];
        let folded = scores
            .iter()
            .fold(s.f_identity(), |acc, &x| s.f_combine(acc, x));
        assert_eq!(s.f(&scores), folded);
        // Eq. 11: partition decomposition.
        let left = s.f(&scores[..1]);
        let right = s.f(&scores[1..]);
        assert!((s.f_combine(left, right) - s.f(&scores)).abs() < 1e-12);
        // Sub-sequence never scores higher (scores are non-negative).
        assert!(s.f(&scores[..2]) <= s.f(&scores));
        // Monotonicity of f in a clip score.
        let bumped = [1.0, 2.5, 4.0];
        assert!(s.f(&bumped) >= s.f(&scores));
        // Monotonicity of g.
        assert!(s.g(&[1.0, 2.0], 0.9) >= s.g(&[1.0, 2.0], 0.5));
        assert!(s.g(&[1.5, 2.0], 0.5) >= s.g(&[1.0, 2.0], 0.5));
        // f_repeat consistency with fold-based default.
        let mut acc = s.f_identity();
        for _ in 0..5 {
            acc = s.f_combine(acc, 2.0);
        }
        assert!((s.f_repeat(2.0, 5) - acc).abs() < 1e-12);
        assert_eq!(s.f_repeat(2.0, 0), s.f_identity());
    }

    #[test]
    fn paper_scoring_satisfies_contract() {
        check_contract(&PaperScoring);
    }

    #[test]
    fn max_scoring_satisfies_contract() {
        check_contract(&MaxScoring);
    }

    #[test]
    fn paper_scoring_matches_section5_definitions() {
        let s = PaperScoring;
        // h: additive over raw scores.
        assert_eq!(s.h_object(&[0.5, 0.7, 0.9]), 2.1);
        assert_eq!(s.h_action(&[]), 0.0);
        // g: S_a * (Σ S_oi).
        assert_eq!(s.g(&[2.0, 3.0], 0.5), 2.5);
        // f: additive; repeat is n*s.
        assert_eq!(s.f(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(s.f_repeat(1.5, 4), 6.0);
    }

    #[test]
    fn max_scoring_picks_best_clip() {
        let s = MaxScoring;
        assert_eq!(s.f(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(s.f_repeat(2.0, 100), 2.0);
        assert_eq!(s.h_object(&[0.2, 0.9, 0.4]), 0.9);
    }
}
