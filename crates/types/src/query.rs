//! Query shapes.
//!
//! The paper's canonical query (§2) is a conjunction of one action predicate
//! and zero or more object-presence predicates:
//! `q : {o_1, …, o_I ∈ O; a ∈ A}`. [`ActionQuery`] is that shape.
//!
//! Footnotes 2-4 sketch how the framework extends to multiple actions,
//! object relationships and disjunctions; [`Predicate`] is the extension
//! point used by the richer expression support in `svq-core::expr`.

use crate::labels::{ActionClass, ObjectClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The canonical query of §2: one action plus a conjunction of object types.
///
/// Predicate order matters operationally (not semantically): Algorithm 2
/// evaluates predicates sequentially and short-circuits on the first
/// negative, so cheaper / more selective predicates should come first. The
/// paper leaves ordering "based on user expertise" (footnote 5); the order
/// of [`objects`](Self::objects) is the evaluation order, objects before the
/// action, matching Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ActionQuery {
    /// Object-presence predicates `o_1 … o_I`, in evaluation order.
    pub objects: Vec<ObjectClass>,
    /// The action predicate `a`.
    pub action: ActionClass,
}

impl ActionQuery {
    /// Build a query from an action and object classes.
    pub fn new(action: ActionClass, objects: impl Into<Vec<ObjectClass>>) -> Self {
        Self {
            objects: objects.into(),
            action,
        }
    }

    /// Convenience constructor from label names; panics on unknown labels
    /// (intended for tests and workload literals).
    pub fn named(action: &str, objects: &[&str]) -> Self {
        Self {
            action: ActionClass::named(action),
            objects: objects.iter().map(|o| ObjectClass::named(o)).collect(),
        }
    }

    /// Number of predicates (objects plus the action).
    pub fn predicate_count(&self) -> usize {
        self.objects.len() + 1
    }
}

impl fmt::Display for ActionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{a={}", self.action)?;
        for (i, o) in self.objects.iter().enumerate() {
            write!(f, "; o{}={}", i + 1, o)?;
        }
        f.write_str("}")
    }
}

/// A single extended predicate (footnotes 2-3): the building block for the
/// richer boolean expressions evaluated per clip by `svq-core::expr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// An object type is present (the canonical object predicate).
    Object(ObjectClass),
    /// An action is taking place (the canonical action predicate).
    Action(ActionClass),
    /// A spatial relationship between two object types holds on frames of
    /// the clip (footnote 2) — evaluated as a binary per-frame indicator
    /// derived from detector boxes.
    LeftOf(ObjectClass, ObjectClass),
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Object(o) => write!(f, "obj({o})"),
            Predicate::Action(a) => write!(f, "act({a})"),
            Predicate::LeftOf(a, b) => write!(f, "leftOf({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_builds_the_intro_example() {
        // §1: robot dancing while a car (and a human) are visible.
        let q = ActionQuery::named("robot_dancing", &["car", "person"]);
        assert_eq!(q.action, ActionClass::named("robot dancing"));
        assert_eq!(q.objects.len(), 2);
        assert_eq!(q.predicate_count(), 3);
    }

    #[test]
    fn display_matches_paper_notation() {
        let q = ActionQuery::named("jumping", &["person", "car"]);
        assert_eq!(q.to_string(), "{a=jumping; o1=person; o2=car}");
    }

    #[test]
    fn action_only_query_is_legal() {
        // Table 3 includes queries with zero object predicates.
        let q = ActionQuery::named("blowing leaves", &[]);
        assert!(q.objects.is_empty());
        assert_eq!(q.predicate_count(), 1);
    }

    #[test]
    fn predicates_render() {
        let p = Predicate::LeftOf(ObjectClass::named("person"), ObjectClass::named("car"));
        assert_eq!(p.to_string(), "leftOf(person, car)");
    }
}
