//! Error type shared across the workspace.

use std::fmt;

/// Result alias used across the SVQ-ACT crates.
pub type SvqResult<T> = Result<T, SvqError>;

/// Typed rejection categories of the `svq-serve` wire protocol.
///
/// Every frame a server refuses carries exactly one of these as its stable
/// wire code (`RejectReason::code`), so clients can branch on the category
/// without parsing prose. The human-readable detail travels separately in
/// the error frame's `message` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectReason {
    /// Admission control: every connection slot is occupied.
    Busy,
    /// The server is draining towards shutdown and accepts no new work.
    Draining,
    /// A request line exceeded the frame-size limit.
    Oversize,
    /// A request line was not valid UTF-8.
    BadUtf8,
    /// A request line was not valid JSON (truncated, trailing bytes, …).
    BadJson,
    /// Well-formed JSON that is not a valid request (missing/ill-typed
    /// fields, an unparseable SQL statement, a mode mismatch, …).
    BadRequest,
    /// The `kind` field named no known request kind.
    UnknownKind,
    /// The request named a video the server does not hold.
    UnknownVideo,
    /// A per-connection read/write deadline expired.
    Timeout,
    /// The request was valid but execution failed server-side.
    Internal,
    /// A cluster router could not reach the shard that owns the request
    /// (connect refused, upstream connection died, or the shard timed out)
    /// even after its bounded reconnect budget.
    ShardUnavailable,
}

impl RejectReason {
    /// Every category, in wire-code order (stable for tests and docs).
    pub const ALL: [RejectReason; 11] = [
        RejectReason::Busy,
        RejectReason::Draining,
        RejectReason::Oversize,
        RejectReason::BadUtf8,
        RejectReason::BadJson,
        RejectReason::BadRequest,
        RejectReason::UnknownKind,
        RejectReason::UnknownVideo,
        RejectReason::Timeout,
        RejectReason::Internal,
        RejectReason::ShardUnavailable,
    ];

    /// The stable wire code carried in error frames.
    pub fn code(self) -> &'static str {
        match self {
            RejectReason::Busy => "busy",
            RejectReason::Draining => "draining",
            RejectReason::Oversize => "oversize",
            RejectReason::BadUtf8 => "bad_utf8",
            RejectReason::BadJson => "bad_json",
            RejectReason::BadRequest => "bad_request",
            RejectReason::UnknownKind => "unknown_kind",
            RejectReason::UnknownVideo => "unknown_video",
            RejectReason::Timeout => "timeout",
            RejectReason::Internal => "internal",
            RejectReason::ShardUnavailable => "shard_unavailable",
        }
    }

    /// Parse a wire code back into its category.
    pub fn from_code(code: &str) -> Option<RejectReason> {
        RejectReason::ALL.into_iter().find(|r| r.code() == code)
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Errors surfaced by the engine.
///
/// The enum is deliberately small: most internal invariants are enforced by
/// construction (newtypes, validated geometry) rather than by fallible APIs;
/// errors remain for genuinely runtime-dependent failures — unknown labels
/// arriving from the SQL surface, malformed queries, missing ingestion
/// metadata, and I/O during persistence.
#[derive(Debug)]
pub enum SvqError {
    /// A label name did not resolve against the model vocabulary.
    UnknownLabel { kind: &'static str, name: String },
    /// The query is structurally invalid (e.g. no action predicate).
    InvalidQuery(String),
    /// A configuration value failed validation (builder `build()`).
    InvalidConfig(String),
    /// A parse error in the SQL-like surface language, with byte offset.
    Parse { message: String, offset: usize },
    /// Ingestion metadata required by the offline engine is missing.
    MissingMetadata(String),
    /// Persistence / deserialisation failure.
    Storage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SvqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvqError::UnknownLabel { kind, name } => {
                write!(f, "unknown {kind} label: {name:?}")
            }
            SvqError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            SvqError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SvqError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SvqError::MissingMetadata(what) => {
                write!(f, "missing ingestion metadata: {what}")
            }
            SvqError::Storage(msg) => write!(f, "storage error: {msg}"),
            SvqError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SvqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SvqError {
    fn from(e: std::io::Error) -> Self {
        SvqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SvqError::UnknownLabel {
            kind: "action",
            name: "flying".into(),
        };
        assert_eq!(e.to_string(), "unknown action label: \"flying\"");
        let e = SvqError::Parse {
            message: "expected FROM".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SvqError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
