//! Error type shared across the workspace.

use std::fmt;

/// Result alias used across the SVQ-ACT crates.
pub type SvqResult<T> = Result<T, SvqError>;

/// Errors surfaced by the engine.
///
/// The enum is deliberately small: most internal invariants are enforced by
/// construction (newtypes, validated geometry) rather than by fallible APIs;
/// errors remain for genuinely runtime-dependent failures — unknown labels
/// arriving from the SQL surface, malformed queries, missing ingestion
/// metadata, and I/O during persistence.
#[derive(Debug)]
pub enum SvqError {
    /// A label name did not resolve against the model vocabulary.
    UnknownLabel { kind: &'static str, name: String },
    /// The query is structurally invalid (e.g. no action predicate).
    InvalidQuery(String),
    /// A configuration value failed validation (builder `build()`).
    InvalidConfig(String),
    /// A parse error in the SQL-like surface language, with byte offset.
    Parse { message: String, offset: usize },
    /// Ingestion metadata required by the offline engine is missing.
    MissingMetadata(String),
    /// Persistence / deserialisation failure.
    Storage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SvqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvqError::UnknownLabel { kind, name } => {
                write!(f, "unknown {kind} label: {name:?}")
            }
            SvqError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            SvqError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SvqError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SvqError::MissingMetadata(what) => {
                write!(f, "missing ingestion metadata: {what}")
            }
            SvqError::Storage(msg) => write!(f, "storage error: {msg}"),
            SvqError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SvqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SvqError {
    fn from(e: std::io::Error) -> Self {
        SvqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SvqError::UnknownLabel {
            kind: "action",
            name: "flying".into(),
        };
        assert_eq!(e.to_string(), "unknown action label: \"flying\"");
        let e = SvqError::Parse {
            message: "expected FROM".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SvqError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
