//! Label vocabularies for objects and actions.
//!
//! The paper's deployed models define the label universes: the object
//! detector supports a set `O` of object types (Mask R-CNN is trained on
//! COCO's 80 classes; YOLOv3/YOLO9000 extends far beyond), and the action
//! recognizer a set `A` of action categories (I3D is trained on
//! Kinetics-600). Our simulated substrate mirrors this: the object
//! vocabulary is the 80 COCO classes plus an extension block covering the
//! YOLO9000-style classes the paper queries (faucet, tree, kid, …), and the
//! action vocabulary is a Kinetics-style catalogue containing every action
//! queried in Tables 1-3 plus enough distractor classes for realistic
//! multi-class recognition noise.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The 80 COCO object classes, in canonical order.
pub const COCO_CLASSES: [&str; 80] = [
    "person",
    "bicycle",
    "car",
    "motorcycle",
    "airplane",
    "bus",
    "train",
    "truck",
    "boat",
    "traffic light",
    "fire hydrant",
    "stop sign",
    "parking meter",
    "bench",
    "bird",
    "cat",
    "dog",
    "horse",
    "sheep",
    "cow",
    "elephant",
    "bear",
    "zebra",
    "giraffe",
    "backpack",
    "umbrella",
    "handbag",
    "tie",
    "suitcase",
    "frisbee",
    "skis",
    "snowboard",
    "sports ball",
    "kite",
    "baseball bat",
    "baseball glove",
    "skateboard",
    "surfboard",
    "tennis racket",
    "bottle",
    "wine glass",
    "cup",
    "fork",
    "knife",
    "spoon",
    "bowl",
    "banana",
    "apple",
    "sandwich",
    "orange",
    "broccoli",
    "carrot",
    "hot dog",
    "pizza",
    "donut",
    "cake",
    "chair",
    "couch",
    "potted plant",
    "bed",
    "dining table",
    "toilet",
    "tv",
    "laptop",
    "mouse",
    "remote",
    "keyboard",
    "cell phone",
    "microwave",
    "oven",
    "toaster",
    "sink",
    "refrigerator",
    "book",
    "clock",
    "vase",
    "scissors",
    "teddy bear",
    "hair drier",
    "toothbrush",
];

/// Extension classes beyond COCO, in the spirit of YOLO9000's 9k-class
/// detector: every non-COCO object type queried by the paper's evaluation
/// (Tables 1-2) appears here.
pub const EXTENDED_OBJECT_CLASSES: [&str; 10] = [
    "faucet",
    "tree",
    "plant",
    "kid",
    "dish",
    "sunglasses",
    "leaf blower",
    "rubik cube",
    "bow",
    "cigarette",
];

/// Kinetics-style action catalogue. The first block is every action queried
/// in the paper's evaluation (Tables 1, 2 and 3); the remainder are
/// distractor classes so that simulated recognizers produce realistic
/// cross-class confusion.
pub const ACTION_CLASSES: [&str; 60] = [
    // Queried in Tables 1-3.
    "washing dishes",
    "blowing leaves",
    "walking the dog",
    "drinking beer",
    "volleyball",
    "playing rubik cube",
    "cleaning sink",
    "kneeling",
    "doing crunches",
    "blow-drying hair",
    "washing hands",
    "archery",
    // Queried in Table 2 (movies) and the introduction example.
    "smoking",
    "robot dancing",
    "kissing",
    "jumping",
    "playing guitar",
    // Distractor classes (Kinetics-600 style).
    "riding a bike",
    "surfing water",
    "playing basketball",
    "cooking egg",
    "mowing lawn",
    "shoveling snow",
    "brushing teeth",
    "playing piano",
    "juggling balls",
    "climbing ladder",
    "dancing ballet",
    "push up",
    "swimming backstroke",
    "throwing discus",
    "skiing slalom",
    "playing chess",
    "reading book",
    "writing",
    "typing",
    "clapping",
    "laughing",
    "crying",
    "eating burger",
    "eating ice cream",
    "drinking coffee",
    "opening door",
    "closing door",
    "driving car",
    "riding horse",
    "feeding birds",
    "petting cat",
    "building sandcastle",
    "folding napkins",
    "ironing",
    "knitting",
    "painting",
    "sweeping floor",
    "vacuuming",
    "watering plants",
    "welding",
    "whistling",
    "yawning",
    "stretching arms",
];

/// A vocabulary maps label names to dense indices and back.
///
/// Both [`ObjectClass`] and [`ActionClass`] are indices into their global
/// vocabulary; the trait exists so generic code (e.g. the clip-score-table
/// ingestion that materialises one table per class) can iterate a vocabulary
/// without caring which kind it is.
pub trait Vocabulary: Copy + Eq + std::hash::Hash {
    /// All class names, in index order.
    fn names() -> &'static [&'static str];

    /// Construct from a dense index; panics if out of range.
    fn from_index(index: usize) -> Self;

    /// The dense index of this class.
    fn index(self) -> usize;

    /// Number of classes in the vocabulary.
    fn cardinality() -> usize {
        Self::names().len()
    }

    /// The class name.
    fn name(self) -> &'static str {
        Self::names()[self.index()]
    }

    /// Case-insensitive lookup by name; underscores match spaces so the
    /// SQL-surface spelling `robot_dancing` finds `robot dancing`.
    fn lookup(name: &str) -> Option<Self> {
        let needle = name.trim().to_ascii_lowercase().replace('_', " ");
        Self::names()
            .iter()
            .position(|n| *n == needle)
            .map(Self::from_index)
    }

    /// Iterate over every class in the vocabulary.
    fn all() -> Box<dyn Iterator<Item = Self>>
    where
        Self: 'static,
    {
        Box::new((0..Self::cardinality()).map(Self::from_index))
    }
}

/// An object type from the detector's label universe `O`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ObjectClass(pub u16);

/// An action category from the recognizer's label universe `A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ActionClass(pub u16);

/// Combined object label table: COCO followed by the extension block.
fn object_names() -> &'static [&'static str] {
    use std::sync::OnceLock;
    static NAMES: OnceLock<Vec<&'static str>> = OnceLock::new();
    NAMES.get_or_init(|| {
        COCO_CLASSES
            .iter()
            .chain(EXTENDED_OBJECT_CLASSES.iter())
            .copied()
            .collect()
    })
}

impl Vocabulary for ObjectClass {
    fn names() -> &'static [&'static str] {
        object_names()
    }

    fn from_index(index: usize) -> Self {
        assert!(
            index < Self::cardinality(),
            "object class {index} out of range"
        );
        Self(index as u16)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl Vocabulary for ActionClass {
    fn names() -> &'static [&'static str] {
        &ACTION_CLASSES
    }

    fn from_index(index: usize) -> Self {
        assert!(
            index < Self::cardinality(),
            "action class {index} out of range"
        );
        Self(index as u16)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl ObjectClass {
    /// Lookup by name, panicking with a clear message if unknown. Intended
    /// for tests and workload definitions where the name is a literal.
    pub fn named(name: &str) -> Self {
        // Deliberate: a typo'd literal should fail loudly, not limp on.
        // svq-lint: allow(panic)
        Self::lookup(name).unwrap_or_else(|| panic!("unknown object class: {name:?}"))
    }
}

impl ActionClass {
    /// Lookup by name, panicking with a clear message if unknown.
    pub fn named(name: &str) -> Self {
        // Deliberate: a typo'd literal should fail loudly, not limp on.
        // svq-lint: allow(panic)
        Self::lookup(name).unwrap_or_else(|| panic!("unknown action class: {name:?}"))
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for ActionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coco_has_80_classes_and_extension_extends() {
        assert_eq!(COCO_CLASSES.len(), 80);
        assert_eq!(ObjectClass::cardinality(), 90);
        assert_eq!(ActionClass::cardinality(), 60);
    }

    #[test]
    fn lookup_is_case_and_underscore_insensitive() {
        assert_eq!(
            ObjectClass::lookup("Wine_Glass"),
            Some(ObjectClass::named("wine glass"))
        );
        assert_eq!(
            ActionClass::lookup("ROBOT_DANCING"),
            Some(ActionClass::named("robot dancing"))
        );
        assert_eq!(ObjectClass::lookup("flying saucer"), None);
    }

    #[test]
    fn every_queried_label_exists() {
        for o in [
            "faucet",
            "oven",
            "car",
            "plant",
            "tree",
            "chair",
            "bottle",
            "clock",
            "knife",
            "kid",
            "dish",
            "sunglasses",
            "person",
            "wine glass",
            "cup",
            "airplane",
            "bird",
            "cat",
            "surfboard",
            "boat",
            "dog",
        ] {
            assert!(ObjectClass::lookup(o).is_some(), "missing object {o}");
        }
        for a in [
            "washing dishes",
            "blowing leaves",
            "walking the dog",
            "drinking beer",
            "volleyball",
            "playing rubik cube",
            "cleaning sink",
            "kneeling",
            "doing crunches",
            "blow-drying hair",
            "washing hands",
            "archery",
            "smoking",
            "robot dancing",
            "kissing",
            "jumping",
        ] {
            assert!(ActionClass::lookup(a).is_some(), "missing action {a}");
        }
    }

    #[test]
    fn round_trip_index_name() {
        for c in 0..ObjectClass::cardinality() {
            let class = ObjectClass::from_index(c);
            assert_eq!(ObjectClass::lookup(class.name()), Some(class));
        }
        for c in 0..ActionClass::cardinality() {
            let class = ActionClass::from_index(c);
            assert_eq!(ActionClass::lookup(class.name()), Some(class));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for n in ObjectClass::names() {
            assert!(seen.insert(*n), "duplicate object name {n}");
        }
        seen.clear();
        for n in ActionClass::names() {
            assert!(seen.insert(*n), "duplicate action name {n}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown object class")]
    fn named_panics_on_unknown() {
        ObjectClass::named("not a real object");
    }
}
