//! Injected time sources.
//!
//! The online/offline algorithms charge their own wall-clock cost to a
//! [`crate::scoring`]-style ledger, but reading the platform clock inside
//! an algorithm makes its outputs environment-dependent — exactly the kind
//! of hidden nondeterminism `svq-lint`'s determinism rule forbids in the
//! algorithm crates. Timing therefore flows through a [`Clock`] the caller
//! injects: production code passes the `Instant`-backed `WallClock` (which
//! lives in `svq-vision`, outside the determinism-checked crates), while
//! tests pass a [`ManualClock`] whose readings are fully scripted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonic time source, readable as nanoseconds since an arbitrary
/// (per-clock) epoch.
pub trait Clock {
    /// Current reading, in nanoseconds since the clock's epoch.
    fn now_nanos(&self) -> u64;

    /// Nanoseconds elapsed since an earlier [`Clock::now_nanos`] reading.
    fn nanos_since(&self, earlier: u64) -> u64 {
        self.now_nanos().saturating_sub(earlier)
    }
}

/// A deterministic clock for tests: readings advance only when told to —
/// either explicitly via [`ManualClock::advance`] or by a fixed
/// per-reading step ([`ManualClock::stepping`]), so elapsed times are
/// exactly reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
    step: u64,
}

impl ManualClock {
    /// A clock frozen at zero until advanced.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock that advances by `step` on every reading, so any
    /// `start`/`elapsed` pair observes exactly one step.
    pub fn stepping(step: Duration) -> Self {
        Self {
            nanos: AtomicU64::new(0),
            step: step.as_nanos() as u64,
        }
    }

    /// Advance the reading by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.fetch_add(self.step, Ordering::Relaxed)
    }
}

/// A clock that delegates every reading to a caller-supplied closure —
/// the seam a deterministic-simulation harness uses to drive algorithm
/// timing from its virtual-time scheduler. The closure typically reads
/// the scheduler's clock; outside a simulation the same type can adapt
/// any external time source.
#[derive(Clone)]
pub struct SimClock {
    source: std::sync::Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl SimClock {
    /// A clock whose readings come from `source` (nanoseconds since an
    /// arbitrary epoch; must be monotonic).
    pub fn new(source: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        Self {
            source: std::sync::Arc::new(source),
        }
    }
}

impl std::fmt::Debug for SimClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimClock")
            .field("now_nanos", &self.now_nanos())
            .finish()
    }
}

impl Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        (self.source)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_scripted() {
        let c = ManualClock::new();
        let t0 = c.now_nanos();
        assert_eq!(t0, 0);
        c.advance(Duration::from_millis(3));
        assert_eq!(c.nanos_since(t0), 3_000_000);
    }

    #[test]
    fn stepping_clock_advances_per_reading() {
        let c = ManualClock::stepping(Duration::from_micros(5));
        let t0 = c.now_nanos();
        assert_eq!(c.nanos_since(t0), 5_000);
    }

    #[test]
    fn sim_clock_reads_its_source() {
        let backing = std::sync::Arc::new(AtomicU64::new(7));
        let reads = backing.clone();
        let c = SimClock::new(move || reads.load(Ordering::Relaxed));
        assert_eq!(c.now_nanos(), 7);
        backing.store(1_000, Ordering::Relaxed);
        assert_eq!(c.now_nanos(), 1_000);
        assert_eq!(c.nanos_since(7), 993);
    }
}
