//! Inclusive index intervals.
//!
//! The paper represents result sequences as pairs `(c_l, c_r)` of start and
//! end *clip* identifiers, inclusive on both ends (Eq. 4), and ground-truth
//! annotations as frame ranges. [`Interval`] is the shared representation:
//! an inclusive `[start, end]` range over any id newtype, with the temporal
//! overlap/IoU operations the evaluation metrics (§5.1) and the offline
//! interval algebra (§4.2) need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive `[start, end]` interval over an id type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval<Id> {
    pub start: Id,
    pub end: Id,
}

/// A sequence of clips `(c_l, c_r)` — the unit of query results.
pub type ClipInterval = Interval<crate::ids::ClipId>;
/// A frame range, used for ground-truth annotations and frame-level metrics.
pub type FrameInterval = Interval<crate::ids::FrameId>;

impl<Id> Interval<Id>
where
    Id: Copy + Ord + Into<u64> + From<u64>,
{
    /// Construct an interval; panics if `start > end` (an empty interval has
    /// no representation — use `Option<Interval>` instead).
    pub fn new(start: Id, end: Id) -> Self {
        assert!(start <= end, "interval start must not exceed end");
        Self { start, end }
    }

    /// A single-unit interval.
    pub fn point(at: Id) -> Self {
        Self { start: at, end: at }
    }

    /// Number of units covered (inclusive, so always ≥ 1).
    pub fn len(&self) -> u64 {
        self.end.into() - self.start.into() + 1
    }

    /// Always false — intervals cannot be empty — but provided so that
    /// `len`/`is_empty` come as the usual pair.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `id` lies inside the interval.
    pub fn contains(&self, id: Id) -> bool {
        self.start <= id && id <= self.end
    }

    /// Whether the two intervals share at least one unit.
    pub fn overlaps(&self, other: &Self) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Whether the two intervals are adjacent or overlapping (their union is
    /// contiguous).
    pub fn touches(&self, other: &Self) -> bool {
        let (a, b) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        b.start.into() <= a.end.into() + 1
    }

    /// The overlapping sub-interval, if any.
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Self { start, end })
    }

    /// Units shared by the two intervals.
    pub fn overlap_len(&self, other: &Self) -> u64 {
        self.intersect(other).map_or(0, |i| i.len())
    }

    /// Temporal intersection-over-union — the matching criterion of §5.1
    /// ("IOU of the clips of the two sequences").
    pub fn iou(&self, other: &Self) -> f64 {
        let inter = self.overlap_len(other);
        if inter == 0 {
            return 0.0;
        }
        let union = self.len() + other.len() - inter;
        inter as f64 / union as f64
    }

    /// Smallest interval covering both (they need not touch).
    pub fn hull(&self, other: &Self) -> Self {
        Self {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Iterate the ids covered by the interval.
    pub fn iter(&self) -> impl Iterator<Item = Id> {
        (self.start.into()..=self.end.into()).map(Id::from)
    }

    /// Convert to an interval over another id type via raw indices — used
    /// when a clip interval is re-expressed in frames given a fixed scale.
    pub fn scale<Out>(&self, units_per_id: u64) -> Interval<Out>
    where
        Out: Copy + Ord + Into<u64> + From<u64>,
    {
        Interval {
            start: Out::from(self.start.into() * units_per_id),
            end: Out::from((self.end.into() + 1) * units_per_id - 1),
        }
    }
}

impl<Id: fmt::Display> fmt::Display for Interval<Id> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

/// Merge a list of intervals into maximal disjoint intervals: overlapping or
/// adjacent inputs coalesce. The input need not be sorted. This is the
/// `MERGE(clipID)` of the surface language and the merging step of Eq. 4.
pub fn merge_intervals<Id>(mut intervals: Vec<Interval<Id>>) -> Vec<Interval<Id>>
where
    Id: Copy + Ord + Into<u64> + From<u64>,
{
    intervals.sort_by_key(|i| i.start);
    let mut merged: Vec<Interval<Id>> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match merged.last_mut() {
            Some(last) if last.touches(&iv) => *last = last.hull(&iv),
            _ => merged.push(iv),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClipId;

    fn iv(s: u64, e: u64) -> ClipInterval {
        Interval::new(ClipId::new(s), ClipId::new(e))
    }

    #[test]
    fn len_is_inclusive() {
        assert_eq!(iv(3, 3).len(), 1);
        assert_eq!(iv(3, 7).len(), 5);
    }

    #[test]
    fn containment_and_overlap() {
        let a = iv(2, 5);
        assert!(a.contains(ClipId::new(2)));
        assert!(a.contains(ClipId::new(5)));
        assert!(!a.contains(ClipId::new(6)));
        assert!(a.overlaps(&iv(5, 9)));
        assert!(!a.overlaps(&iv(6, 9)));
        assert!(a.touches(&iv(6, 9)));
        assert!(!a.touches(&iv(7, 9)));
    }

    #[test]
    fn intersection_and_iou() {
        let a = iv(0, 9);
        let b = iv(5, 14);
        assert_eq!(a.intersect(&b), Some(iv(5, 9)));
        assert_eq!(a.overlap_len(&b), 5);
        // inter 5, union 15.
        assert!((a.iou(&b) - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(a.iou(&iv(20, 30)), 0.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hull_spans_gaps() {
        assert_eq!(iv(1, 2).hull(&iv(8, 9)), iv(1, 9));
    }

    #[test]
    fn merge_coalesces_overlapping_and_adjacent() {
        let merged = merge_intervals(vec![iv(8, 9), iv(0, 2), iv(3, 4), iv(6, 6)]);
        assert_eq!(merged, vec![iv(0, 4), iv(6, 6), iv(8, 9)]);
    }

    #[test]
    fn merge_of_empty_and_singleton() {
        assert!(merge_intervals::<ClipId>(vec![]).is_empty());
        assert_eq!(merge_intervals(vec![iv(4, 7)]), vec![iv(4, 7)]);
    }

    #[test]
    fn scale_clip_to_frames() {
        // Clips of 50 frames: clip [1,2] covers frames [50, 149].
        let frames: FrameInterval = iv(1, 2).scale(50);
        assert_eq!(frames.start.raw(), 50);
        assert_eq!(frames.end.raw(), 149);
    }

    #[test]
    fn iterate_ids() {
        let ids: Vec<u64> = iv(3, 6).iter().map(|c| c.raw()).collect();
        assert_eq!(ids, vec![3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "interval start must not exceed end")]
    fn inverted_interval_rejected() {
        iv(5, 4);
    }
}
