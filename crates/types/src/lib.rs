//! # svq-types
//!
//! Foundation types for the SVQ-ACT video action-query engine.
//!
//! The paper ("Querying For Actions Over Videos", the full version of the
//! ICDE 2023 demo *SVQ-ACT*) models a video as a hierarchy:
//!
//! ```text
//! video  =  [clip | clip | clip | ...]          (non-overlapping, fixed size)
//! clip   =  [shot | shot | shot | shot | shot]  (fixed number of shots)
//! shot   =  [frame frame ... frame]             (fixed number of frames)
//! ```
//!
//! * **Frames** are the occurrence unit for *object* detections.
//! * **Shots** are the occurrence unit for *action* recognitions.
//! * **Clips** are the unit at which query predicates are decided
//!   (via scan-statistic critical values).
//! * **Sequences** — maximal runs of positive clips — are query results.
//!
//! This crate provides the id newtypes, the [`VideoGeometry`] arithmetic that
//! converts between the levels, label vocabularies for objects (COCO-80) and
//! actions (a Kinetics-style catalogue), detection/score records produced by
//! the (simulated) vision models, interval types used throughout the
//! ingestion and query layers, and the basic [`ActionQuery`] shape.

#![forbid(unsafe_code)]

pub mod clock;
pub mod detection;
pub mod error;
pub mod geometry;
pub mod ids;
pub mod interval;
pub mod labels;
pub mod query;
pub mod scoring;

pub use clock::{Clock, ManualClock, SimClock};
pub use detection::{ActionScore, BBox, Detection, TrackedDetection};
pub use error::{RejectReason, SvqError, SvqResult};
pub use geometry::VideoGeometry;
pub use ids::{ClipId, FrameId, ShotId, TrackId, VideoId};
pub use interval::{ClipInterval, FrameInterval, Interval};
pub use labels::{ActionClass, ObjectClass, Vocabulary};
pub use query::{ActionQuery, Predicate};
pub use scoring::{MaxScoring, PaperScoring, ScoringFunctions};
