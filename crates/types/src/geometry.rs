//! Arithmetic between the levels of the video hierarchy.
//!
//! The paper fixes, per deployment, how many frames make a shot (decided by
//! the action recognition model — "typical values in the literature range
//! from 10-30", §2) and how many shots make a clip (a tunable parameter whose
//! effect is studied in Figures 4-5). [`VideoGeometry`] encapsulates both
//! choices plus the frame rate, and provides the conversions every other
//! crate relies on.

use crate::ids::{ClipId, FrameId, ShotId};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::time::Duration;

/// Fixed per-video layout: frames per shot, shots per clip, frame rate.
///
/// The paper's running example (Figure 1): clips of fifty frames divided into
/// five shots of ten frames — which is exactly [`VideoGeometry::default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VideoGeometry {
    /// Number of frames in one shot (the action recognizer's input length).
    pub frames_per_shot: u32,
    /// Number of shots in one clip.
    pub shots_per_clip: u32,
    /// Frames per second, used only to convert to/from wall-clock time.
    pub fps: u32,
}

impl Default for VideoGeometry {
    fn default() -> Self {
        Self {
            frames_per_shot: 10,
            shots_per_clip: 5,
            fps: 25,
        }
    }
}

impl VideoGeometry {
    /// Create a geometry, validating that every dimension is non-zero.
    pub fn new(frames_per_shot: u32, shots_per_clip: u32, fps: u32) -> Self {
        assert!(frames_per_shot > 0, "frames_per_shot must be positive");
        assert!(shots_per_clip > 0, "shots_per_clip must be positive");
        assert!(fps > 0, "fps must be positive");
        Self {
            frames_per_shot,
            shots_per_clip,
            fps,
        }
    }

    /// A geometry identical to `self` except for the clip size (in shots).
    /// Used by the clip-size sweep of Figures 4-5.
    pub fn with_shots_per_clip(self, shots_per_clip: u32) -> Self {
        Self::new(self.frames_per_shot, shots_per_clip, self.fps)
    }

    /// Frames in one clip.
    #[inline]
    pub const fn frames_per_clip(&self) -> u32 {
        self.frames_per_shot * self.shots_per_clip
    }

    /// Shot containing the given frame.
    #[inline]
    pub fn shot_of_frame(&self, frame: FrameId) -> ShotId {
        ShotId::new(frame.raw() / self.frames_per_shot as u64)
    }

    /// Clip containing the given frame.
    #[inline]
    pub fn clip_of_frame(&self, frame: FrameId) -> ClipId {
        ClipId::new(frame.raw() / self.frames_per_clip() as u64)
    }

    /// Clip containing the given shot.
    #[inline]
    pub fn clip_of_shot(&self, shot: ShotId) -> ClipId {
        ClipId::new(shot.raw() / self.shots_per_clip as u64)
    }

    /// Frames of a shot, as a raw index range.
    #[inline]
    pub fn frames_of_shot(&self, shot: ShotId) -> Range<u64> {
        let start = shot.raw() * self.frames_per_shot as u64;
        start..start + self.frames_per_shot as u64
    }

    /// Frames of a clip, as a raw index range (the paper's `V(c)`).
    #[inline]
    pub fn frames_of_clip(&self, clip: ClipId) -> Range<u64> {
        let start = clip.raw() * self.frames_per_clip() as u64;
        start..start + self.frames_per_clip() as u64
    }

    /// Shots of a clip, as a raw index range (the paper's `S(c)`).
    #[inline]
    pub fn shots_of_clip(&self, clip: ClipId) -> Range<u64> {
        let start = clip.raw() * self.shots_per_clip as u64;
        start..start + self.shots_per_clip as u64
    }

    /// Number of whole clips in a video of `total_frames` frames.
    /// A trailing partial clip is dropped, matching the paper's
    /// non-overlapping fixed-size clip segmentation.
    #[inline]
    pub fn clip_count(&self, total_frames: u64) -> u64 {
        total_frames / self.frames_per_clip() as u64
    }

    /// Number of whole shots in a video of `total_frames` frames.
    #[inline]
    pub fn shot_count(&self, total_frames: u64) -> u64 {
        total_frames / self.frames_per_shot as u64
    }

    /// Number of frames covering `duration` at this geometry's frame rate.
    pub fn frames_in(&self, duration: Duration) -> u64 {
        (duration.as_secs_f64() * self.fps as f64).round() as u64
    }

    /// Wall-clock timestamp of a frame.
    pub fn time_of_frame(&self, frame: FrameId) -> Duration {
        Duration::from_secs_f64(frame.raw() as f64 / self.fps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> VideoGeometry {
        VideoGeometry::default() // 10 frames/shot, 5 shots/clip, 25 fps
    }

    #[test]
    fn default_matches_paper_running_example() {
        let g = geo();
        assert_eq!(g.frames_per_clip(), 50);
    }

    #[test]
    fn frame_to_shot_to_clip() {
        let g = geo();
        assert_eq!(g.shot_of_frame(FrameId::new(0)), ShotId::new(0));
        assert_eq!(g.shot_of_frame(FrameId::new(9)), ShotId::new(0));
        assert_eq!(g.shot_of_frame(FrameId::new(10)), ShotId::new(1));
        assert_eq!(g.clip_of_frame(FrameId::new(49)), ClipId::new(0));
        assert_eq!(g.clip_of_frame(FrameId::new(50)), ClipId::new(1));
        assert_eq!(g.clip_of_shot(ShotId::new(4)), ClipId::new(0));
        assert_eq!(g.clip_of_shot(ShotId::new(5)), ClipId::new(1));
    }

    #[test]
    fn ranges_partition_the_video() {
        let g = geo();
        assert_eq!(g.frames_of_shot(ShotId::new(2)), 20..30);
        assert_eq!(g.frames_of_clip(ClipId::new(1)), 50..100);
        assert_eq!(g.shots_of_clip(ClipId::new(3)), 15..20);
        // Every frame of clip 1 maps back to clip 1.
        for f in g.frames_of_clip(ClipId::new(1)) {
            assert_eq!(g.clip_of_frame(FrameId::new(f)), ClipId::new(1));
        }
    }

    #[test]
    fn counts_drop_partial_tail() {
        let g = geo();
        assert_eq!(g.clip_count(0), 0);
        assert_eq!(g.clip_count(49), 0);
        assert_eq!(g.clip_count(50), 1);
        assert_eq!(g.clip_count(149), 2);
        assert_eq!(g.shot_count(35), 3);
    }

    #[test]
    fn duration_round_trips() {
        let g = geo();
        let one_min = Duration::from_secs(60);
        assert_eq!(g.frames_in(one_min), 1500);
        assert_eq!(g.time_of_frame(FrameId::new(25)), Duration::from_secs(1));
    }

    #[test]
    fn clip_size_sweep_changes_only_shots_per_clip() {
        let g = geo().with_shots_per_clip(8);
        assert_eq!(g.frames_per_clip(), 80);
        assert_eq!(g.frames_per_shot, 10);
        assert_eq!(g.fps, 25);
    }

    #[test]
    #[should_panic(expected = "shots_per_clip must be positive")]
    fn zero_dimension_rejected() {
        VideoGeometry::new(10, 0, 25);
    }
}
