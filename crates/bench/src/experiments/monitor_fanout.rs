//! Standing-query fan-out under load.
//!
//! Not a paper experiment: the paper queries stored or streamed footage on
//! demand. This benchmarks the PR 10 subscription subsystem — an
//! in-process `svq-serve` with a paced live source, swept with
//! {1, 64, 1024, 4096} standing subscriptions (smoke: {1, 64}) fanned out
//! from at most 16 client connections — and measures aggregate pushed
//! events per second plus client-observed delivery lag percentiles
//! (server fan-out timestamp → client receipt, same monotonic clock, one
//! live-drained probe subscription per connection).
//!
//! Two invariants hold on every configuration, for **every** subscription:
//!
//! * **Zero silent drops.** Event `seq`s arrive strictly increasing and
//!   `> from_seq`; the events received equal the terminal frame's
//!   `delivered`; `delivered + missed == total`; and any gap is accounted
//!   — `lagged` notices never report more than the terminal `missed`.
//!   The server-side counters must agree with the client-side tally.
//! * **Clean teardown.** Every subscription ends in a terminal
//!   `unsubscribed` frame when the source exhausts, the drain completes
//!   inside its deadline, and no connection is force-closed.
//!
//! Results land in `results/monitor-fanout.txt` (table) and
//! `results/monitor-fanout.json` (machine-readable series).

use super::ExpContext;
use crate::Table;
use parking_lot::rt;
use std::time::{Duration, Instant};
use svq_serve::{Caller, Request, Response, ServeConfig, Server};

const SQL: &str = "SELECT MERGE(clipID) AS Sequence \
     FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, \
     act USING ActionRecognizer) \
     WHERE act='jumping' AND obj.include('car')";

/// What one subscription saw, verified against its terminal frame.
struct SubTally {
    events: u64,
    lagged_reported: u64,
    delivered: u64,
    missed: u64,
    total: u64,
    /// Receipt lags (client clock − fan-out stamp), probe subs only.
    lags_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Drain one subscription to its terminal frame, checking order and
/// accounting along the way. `probe` records receipt lag per event.
fn drain(sub: &svq_serve::Subscription, probe: bool) -> SubTally {
    let mut tally = SubTally {
        events: 0,
        lagged_reported: 0,
        delivered: 0,
        missed: 0,
        total: 0,
        lags_ms: Vec::new(),
    };
    let mut last_seq = sub.from_seq();
    loop {
        match sub.next().expect("subscription stream stays healthy") {
            Some(Response::Event { seq, at, .. }) => {
                assert!(
                    seq > last_seq,
                    "event seqs must be strictly increasing past from_seq \
                     ({seq} after {last_seq})"
                );
                last_seq = seq;
                tally.events += 1;
                if probe {
                    let now = rt::monotonic_nanos();
                    tally.lags_ms.push(now.saturating_sub(at) as f64 / 1e6);
                }
            }
            Some(Response::Lagged { missed, .. }) => {
                assert!(missed > 0, "a lagged notice reports a non-empty gap");
                tally.lagged_reported += missed;
            }
            Some(Response::Drift { .. }) => {}
            Some(Response::Unsubscribed {
                delivered,
                missed,
                total,
                ..
            }) => {
                tally.delivered = delivered;
                tally.missed = missed;
                tally.total = total;
            }
            // Deliberate: a protocol violation must abort the experiment
            // loudly, like a failed assert.
            // svq-lint: allow(panic)
            Some(other) => panic!("unexpected pushed frame: {other:?}"),
            None => break,
        }
    }
    assert_eq!(
        tally.events, tally.delivered,
        "every delivered event reached the client (no silent drop)"
    );
    assert_eq!(
        tally.delivered + tally.missed,
        tally.total,
        "the terminal accounting closes"
    );
    assert!(
        tally.lagged_reported <= tally.missed,
        "lagged notices never report more than the terminal missed count"
    );
    tally
}

pub fn run(ctx: &ExpContext) {
    let smoke = ctx.scale < 0.05;
    let fleet: &[usize] = if smoke {
        &[1, 64]
    } else {
        &[1, 64, 1024, 4096]
    };
    // 600 source clips replayed at 200 clips/s: a 3 s window, long enough
    // that every subscriber joins early in the replay.
    let (minutes, rate) = if smoke { (10, 400) } else { (20, 200) };

    let mut table = Table::new(&[
        "subs",
        "conns",
        "events",
        "events/s",
        "lag p50 ms",
        "lag p95 ms",
        "lag p99 ms",
        "missed",
    ]);
    let mut series = Vec::new();
    for &n in fleet {
        let source = svq_serve::LiveSourceConfig::parse(&format!(
            "action=jumping,objects=car,minutes={minutes},rate={rate},seed={}",
            ctx.seed
        ))
        .expect("source spec parses");
        let conns = n.min(16);
        let per_conn = n / conns;
        let handle = Server::start_with_source(
            ServeConfig::builder()
                .max_conns(conns + 8)
                .workers(4)
                .shards(2)
                .read_timeout(Duration::from_secs(120))
                .write_timeout(Duration::from_secs(120))
                .drain_timeout(Duration::from_secs(30))
                .build()
                .expect("config is valid"),
            None,
            Vec::new(),
            Some(source),
            svq_exec::ExecMetrics::new(),
        )
        .expect("server binds an ephemeral port");
        let addr = handle.local_addr();

        let started = Instant::now();
        let workers: Vec<_> = (0..conns)
            .map(|_| {
                std::thread::spawn(move || {
                    let caller =
                        Caller::connect(addr, Duration::from_secs(120)).expect("caller connects");
                    let subs: Vec<_> = (0..per_conn)
                        .map(|_| caller.subscribe(SQL, None, 0).expect("subscribe acks"))
                        .collect();
                    // The first subscription is the probe: drained live so
                    // its receipt lag is mailbox-wait-free. The rest are
                    // drained afterwards — their frames buffer client-side
                    // meanwhile, which distorts lag but not accounting.
                    let mut tallies: Vec<SubTally> = Vec::with_capacity(subs.len());
                    for (i, sub) in subs.iter().enumerate() {
                        tallies.push(drain(sub, i == 0));
                    }
                    tallies
                })
            })
            .collect();
        let mut tallies = Vec::with_capacity(n);
        for worker in workers {
            tallies.extend(worker.join().expect("connection thread"));
        }
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(tallies.len(), n, "every subscription reached its terminal");

        let events: u64 = tallies.iter().map(|t| t.events).sum();
        let missed: u64 = tallies.iter().map(|t| t.missed).sum();
        let total: u64 = tallies.iter().map(|t| t.total).sum();
        assert_eq!(events + missed, total, "fleet-wide accounting closes");
        assert!(events > 0, "the source produced events for the fleet");
        let mut lags: Vec<f64> = tallies
            .iter()
            .flat_map(|t| t.lags_ms.iter().copied())
            .collect();
        lags.sort_by(|a, b| a.total_cmp(b));
        let (p50, p95, p99) = (
            percentile(&lags, 0.50),
            percentile(&lags, 0.95),
            percentile(&lags, 0.99),
        );

        // The server's books must agree with the client-side tally.
        let verifier = Caller::connect(addr, Duration::from_secs(120)).expect("verifier connects");
        let stats = match verifier.call(&Request::Stats).and_then(|p| p.wait()) {
            Ok(Response::Stats(frame)) => frame,
            // svq-lint: allow(panic)
            other => panic!("stats exchange failed: {other:?}"),
        };
        assert_eq!(stats.subs_opened, n as u64, "every subscribe was counted");
        assert_eq!(
            stats.subs_active, 0,
            "the source end retired every subscription"
        );
        assert_eq!(
            stats.subs_events, events,
            "server event count matches client receipts"
        );
        assert_eq!(
            stats.subs_missed, missed,
            "server missed count matches the terminals"
        );
        verifier.close();

        handle.shutdown();
        let report = handle.wait();
        assert!(report.drained_in_deadline, "the closing drain was clean");
        assert_eq!(report.forced_closes, 0, "no connection was force-closed");

        let rps = events as f64 / wall;
        table.row(vec![
            n.to_string(),
            conns.to_string(),
            events.to_string(),
            format!("{rps:.0}"),
            format!("{p50:.3}"),
            format!("{p95:.3}"),
            format!("{p99:.3}"),
            missed.to_string(),
        ]);
        series.push(format!(
            "{{\"subs\": {n}, \"conns\": {conns}, \"events\": {events}, \
             \"missed\": {missed}, \"total\": {total}, \"wall_sec\": {wall:.3}, \
             \"events_per_sec\": {rps:.2}, \"lag_p50_ms\": {p50:.4}, \
             \"lag_p95_ms\": {p95:.4}, \"lag_p99_ms\": {p99:.4}, \
             \"accounting_closed\": true}}"
        ));
    }

    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\n{} source clips at {rate} clips/s; every subscription's event seqs \
         strictly increasing with delivered + missed == total (zero silent \
         drops); clean drain at every fleet size\n",
        minutes * 30
    ));
    ctx.emit("monitor-fanout", &rendered);
    let json = format!(
        "{{\"experiment\": \"monitor-fanout\", \"clips\": {}, \"rate\": {rate}, \
         \"scale\": {}, \"seed\": {}, \"smoke\": {smoke}, \
         \"sweep\": [\n  {}\n]}}\n",
        minutes * 30,
        ctx.scale,
        ctx.seed,
        series.join(",\n  ")
    );
    if std::fs::create_dir_all(&ctx.out_dir).is_ok() {
        let _ = std::fs::write(ctx.out_dir.join("monitor-fanout.json"), json);
    }
}
