//! Load generator for the `svq-serve` service layer.
//!
//! Not a paper experiment: the paper executes queries in-process. This
//! benchmarks the PR 5 TCP service — an in-process server on an ephemeral
//! port, swept with {1, 4, 16, 64} concurrent clients (smoke: {1, 4})
//! issuing a mixed `query`/`stream`/`stats` workload — and measures
//! request throughput and client-observed tail latency per client count,
//! in two wire modes:
//!
//! * **serial** — the classic v1 exchange: one request, wait, one
//!   response. Measures per-request round-trip behaviour.
//! * **pipelined** — protocol v2: each client writes its whole round
//!   budget up front with ids, then collects responses in completion
//!   order, matching them back by id. Measures how far the shared
//!   execution pool lets one connection's requests overlap.
//!
//! The pipelined mode must not be slower than the serial one at the top
//! client count (asserted below) — that regression gate is what `ci.sh`
//! runs in its smoke slice.
//!
//! Two invariants hold on every configuration:
//!
//! * **Byte identity** — every `query`/`stream` outcome that crosses the
//!   wire is compared, in canonical form (wall-clock fields zeroed, see
//!   [`svq_query::QueryOutcome::canonical`]), against the outcome of
//!   in-process execution over an identically-constructed workload. The
//!   service layer must not change a single result byte.
//! * **No lost work** — the final [`svq_serve::ServeReport`] accounts for
//!   exactly the requests issued: nothing rejected, nothing malformed,
//!   and the closing drain completes inside its deadline with zero
//!   force-closes.
//!
//! Results land in `results/serve-throughput.txt` (table) and
//! `results/serve-throughput.json` (machine-readable series).

use super::ExpContext;
use crate::Table;
use std::sync::Arc;
use std::time::{Duration, Instant};
use svq_core::offline::ingest;
use svq_core::online::OnlineConfig;
use svq_query::{execute_offline, execute_online, parse, LogicalPlan, QueryOutcome};
use svq_serve::{Client, Request, Response, ServeConfig, Server, VideoScope};
use svq_storage::VideoRepository;
use svq_types::{ActionClass, ObjectClass, PaperScoring, VideoId};
use svq_vision::models::{DetectionOracle, ModelSuite};
use svq_vision::synth::{ObjectSpec, ScenarioSpec};
use svq_vision::VideoStream;

const VIDEOS: u64 = 3;

const OFFLINE_SQL: &str = "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) \
     FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, \
     act USING ActionRecognizer) \
     WHERE act='jumping' AND obj.include('car') \
     ORDER BY RANK(act, obj) LIMIT 3";

const ONLINE_SQL: &str = "SELECT MERGE(clipID) AS Sequence \
     FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, \
     act USING ActionRecognizer) \
     WHERE act='jumping' AND obj.include('car')";

/// Identically-seeded construction reproduces identical detections, so an
/// oracle built here twice — once for the server, once for the in-process
/// reference — yields byte-identical outcomes.
fn oracle(ctx: &ExpContext, video: u64, frames: u64) -> Arc<DetectionOracle> {
    let spec = ScenarioSpec::activitynet(
        VideoId::new(video),
        frames,
        ActionClass::named("jumping"),
        vec![ObjectSpec::correlated(ObjectClass::named("car"))],
        ctx.seed + video,
    );
    Arc::new(spec.generate().oracle(ModelSuite::accurate()))
}

fn canonical_json(outcome: &QueryOutcome) -> String {
    serde_json::to_string(&outcome.canonical()).expect("outcome encodes")
}

/// Expected canonical outcomes, computed in-process over an
/// identically-constructed workload: `[video][0]` = offline `query`,
/// `[video][1]` = online `stream`.
fn expected_outcomes(ctx: &ExpContext, frames: u64) -> Vec<[String; 2]> {
    let offline = LogicalPlan::from_statement(&parse(OFFLINE_SQL).expect("offline sql"))
        .expect("offline plan");
    let online =
        LogicalPlan::from_statement(&parse(ONLINE_SQL).expect("online sql")).expect("online plan");
    (0..VIDEOS)
        .map(|v| {
            let reference = oracle(ctx, v, frames);
            let catalog = ingest(&reference, &PaperScoring, &OnlineConfig::default());
            let query = execute_offline(&offline, &catalog, &PaperScoring).expect("offline runs");
            let mut stream = VideoStream::new(&reference);
            let streamed =
                execute_online(&online, &mut stream, OnlineConfig::default()).expect("online runs");
            [canonical_json(&query), canonical_json(&streamed)]
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// The deterministic request mix: client `c`, round `r` → (request, kind
/// index, video). Reconstructable from a response id, which is how the
/// pipelined mode verifies out-of-order completions.
fn request_of(c: u64, r: u64) -> (Request, usize, u64) {
    let video = (c + r) % VIDEOS;
    let kind = ((c + r) % 3) as usize;
    let request = match kind {
        0 => Request::Query {
            sql: OFFLINE_SQL.into(),
            video: VideoScope::One(video),
        },
        1 => Request::Stream {
            sql: ONLINE_SQL.into(),
            video: Some(video),
        },
        _ => Request::Stats,
    };
    (request, kind, video)
}

/// Byte-identity check for one response against the in-process reference.
fn verify_response(response: Response, kind: usize, video: u64, expected: &[[String; 2]]) {
    match (kind, response) {
        (0 | 1, Response::Outcome(outcome)) => {
            assert_eq!(
                canonical_json(&outcome),
                expected[video as usize][kind],
                "wire outcome diverged from in-process execution \
                 (kind {kind}, video {video})"
            );
        }
        (2, Response::Stats(_)) => {}
        // Deliberate: a protocol violation must abort the experiment
        // loudly, like a failed assert.
        // svq-lint: allow(panic)
        (_, other) => panic!("unexpected response frame: {other:?}"),
    }
}

pub fn run(ctx: &ExpContext) {
    let smoke = ctx.scale < 0.05;
    let client_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16, 64] };
    let rounds: u64 = if smoke { 4 } else { 8 };
    let frames = ((ctx.scale * 30_000.0) as u64).max(1_500);

    let expected = Arc::new(expected_outcomes(ctx, frames));
    let oracles: Vec<_> = (0..VIDEOS).map(|v| oracle(ctx, v, frames)).collect();
    let repo = Arc::new(VideoRepository::from_catalogs(
        oracles
            .iter()
            .map(|o| ingest(o, &PaperScoring, &OnlineConfig::default())),
    ));
    let handle = Server::start(
        ServeConfig::builder()
            .max_conns(client_counts.iter().copied().max().unwrap_or(1) + 32)
            .workers(4)
            .shards(2)
            .read_timeout(Duration::from_secs(120))
            .write_timeout(Duration::from_secs(120))
            .drain_timeout(Duration::from_secs(30))
            .build()
            .expect("config is valid"),
        Some(repo),
        oracles,
        svq_exec::ExecMetrics::new(),
    )
    .expect("server binds an ephemeral port");
    let addr = handle.local_addr();

    let mut table = Table::new(&[
        "mode", "clients", "req/s", "p50 ms", "p95 ms", "p99 ms", "requests",
    ]);
    let mut series = Vec::new();
    let mut issued = 0u64;
    let mut outcomes_compared = 0u64;
    // req/s per (client count, mode), for the pipelined-vs-serial gate.
    let mut rates: Vec<(usize, &str, f64)> = Vec::new();
    for &clients in client_counts {
        for mode in ["serial", "pipelined"] {
            let pipelined = mode == "pipelined";
            let started = Instant::now();
            let workers: Vec<_> = (0..clients as u64)
                .map(|c| {
                    let expected = expected.clone();
                    std::thread::spawn(move || {
                        let mut client = Client::connect(addr).expect("client connects");
                        let mut latencies_ms = Vec::with_capacity(rounds as usize);
                        let mut kinds = [0u64; 3];
                        if pipelined {
                            // Whole budget in flight at once; responses
                            // matched back by id in completion order.
                            let batch = Instant::now();
                            for r in 0..rounds {
                                let (request, _, _) = request_of(c, r);
                                client.send(&request, Some(r)).expect("pipelined send");
                            }
                            for _ in 0..rounds {
                                let (id, response) = client.read_tagged().expect("tagged response");
                                let id = id.expect("v2 responses echo the request id");
                                latencies_ms.push(batch.elapsed().as_secs_f64() * 1e3);
                                let (_, kind, video) = request_of(c, id);
                                kinds[kind] += 1;
                                verify_response(response, kind, video, &expected);
                            }
                        } else {
                            for r in 0..rounds {
                                let (request, kind, video) = request_of(c, r);
                                let sent = Instant::now();
                                let response =
                                    client.request(&request).expect("exchange completes");
                                latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                                kinds[kind] += 1;
                                verify_response(response, kind, video, &expected);
                            }
                        }
                        (latencies_ms, kinds)
                    })
                })
                .collect();
            let mut latencies_ms = Vec::new();
            let mut kinds = [0u64; 3];
            for worker in workers {
                let (lat, k) = worker.join().expect("client thread");
                latencies_ms.extend(lat);
                for (total, n) in kinds.iter_mut().zip(k) {
                    *total += n;
                }
            }
            let wall = started.elapsed().as_secs_f64();
            let requests = latencies_ms.len() as u64;
            issued += requests;
            outcomes_compared += kinds[0] + kinds[1];
            assert_eq!(requests, clients as u64 * rounds, "no request went missing");
            latencies_ms.sort_by(|a, b| a.total_cmp(b));
            let rps = requests as f64 / wall;
            rates.push((clients, mode, rps));
            let (p50, p95, p99) = (
                percentile(&latencies_ms, 0.50),
                percentile(&latencies_ms, 0.95),
                percentile(&latencies_ms, 0.99),
            );
            table.row(vec![
                mode.to_string(),
                clients.to_string(),
                format!("{rps:.1}"),
                format!("{p50:.2}"),
                format!("{p95:.2}"),
                format!("{p99:.2}"),
                requests.to_string(),
            ]);
            series.push(format!(
                "{{\"mode\": \"{mode}\", \"clients\": {clients}, \
                 \"rounds\": {rounds}, \
                 \"requests\": {requests}, \"wall_sec\": {wall:.3}, \
                 \"req_per_sec\": {rps:.2}, \"p50_ms\": {p50:.3}, \
                 \"p95_ms\": {p95:.3}, \"p99_ms\": {p99:.3}, \
                 \"queries\": {}, \"streams\": {}, \"stats\": {}, \
                 \"byte_identical\": true}}",
                kinds[0], kinds[1], kinds[2]
            ));
        }
    }

    // The regression gate: pipelining must never lose to serial exchanges
    // at the top client count (small tolerance for timer noise).
    let top = client_counts.iter().copied().max().unwrap_or(1);
    let rate_of = |mode: &str| {
        rates
            .iter()
            .find(|(c, m, _)| *c == top && *m == mode)
            .map(|(_, _, r)| *r)
            .unwrap_or(0.0)
    };
    let (serial_rps, pipelined_rps) = (rate_of("serial"), rate_of("pipelined"));
    assert!(
        pipelined_rps >= serial_rps * 0.9,
        "pipelined throughput regressed below serial at {top} clients: \
         {pipelined_rps:.1} vs {serial_rps:.1} req/s"
    );

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.requests, issued, "the server answered every request");
    assert_eq!(report.rejected_busy, 0, "admission never spilled");
    assert_eq!(
        report.malformed, 0,
        "the load generator speaks the protocol"
    );
    assert!(report.drained_in_deadline, "the closing drain was clean");
    assert_eq!(report.forced_closes, 0, "no connection was force-closed");

    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\n{VIDEOS} videos x {frames} frames; every one of {outcomes_compared} \
         query/stream outcomes byte-identical (canonical form) to in-process \
         execution; {issued} requests answered, clean drain\n"
    ));
    ctx.emit("serve-throughput", &rendered);
    let json = format!(
        "{{\"experiment\": \"serve-throughput\", \"videos\": {VIDEOS}, \
         \"frames\": {frames}, \"scale\": {}, \"seed\": {}, \
         \"smoke\": {smoke}, \"outcomes_compared\": {outcomes_compared}, \
         \"requests\": {issued}, \"clean_drain\": true, \
         \"serial_rps_at_top\": {serial_rps:.2}, \
         \"pipelined_rps_at_top\": {pipelined_rps:.2}, \
         \"sweep\": [\n  {}\n]}}\n",
        ctx.scale,
        ctx.seed,
        series.join(",\n  ")
    );
    if std::fs::create_dir_all(&ctx.out_dir).is_ok() {
        let _ = std::fs::write(ctx.out_dir.join("serve-throughput.json"), json);
    }
}
