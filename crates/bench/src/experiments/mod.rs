//! One module per reproduced table/figure.

pub mod ablation;
pub mod cluster_throughput;
pub mod fig2;
pub mod fig3;
pub mod fig45;
pub mod ingest_spill;
pub mod monitor_fanout;
pub mod mux_ingress;
pub mod mux_throughput;
pub mod offline_tables;
pub mod runtime;
pub mod rvaq_accuracy;
pub mod serve_throughput;
pub mod sim;
pub mod table3;
pub mod table4;
pub mod table5;

use std::path::PathBuf;

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Workload scale: 1.0 = the paper's footage (Table 1 minutes, Table 2
    /// runtimes). Smaller scales shrink videos proportionally.
    pub scale: f64,
    /// Master seed; every workload derives deterministically from it.
    pub seed: u64,
    /// Where result text files are written.
    pub out_dir: PathBuf,
}

impl Default for ExpContext {
    fn default() -> Self {
        Self {
            scale: 0.3,
            seed: 42,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExpContext {
    /// Persist one experiment's report and echo it to stdout.
    pub fn emit(&self, name: &str, report: &str) {
        println!("== {name} ==\n{report}");
        if std::fs::create_dir_all(&self.out_dir).is_ok() {
            let _ = std::fs::write(self.out_dir.join(format!("{name}.txt")), report);
        }
    }
}

/// An experiment entry point.
pub type ExperimentFn = fn(&ExpContext);

/// The registry of runnable experiments, in paper order.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("fig2", fig2::run),
    ("fig3", fig3::run),
    ("table3", table3::run),
    ("table4", table4::run),
    ("table5", table5::run),
    ("fig4", fig45::run_fig4),
    ("fig5", fig45::run_fig5),
    ("runtime", runtime::run),
    ("table6", offline_tables::run_table6),
    ("table7", offline_tables::run_table7),
    ("table8", offline_tables::run_table8),
    ("rvaq-accuracy", rvaq_accuracy::run),
    ("ablation", ablation::run),
    ("mux-throughput", mux_throughput::run),
    ("mux-ingress", mux_ingress::run),
    ("ingest-spill", ingest_spill::run),
    ("serve-throughput", serve_throughput::run),
    ("cluster-throughput", cluster_throughput::run),
    ("monitor-fanout", monitor_fanout::run),
    ("sim", sim::run),
];
