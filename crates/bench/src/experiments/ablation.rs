//! Ablations beyond the paper's tables, covering the design choices
//! DESIGN.md calls out:
//!
//! 1. SVAQD background-update policies (NegativeClips / AllClips /
//!    PositiveClips — the §3.2-vs-Algorithm-3 ambiguity);
//! 2. significance level α;
//! 3. the skip mechanism's access savings as K varies (complementing
//!    Table 6's fixed comparison);
//! 4. adaptive predicate ordering (footnote 5): evaluated object
//!    predicates per clip with the user's order versus the learned order.

use super::ExpContext;
use crate::Table;
use svq_core::offline::{ingest, Rvaq, RvaqOptions};
use svq_core::online::{BackgroundUpdate, OnlineConfig};
use svq_eval::runner::{run_query_set, OnlineAlgorithm};
use svq_eval::workloads::{movies_workload, youtube_query_set};
use svq_types::PaperScoring;
use svq_vision::models::ModelSuite;

pub fn run(ctx: &ExpContext) {
    let mut report = String::new();

    // 1. Update policies.
    let set = youtube_query_set(1, ctx.scale, ctx.seed);
    let mut t = Table::new(&["update policy", "SVAQD F1"]);
    for (name, policy) in [
        ("NegativeClips (default)", BackgroundUpdate::NegativeClips),
        ("AllClips (literal Eq. 6)", BackgroundUpdate::AllClips),
        (
            "PositiveClips (literal Alg. 3)",
            BackgroundUpdate::PositiveClips,
        ),
    ] {
        let out = run_query_set(
            &set,
            OnlineAlgorithm::Svaqd { p0: 1e-4 },
            ModelSuite::accurate(),
            OnlineConfig::default().with_update(policy),
        );
        t.row(vec![name.to_string(), format!("{:.3}", out.f1())]);
    }
    report.push_str(&t.render());

    // 2. Significance level.
    let mut t = Table::new(&["alpha", "SVAQD F1"]);
    for alpha in [0.01, 0.05, 0.1, 0.2] {
        let out = run_query_set(
            &set,
            OnlineAlgorithm::Svaqd { p0: 1e-4 },
            ModelSuite::accurate(),
            OnlineConfig::default().with_alpha(alpha),
        );
        t.row(vec![format!("{alpha}"), format!("{:.3}", out.f1())]);
    }
    report.push('\n');
    report.push_str(&t.render());

    // 3. Skip savings vs K.
    let movies = movies_workload(ctx.scale, ctx.seed);
    let case = &movies[0];
    let oracle = case.video.oracle(ModelSuite::accurate());
    let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
    let mut t = Table::new(&["K", "RVAQ accesses", "noSkip accesses", "saved"]);
    for k in [1usize, 3, 5, 9] {
        let with = Rvaq::run(&catalog, &case.query, &PaperScoring, RvaqOptions::new(k));
        let without = Rvaq::run(
            &catalog,
            &case.query,
            &PaperScoring,
            RvaqOptions::new(k).without_skip(),
        );
        let saved =
            1.0 - with.disk.random_accesses as f64 / without.disk.random_accesses.max(1) as f64;
        t.row(vec![
            format!("{k}"),
            format!("{}", with.disk.random_accesses),
            format!("{}", without.disk.random_accesses),
            format!("{:.0} %", 100.0 * saved),
        ]);
    }
    report.push('\n');
    report.push_str(&t.render());

    // 4. Adaptive predicate ordering. Query with a common first object and
    // a rare second one: the user's order wastes an evaluation on most
    // clips; the learned order short-circuits on the rare predicate.
    let q3 = youtube_query_set(2, ctx.scale, ctx.seed); // walking the dog
    let ordered_query = svq_types::ActionQuery::named("walking the dog", &["tree", "zebra"]);
    let mut t = Table::new(&["ordering", "avg object predicates evaluated/clip"]);
    for (name, adaptive) in [
        ("query order (user)", false),
        ("learned (footnote 5)", true),
    ] {
        let mut evaluated = 0u64;
        let mut clips = 0u64;
        for video in &q3.videos {
            let oracle = video.oracle(ModelSuite::accurate());
            let mut stream = svq_vision::VideoStream::new(&oracle);
            let config = if adaptive {
                OnlineConfig::default().with_adaptive_order()
            } else {
                OnlineConfig::default()
            };
            let mut engine = svq_core::online::Svaqd::new(
                ordered_query.clone(),
                stream.geometry(),
                config,
                1e-4,
                1e-4,
            );
            while let Some(mut view) = stream.next_clip() {
                engine.push_clip(&mut view);
            }
            let (_, evals) = engine.finish();
            clips += evals.len() as u64;
            evaluated += evals
                .iter()
                .map(|e| e.object_counts.iter().flatten().count() as u64)
                .sum::<u64>();
        }
        t.row(vec![
            name.to_string(),
            format!("{:.2}", evaluated as f64 / clips.max(1) as f64),
        ]);
    }
    report.push('\n');
    report.push_str(&t.render());

    ctx.emit("ablation", &report);
}
