//! Figure 2: F1 of SVAQ vs SVAQD under varying initial background
//! probability, for the queries {a=blowing leaves; o1=car} and
//! {a=washing dishes; o1=faucet}.

use super::ExpContext;
use crate::Table;
use svq_core::online::OnlineConfig;
use svq_eval::runner::{run_videos, OnlineAlgorithm};
use svq_eval::workloads::youtube_query_set;
use svq_types::ActionQuery;

/// The swept initial background probabilities.
pub const P0_SWEEP: [f64; 6] = [1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2];

pub fn run(ctx: &ExpContext) {
    let config = OnlineConfig::default();
    let mut table = Table::new(&["query", "p0", "SVAQ F1", "SVAQD F1"]);
    // (a): blowing leaves + car over the q2 footage.
    // (b): washing dishes + faucet over the q1 footage.
    let cases = [
        (1usize, ActionQuery::named("blowing leaves", &["car"]), "a"),
        (
            0usize,
            ActionQuery::named("washing dishes", &["faucet"]),
            "b",
        ),
    ];
    for (set_idx, query, tag) in cases {
        let set = youtube_query_set(set_idx, ctx.scale, ctx.seed);
        for p0 in P0_SWEEP {
            let svaq = run_videos(
                &set.videos,
                &query,
                OnlineAlgorithm::Svaq { p0 },
                svq_vision::models::ModelSuite::accurate(),
                config,
            );
            let svaqd = run_videos(
                &set.videos,
                &query,
                OnlineAlgorithm::Svaqd { p0 },
                svq_vision::models::ModelSuite::accurate(),
                config,
            );
            table.row(vec![
                format!("({tag}) {query}"),
                format!("{p0:.0e}"),
                format!("{:.3}", svaq.f1()),
                format!("{:.3}", svaqd.f1()),
            ]);
        }
    }
    ctx.emit("fig2", &table.render());
}
