//! Figure 3: F1 of SVAQ and SVAQD for all twelve YouTube queries.
//!
//! The paper fixes SVAQ's background probability to its Figure 2 peak
//! (`1e-4` there). On our calibrated substrate the post-threshold noise
//! floor is higher, so the peak sits near `1e-2`; we report SVAQ at *both*
//! values. The reproduction target: SVAQD dominates SVAQ at any non-oracle
//! `p0` (the paper's central claim — `p0` cannot be known a priori), and at
//! the oracle peak the two are comparable.

use super::ExpContext;
use crate::Table;
use svq_core::online::OnlineConfig;
use svq_eval::runner::{run_query_set, OnlineAlgorithm};
use svq_eval::workloads::youtube_workload;
use svq_vision::models::ModelSuite;

/// The Figure 2 peak on this substrate (see module docs).
pub const SVAQ_P0: f64 = 1e-2;

pub fn run(ctx: &ExpContext) {
    let config = OnlineConfig::default();
    let sets = youtube_workload(ctx.scale, ctx.seed);
    let mut table = Table::new(&[
        "query",
        "action",
        "SVAQ (p0=1e-4, paper's)",
        "SVAQ (p0=1e-2, our peak)",
        "SVAQD",
    ]);
    let mut svaqd_beats_paper_p0 = 0u32;
    for set in &sets {
        let svaq_paper = run_query_set(
            set,
            OnlineAlgorithm::Svaq { p0: 1e-4 },
            ModelSuite::accurate(),
            config,
        );
        let svaq_peak = run_query_set(
            set,
            OnlineAlgorithm::Svaq { p0: SVAQ_P0 },
            ModelSuite::accurate(),
            config,
        );
        let svaqd = run_query_set(
            set,
            OnlineAlgorithm::Svaqd { p0: 1e-4 },
            ModelSuite::accurate(),
            config,
        );
        svaqd_beats_paper_p0 += (svaqd.f1() >= svaq_paper.f1()) as u32;
        table.row(vec![
            set.id.to_string(),
            set.query.to_string(),
            format!("{:.3}", svaq_paper.f1()),
            format!("{:.3}", svaq_peak.f1()),
            format!("{:.3}", svaqd.f1()),
        ]);
    }
    let mut report = table.render();
    report.push_str(&format!(
        "\nSVAQD >= SVAQ(p0=1e-4) on {svaqd_beats_paper_p0}/12 queries\n"
    ));
    ctx.emit("fig3", &report);
}
