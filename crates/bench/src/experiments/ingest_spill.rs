//! Spill-to-disk ingestion vs the in-memory fan-in.
//!
//! Not a paper experiment: the paper ingests one video into RAM. This
//! benchmarks the PR 4 [`svq_storage::CatalogSink`] redesign — parallel
//! ingestion streaming every finished catalog through a bounded hand-off
//! into either sink:
//!
//! * **MemorySink** — today's behaviour: merge into an in-RAM
//!   [`svq_storage::VideoRepository`] (then persisted once with
//!   `save_dir` so the disk artifacts are comparable).
//! * **JsonDirSink** — write-optimised spill: each catalog goes straight
//!   to `video-<id>.json` (temp-file + rename) the moment its worker
//!   finishes, with an append-only crash-safe manifest.
//!
//! For workers {1, 2, 4, 8} (smoke: {1, 2}) the sweep reports catalogs/sec,
//! bytes written, and the hand-off high-water mark, asserting two
//! invariants on every configuration: the high-water mark never exceeds
//! `workers + 1` (the bounded-memory contract), and the spill directory is
//! byte-identical to the memory-sink + `save_dir` directory (the
//! determinism contract).
//!
//! Results land in `results/ingest-spill.txt` (table) and
//! `results/ingest-spill.json` (machine-readable series).

use super::ExpContext;
use crate::Table;
use std::path::Path;
use std::sync::Arc;
use svq_core::online::OnlineConfig;
use svq_exec::{parallel_ingest_into, ExecMetrics};
use svq_storage::{read_manifest, JsonDirSink, MemorySink};
use svq_types::{ActionClass, ObjectClass, PaperScoring, ScoringFunctions, VideoId};
use svq_vision::models::{DetectionOracle, ModelSuite};
use svq_vision::synth::{ObjectSpec, ScenarioSpec};

const VIDEOS: u64 = 12;

fn oracles(ctx: &ExpContext, frames: u64) -> Vec<Arc<DetectionOracle>> {
    (0..VIDEOS)
        .map(|i| {
            let spec = ScenarioSpec::activitynet(
                VideoId::new(i),
                frames,
                ActionClass::named("jumping"),
                vec![ObjectSpec::correlated(ObjectClass::named("car"))],
                ctx.seed + i,
            );
            Arc::new(spec.generate().oracle(ModelSuite::accurate()))
        })
        .collect()
}

/// Assert the two sink directories hold byte-identical files.
fn assert_dirs_match(spill: &Path, mem: &Path, workers: usize) {
    let manifest = read_manifest(spill).expect("spill manifest readable");
    assert_eq!(
        manifest.len(),
        VIDEOS as usize,
        "manifest covers all videos"
    );
    let mut names: Vec<String> = manifest.into_iter().map(|e| e.file).collect();
    names.push("manifest.json".to_string());
    for name in names {
        let a = std::fs::read(spill.join(&name)).expect("spill file readable");
        let b = std::fs::read(mem.join(&name)).expect("mem file readable");
        assert_eq!(a, b, "{name} differs between sinks at {workers} workers");
    }
}

pub fn run(ctx: &ExpContext) {
    let smoke = ctx.scale < 0.05;
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let frames = ((ctx.scale * 30_000.0) as u64).max(1_500);
    let oracles = oracles(ctx, frames);
    let scratch = ctx.out_dir.join("ingest-spill-scratch");

    let mut table = Table::new(&[
        "workers",
        "mem catalogs/s",
        "spill catalogs/s",
        "ratio",
        "spill MB",
        "hand-off peak",
        "bound",
    ]);
    let mut series = Vec::new();
    for &workers in worker_counts {
        let scoring: Arc<dyn ScoringFunctions + Send + Sync> = Arc::new(PaperScoring);
        let mem_dir = scratch.join(format!("mem-{workers}"));
        let spill_dir = scratch.join(format!("spill-{workers}"));
        std::fs::remove_dir_all(&mem_dir).ok();
        std::fs::remove_dir_all(&spill_dir).ok();

        let started = std::time::Instant::now();
        let repo = parallel_ingest_into(
            &oracles,
            scoring.clone(),
            OnlineConfig::default(),
            workers,
            ExecMetrics::new(),
            MemorySink::new(),
        )
        .expect("memory sink never fails");
        let mem_wall = started.elapsed().as_secs_f64();
        repo.save_dir(&mem_dir).expect("save_dir");

        let metrics = ExecMetrics::new();
        let started = std::time::Instant::now();
        let report = parallel_ingest_into(
            &oracles,
            scoring,
            OnlineConfig::default(),
            workers,
            metrics.clone(),
            JsonDirSink::create(&spill_dir).expect("create spill dir"),
        )
        .expect("spill ingest");
        let spill_wall = started.elapsed().as_secs_f64();

        let ing = metrics.snapshot().ingest;
        let bound = workers as u64 + 1;
        assert!(
            ing.buffered_high_water <= bound,
            "hand-off exceeded workers+1 at {workers} workers: {}",
            ing.buffered_high_water
        );
        assert_eq!(report.videos, VIDEOS);
        assert_eq!(report.bytes_written, ing.bytes_written);
        assert_dirs_match(&spill_dir, &mem_dir, workers);

        let mem_cps = VIDEOS as f64 / mem_wall;
        let spill_cps = VIDEOS as f64 / spill_wall;
        table.row(vec![
            workers.to_string(),
            format!("{mem_cps:.2}"),
            format!("{spill_cps:.2}"),
            format!("{:.2}x", spill_cps / mem_cps),
            format!("{:.1}", report.bytes_written as f64 / 1e6),
            ing.buffered_high_water.to_string(),
            bound.to_string(),
        ]);
        series.push(format!(
            "{{\"workers\": {workers}, \"mem_cps\": {mem_cps:.3}, \
             \"mem_wall_sec\": {mem_wall:.3}, \"spill_cps\": {spill_cps:.3}, \
             \"spill_wall_sec\": {spill_wall:.3}, \
             \"spill_bytes\": {}, \"sink_ms\": {:.2}, \
             \"handoff_high_water\": {}, \"handoff_bound\": {bound}, \
             \"byte_identical\": true}}",
            report.bytes_written, ing.sink_ms, ing.buffered_high_water
        ));
    }
    std::fs::remove_dir_all(&scratch).ok();

    let mut report = table.render();
    report.push_str(&format!(
        "\n{VIDEOS} videos x {frames} frames; spill directories byte-identical \
         to MemorySink + save_dir at every worker count; hand-off never \
         exceeded workers + 1 finished catalogs\n"
    ));
    ctx.emit("ingest-spill", &report);
    let json = format!(
        "{{\"experiment\": \"ingest-spill\", \"videos\": {VIDEOS}, \
         \"frames\": {frames}, \"scale\": {}, \"seed\": {}, \
         \"smoke\": {smoke}, \"sweep\": [\n  {}\n]}}\n",
        ctx.scale,
        ctx.seed,
        series.join(",\n  ")
    );
    if std::fs::create_dir_all(&ctx.out_dir).is_ok() {
        let _ = std::fs::write(ctx.out_dir.join("ingest-spill.json"), json);
    }
}
