//! Sharded async ingress vs the blocked single feeder.
//!
//! Not a paper experiment: the paper runs one query over one stream. This
//! benchmarks the `svq-exec` ingress layer introduced for PR 3 along two
//! axes:
//!
//! 1. **Sweep** — clips/sec over an 8-stream SVAQD workload at workers
//!    {1, 2, 4, 8} × drain-batch {1, 4, 16}, comparing a single ingress
//!    shard (one feeder thread, the old blocked-feeder topology) against
//!    four shards. Every configuration must produce byte-identical result
//!    sequences — the sweep doubles as a determinism check over the full
//!    shard × batch grid.
//! 2. **Stall isolation** — two slow (heavily paced) sessions with tiny
//!    `Block` mailboxes alongside six fast sessions. With one shard the
//!    lone feeder blocks on the full slow mailboxes and starves the fast
//!    sessions behind them in the queue; with four shards the stall is
//!    confined to the slow sessions' shards and the fast sessions finish
//!    at full speed.
//!
//! Results land in `results/mux-ingress.txt` (tables) and
//! `results/mux-ingress.json` (machine-readable series). At smoke scale
//! (`--scale < 0.05`, as in `scripts/ci.sh`) only a 1-shard, batch-1,
//! tiny-stream slice of the sweep runs and the stall scenario is skipped.

use super::ExpContext;
use crate::Table;
use std::sync::Arc;
use svq_core::online::{OnlineConfig, Svaqd};
use svq_exec::{Backpressure, ExecMetrics, MuxOptions, SessionEngine, SessionMux};
use svq_types::{ActionClass, ActionQuery, ClipInterval, ObjectClass, VideoId};
use svq_vision::models::{DetectionOracle, ModelSuite};
use svq_vision::synth::{ObjectSpec, ScenarioSpec};

const STREAMS: u64 = 8;
/// Wall seconds slept per simulated inference second for the sweep
/// workload (see [`SessionMux::set_pacing`]); same regime as the
/// mux-throughput experiment.
const SWEEP_PACING: f64 = 2.5e-5;
/// Pacing for the two slow sessions of the stall scenario: ~20 ms of real
/// wait per 400-frame clip, slow enough that their mailboxes stay full.
const STALL_PACING: f64 = 1.5e-3;

fn oracle(ctx: &ExpContext, video: u64, frames: u64) -> Arc<DetectionOracle> {
    let mut spec = ScenarioSpec::activitynet(
        VideoId::new(video),
        frames,
        ActionClass::named("jumping"),
        vec![ObjectSpec::correlated(ObjectClass::named("car"))],
        ctx.seed + video,
    );
    spec.geometry = spec.geometry.with_shots_per_clip(40);
    Arc::new(spec.generate().oracle(ModelSuite::accurate()))
}

fn engine(oracle: &DetectionOracle, config: OnlineConfig) -> SessionEngine {
    SessionEngine::Svaqd(Svaqd::new(
        ActionQuery::named("jumping", &["car"]),
        oracle.truth().geometry,
        config,
        1e-4,
        1e-4,
    ))
}

/// One timed sweep run; returns (clips/sec, wall seconds, results).
fn run_sweep_once(
    oracles: &[Arc<DetectionOracle>],
    workers: usize,
    shards: usize,
    drain_batch: usize,
) -> (f64, f64, Vec<Vec<ClipInterval>>) {
    let config = OnlineConfig::default().with_drain_batch(drain_batch as u32);
    let started = std::time::Instant::now();
    let mux = SessionMux::with_options(
        MuxOptions::new(workers)
            .with_shards(shards)
            .with_drain_batch(config.drain_batch as usize),
        ExecMetrics::new(),
    );
    let ids: Vec<_> = oracles
        .iter()
        .enumerate()
        .map(|(i, oracle)| {
            let id = mux.register(
                format!("v{i}"),
                oracle.clone(),
                engine(oracle, config),
                Backpressure::Block,
                8,
            );
            mux.set_pacing(id, SWEEP_PACING);
            id
        })
        .collect();
    mux.feed_streams(&ids);
    let results: Vec<Vec<ClipInterval>> = ids
        .iter()
        .map(|&id| mux.wait(id).expect("healthy session").sequences)
        .collect();
    let clips = mux.metrics().snapshot().total_clips;
    mux.shutdown();
    let wall = started.elapsed().as_secs_f64();
    (clips as f64 / wall, wall, results)
}

/// Pick video ids so that, on a 4-shard ingress, the 2 slow streams land
/// on one shard and the 6 fast streams on the other three — the cleanest
/// possible demonstration that a stalled shard cannot slow its neighbours.
/// (`shard_index` is the executor's real `VideoId` → shard mapping.)
fn stall_videos() -> (Vec<u64>, Vec<u64>) {
    let mut slow = Vec::new();
    let mut fast = Vec::new();
    for v in 100.. {
        let shard = svq_exec::shard_index(VideoId::new(v), 4);
        if shard == 0 && slow.len() < 2 {
            slow.push(v);
        } else if shard != 0 && fast.len() < 6 {
            fast.push(v);
        }
        if slow.len() == 2 && fast.len() == 6 {
            return (slow, fast);
        }
    }
    unreachable!("the shard hash maps some of any 8+ consecutive ids to shard 0 and some away")
}

/// Stall-isolation scenario: 2 slow + 6 fast sessions on `shards` shards.
/// Returns (min fast wall, mean fast wall, total wall), all in seconds.
fn run_stall_once(ctx: &ExpContext, shards: usize) -> (f64, f64, f64) {
    let frames = 16_000; // 40 clips per stream — short on purpose
    let (slow_videos, fast_videos) = stall_videos();
    let oracles: Vec<_> = slow_videos
        .iter()
        .chain(&fast_videos)
        .map(|&v| oracle(ctx, v, frames))
        .collect();
    let config = OnlineConfig::default();
    let started = std::time::Instant::now();
    let mux = Arc::new(SessionMux::with_options(
        MuxOptions::new(4).with_shards(shards),
        ExecMetrics::new(),
    ));
    let ids: Vec<_> = oracles
        .iter()
        .enumerate()
        .map(|(i, oracle)| {
            let slow = i < 2;
            let id = mux.register(
                format!("{}{i}", if slow { "slow" } else { "fast" }),
                oracle.clone(),
                engine(oracle, config),
                Backpressure::Block,
                2,
            );
            if slow {
                mux.set_pacing(id, STALL_PACING);
            }
            id
        })
        .collect();
    // Per-session waiters timestamp each fast session's completion so the
    // feeder stall (or its absence) shows up as fast-session latency.
    let waiters: Vec<_> = ids[2..]
        .iter()
        .map(|&id| {
            let mux = mux.clone();
            std::thread::spawn(move || {
                let result = mux.wait(id).expect("healthy fast session");
                assert!(result.clips_processed > 0);
                started.elapsed().as_secs_f64()
            })
        })
        .collect();
    mux.feed_streams(&ids);
    let fast_walls: Vec<f64> = waiters
        .into_iter()
        .map(|w| w.join().expect("waiter thread completes"))
        .collect();
    for &id in &ids[..2] {
        mux.wait(id).expect("healthy slow session");
    }
    let total_wall = started.elapsed().as_secs_f64();
    Arc::try_unwrap(mux)
        .ok()
        .expect("all waiters joined, no other handles remain")
        .shutdown();
    let mean_fast = fast_walls.iter().sum::<f64>() / fast_walls.len() as f64;
    let min_fast = fast_walls.iter().copied().fold(f64::INFINITY, f64::min);
    (min_fast, mean_fast, total_wall)
}

pub fn run(ctx: &ExpContext) {
    let smoke = ctx.scale < 0.05;
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let batches: &[usize] = if smoke { &[1] } else { &[1, 4, 16] };
    let sharded = if smoke { 1 } else { 4 };

    let frames = ((ctx.scale * 60_000.0) as u64).max(2_000);
    let oracles: Vec<_> = (0..STREAMS).map(|i| oracle(ctx, i, frames)).collect();

    let mut table = Table::new(&[
        "workers",
        "batch",
        "1-shard clips/s",
        &format!("{sharded}-shard clips/s"),
        "ratio",
    ]);
    let mut series = Vec::new();
    let mut reference: Option<Vec<Vec<ClipInterval>>> = None;
    let mut check = |results: Vec<Vec<ClipInterval>>, label: String| match &reference {
        None => reference = Some(results),
        Some(expected) => assert_eq!(&results, expected, "multiplexer output changed at {label}"),
    };
    for &workers in worker_counts {
        for &batch in batches {
            let (blocked, blocked_wall, results) = run_sweep_once(&oracles, workers, 1, batch);
            check(results, format!("workers={workers} batch={batch} shards=1"));
            let (shard_rate, shard_wall, results) =
                run_sweep_once(&oracles, workers, sharded, batch);
            check(
                results,
                format!("workers={workers} batch={batch} shards={sharded}"),
            );
            let ratio = shard_rate / blocked;
            table.row(vec![
                workers.to_string(),
                batch.to_string(),
                format!("{blocked:.0}"),
                format!("{shard_rate:.0}"),
                format!("{ratio:.2}x"),
            ]);
            series.push(format!(
                "{{\"workers\": {workers}, \"drain_batch\": {batch}, \
                 \"blocked_feeder_cps\": {blocked:.1}, \
                 \"blocked_feeder_wall_sec\": {blocked_wall:.3}, \
                 \"sharded_cps\": {shard_rate:.1}, \
                 \"sharded_wall_sec\": {shard_wall:.3}, \
                 \"sharded_shards\": {sharded}}}"
            ));
        }
    }
    let mut report = table.render();
    report.push_str(&format!(
        "\n{STREAMS} SVAQD sessions, identical result sequences across the \
         full worker x shard x drain-batch grid\n"
    ));

    let stall_json = if smoke {
        report.push_str("\nstall-isolation scenario skipped at smoke scale\n");
        "null".to_string()
    } else {
        let (min_1, mean_1, total_1) = run_stall_once(ctx, 1);
        let (min_4, mean_4, total_4) = run_stall_once(ctx, 4);
        let mut stall = Table::new(&[
            "shards",
            "fast min wall s",
            "fast mean wall s",
            "total wall s",
        ]);
        stall.row(vec![
            "1".into(),
            format!("{min_1:.2}"),
            format!("{mean_1:.2}"),
            format!("{total_1:.2}"),
        ]);
        stall.row(vec![
            "4".into(),
            format!("{min_4:.2}"),
            format!("{mean_4:.2}"),
            format!("{total_4:.2}"),
        ]);
        report.push_str(&format!(
            "\nstall isolation — 2 slow (paced) + 6 fast sessions, Block \
             mailboxes of 2, slow streams pinned to one 4-shard shard:\n{}",
            stall.render()
        ));
        format!(
            "{{\"slow_streams\": 2, \"fast_streams\": 6, \
             \"fast_min_wall_sec_1_shard\": {min_1:.3}, \
             \"fast_min_wall_sec_4_shards\": {min_4:.3}, \
             \"fast_mean_wall_sec_1_shard\": {mean_1:.3}, \
             \"fast_mean_wall_sec_4_shards\": {mean_4:.3}, \
             \"total_wall_sec_1_shard\": {total_1:.3}, \
             \"total_wall_sec_4_shards\": {total_4:.3}}}"
        )
    };

    ctx.emit("mux-ingress", &report);
    let json = format!(
        "{{\"experiment\": \"mux-ingress\", \"streams\": {STREAMS}, \
         \"scale\": {}, \"seed\": {}, \"smoke\": {smoke}, \"sweep\": [\n  {}\n], \
         \"stall\": {stall_json}}}\n",
        ctx.scale,
        ctx.seed,
        series.join(",\n  ")
    );
    if std::fs::create_dir_all(&ctx.out_dir).is_ok() {
        let _ = std::fs::write(ctx.out_dir.join("mux-ingress.json"), json);
    }
}
