//! Throughput scaling of the `svq-exec` session multiplexer.
//!
//! Not a paper experiment: the paper runs one query over one stream. This
//! measures what the executor layer adds — clips/sec over an 8-stream
//! SVAQD workload as the worker pool grows {1, 2, 4, 8} — and doubles as
//! an end-to-end determinism check (every worker count must produce the
//! same result sequences). Results land in `results/mux-throughput.txt`
//! (table) and `results/mux-throughput.json` (machine-readable series).

use super::ExpContext;
use crate::Table;
use std::sync::Arc;
use svq_core::online::{OnlineConfig, Svaqd};
use svq_exec::{Backpressure, ExecMetrics, SessionEngine, SessionMux};
use svq_types::{ActionClass, ActionQuery, ClipInterval, ObjectClass, VideoId};
use svq_vision::models::{DetectionOracle, ModelSuite};
use svq_vision::synth::{ObjectSpec, ScenarioSpec};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const STREAMS: u64 = 8;
/// Wall seconds slept per simulated inference second (see
/// [`SessionMux::set_pacing`]): ~1 ms of real wait per 400-frame clip, so
/// the measurement reflects the inference-bound regime of §5.2 instead of
/// the simulator's table-lookup speed.
const PACING: f64 = 2.5e-5;

fn workload(ctx: &ExpContext) -> Vec<Arc<DetectionOracle>> {
    // Long streams (scale 1.0 ≈ 2.2 simulated hours each) in coarse 400-
    // frame clips: per-clip evaluation cost scales with frames per clip, so
    // big clips make evaluation — the thing the pool parallelises — dwarf
    // the per-ticket queueing overhead, as it does with real models.
    let frames = ((ctx.scale * 200_000.0) as u64).max(20_000);
    (0..STREAMS)
        .map(|i| {
            let mut spec = ScenarioSpec::activitynet(
                VideoId::new(i),
                frames,
                ActionClass::named("jumping"),
                vec![ObjectSpec::correlated(ObjectClass::named("car"))],
                ctx.seed + i,
            );
            spec.geometry = spec.geometry.with_shots_per_clip(40);
            Arc::new(spec.generate().oracle(ModelSuite::accurate()))
        })
        .collect()
}

/// One timed multiplexer run; returns (clips/sec, wall seconds, results).
fn run_once(
    oracles: &[Arc<DetectionOracle>],
    workers: usize,
) -> (f64, f64, Vec<Vec<ClipInterval>>) {
    let query = ActionQuery::named("jumping", &["car"]);
    let config = OnlineConfig::default();
    let started = std::time::Instant::now();
    let mux = SessionMux::new(workers, ExecMetrics::new());
    let ids: Vec<_> = oracles
        .iter()
        .enumerate()
        .map(|(i, oracle)| {
            let engine = SessionEngine::Svaqd(Svaqd::new(
                query.clone(),
                oracle.truth().geometry,
                config,
                1e-4,
                1e-4,
            ));
            let id = mux.register(
                format!("v{i}"),
                oracle.clone(),
                engine,
                Backpressure::Block,
                64,
            );
            mux.set_pacing(id, PACING);
            id
        })
        .collect();
    mux.feed_streams(&ids);
    let results: Vec<Vec<ClipInterval>> = ids
        .iter()
        .map(|&id| mux.wait(id).expect("healthy session").sequences)
        .collect();
    let clips = mux.metrics().snapshot().total_clips;
    mux.shutdown();
    let wall = started.elapsed().as_secs_f64();
    (clips as f64 / wall, wall, results)
}

pub fn run(ctx: &ExpContext) {
    let oracles = workload(ctx);
    let mut table = Table::new(&["workers", "clips/s", "wall s", "speedup"]);
    let mut series = Vec::new();
    let mut baseline = 0.0;
    let mut reference: Option<Vec<Vec<ClipInterval>>> = None;
    for workers in WORKER_COUNTS {
        let (rate, wall, results) = run_once(&oracles, workers);
        match &reference {
            None => reference = Some(results),
            Some(expected) => assert_eq!(
                &results, expected,
                "multiplexer output changed with {workers} workers"
            ),
        }
        if workers == 1 {
            baseline = rate;
        }
        let speedup = rate / baseline;
        table.row(vec![
            workers.to_string(),
            format!("{rate:.0}"),
            format!("{wall:.2}"),
            format!("{speedup:.2}x"),
        ]);
        series.push(format!(
            "{{\"workers\": {workers}, \"clips_per_sec\": {rate:.1}, \
             \"wall_sec\": {wall:.3}, \"speedup\": {speedup:.3}}}"
        ));
    }
    let mut report = table.render();
    report.push_str(&format!(
        "\n{STREAMS} SVAQD sessions, identical result sequences at every \
         worker count\n"
    ));
    ctx.emit("mux-throughput", &report);
    let json = format!(
        "{{\"experiment\": \"mux-throughput\", \"streams\": {STREAMS}, \
         \"scale\": {}, \"seed\": {}, \"runs\": [\n  {}\n]}}\n",
        ctx.scale,
        ctx.seed,
        series.join(",\n  ")
    );
    if std::fs::create_dir_all(&ctx.out_dir).is_ok() {
        let _ = std::fs::write(ctx.out_dir.join("mux-throughput.json"), json);
    }
}
