//! Table 4: F1 under different detection-model suites for the query
//! {a=blowing leaves; o1=car}. Expected ladder: Ideal = 1.0 >
//! MaskRCNN+I3D > YOLOv3+I3D.

use super::ExpContext;
use crate::Table;
use svq_core::online::OnlineConfig;
use svq_eval::runner::{run_videos, OnlineAlgorithm};
use svq_eval::workloads::youtube_query_set;
use svq_types::ActionQuery;
use svq_vision::models::ModelSuite;

pub fn run(ctx: &ExpContext) {
    let config = OnlineConfig::default();
    let set = youtube_query_set(1, ctx.scale, ctx.seed); // q2 footage
    let query = ActionQuery::named("blowing leaves", &["car"]);
    let suites = [
        ModelSuite::accurate(),
        ModelSuite::fast(),
        ModelSuite::ideal(),
    ];
    let mut table = Table::new(&["models", "SVAQ F1", "SVAQD F1"]);
    for suite in suites {
        let svaq = run_videos(
            &set.videos,
            &query,
            OnlineAlgorithm::Svaq { p0: 1e-4 },
            suite,
            config,
        );
        let svaqd = run_videos(
            &set.videos,
            &query,
            OnlineAlgorithm::Svaqd { p0: 1e-4 },
            suite,
            config,
        );
        table.row(vec![
            suite.name(),
            format!("{:.2}", svaq.f1()),
            format!("{:.2}", svaqd.f1()),
        ]);
    }
    ctx.emit("table4", &table.render());
}
