//! Table 5: false-positive rates of the detection models without and with
//! SVAQD's clip-level filtering, for the two Figure 2 queries. The paper
//! reports 50-80 % of model false positives eliminated.

use super::ExpContext;
use crate::Table;
use svq_core::online::OnlineConfig;
use svq_eval::fpr::measure_fpr;
use svq_eval::workloads::youtube_query_set;
use svq_types::ActionQuery;
use svq_vision::models::ModelSuite;

pub fn run(ctx: &ExpContext) {
    let config = OnlineConfig::default();
    let cases = [
        (1usize, ActionQuery::named("blowing leaves", &["car"])),
        (0usize, ActionQuery::named("washing dishes", &["faucet"])),
    ];
    let mut table = Table::new(&[
        "query",
        "act FPR w/o",
        "act FPR w/",
        "obj FPR w/o",
        "obj FPR w/",
    ]);
    for (set_idx, query) in cases {
        let set = youtube_query_set(set_idx, ctx.scale, ctx.seed);
        let report = measure_fpr(&set.videos, &query, ModelSuite::accurate(), config);
        table.row(vec![
            query.to_string(),
            format!("{:.2}", report.action.without),
            format!("{:.2}", report.action.with),
            format!("{:.2}", report.object.without),
            format!("{:.2}", report.object.with),
        ]);
    }
    ctx.emit("table5", &table.render());
}
