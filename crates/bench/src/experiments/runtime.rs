//! §5.2 "Runtime Superiority": online query latency is dominated by model
//! inference (>98 % in the paper), and the end-to-end-model alternative is
//! orders of magnitude more expensive.

use super::ExpContext;
use crate::Table;
use svq_core::online::OnlineConfig;
use svq_eval::runner::{run_query_set, OnlineAlgorithm};
use svq_eval::workloads::youtube_query_set;
use svq_vision::models::ModelSuite;

/// Published fine-tuning + inference time of the end-to-end alternative
/// (the paper trains an I3D-style network per query: > 60 hours).
const END_TO_END_HOURS: f64 = 60.0;

pub fn run(ctx: &ExpContext) {
    let config = OnlineConfig::default();
    let set = youtube_query_set(0, ctx.scale, ctx.seed); // q1
    let outcome = run_query_set(
        &set,
        OnlineAlgorithm::Svaqd { p0: 1e-4 },
        ModelSuite::accurate(),
        config,
    );
    let cost = outcome.cost;
    let mut table = Table::new(&["component", "time", "share"]);
    let total = cost.total_ms();
    table.row(vec![
        "object detection + tracking".into(),
        format!("{:.1} min", cost.object_ms / 60_000.0),
        format!("{:.1} %", 100.0 * cost.object_ms / total),
    ]);
    table.row(vec![
        "action recognition".into(),
        format!("{:.1} min", cost.action_ms / 60_000.0),
        format!("{:.1} %", 100.0 * cost.action_ms / total),
    ]);
    table.row(vec![
        "query algorithm (SVAQD)".into(),
        format!("{:.3} min", cost.algorithm_ms / 60_000.0),
        format!("{:.2} %", 100.0 * cost.algorithm_ms / total),
    ]);
    table.row(vec![
        "total".into(),
        format!("{:.1} min", total / 60_000.0),
        "100 %".into(),
    ]);
    let mut report = table.render();
    report.push_str(&format!(
        "\ninference fraction: {:.1} % (paper: >98 %)\n\
         end-to-end model alternative: > {END_TO_END_HOURS} h training per query \
         vs {:.1} min total here ({:.0}x)\n",
        100.0 * cost.inference_fraction(),
        total / 60_000.0,
        END_TO_END_HOURS * 60.0 / (total / 60_000.0),
    ));
    ctx.emit("runtime", &report);
}
