//! Tables 6-8: the offline comparison.
//!
//! * Table 6 — runtime and random accesses on *Coffee and Cigarettes* as K
//!   varies, for FA / RVAQ-noSkip / Pq-Traverse / RVAQ.
//! * Table 7 — the same metrics on the YouTube sets q1/q2 at K = 5.
//! * Table 8 — RVAQ's speedup over Pq-Traverse on the other three movies.
//!
//! Runtime here is the simulated I/O latency (access counts × the disk cost
//! profile) plus measured algorithm wall-clock — the paper's runtimes are
//! access-dominated, so the shapes carry over; the access *counts* are
//! substrate-independent.

use super::ExpContext;
use crate::Table;
use svq_core::offline::{ingest, FaTopK, PqTraverse, Rvaq, RvaqOptions};
use svq_core::online::OnlineConfig;
use svq_eval::workloads::{movies_workload, youtube_query_set};
use svq_storage::IngestedVideo;
use svq_types::{ActionQuery, PaperScoring};
use svq_vision::models::ModelSuite;

fn fmt_cell(total_ms: f64, accesses: u64) -> String {
    format!("{:.1}; {:.2}", total_ms / 1e3, accesses as f64 / 1e3)
}

/// Ingest one movie case.
fn ingest_movie(ctx: &ExpContext, index: usize) -> (ActionQuery, IngestedVideo) {
    let movies = movies_workload(ctx.scale, ctx.seed);
    let case = &movies[index];
    let oracle = case.video.oracle(ModelSuite::accurate());
    let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
    (case.query.clone(), catalog)
}

pub fn run_table6(ctx: &ExpContext) {
    let (query, catalog) = ingest_movie(ctx, 0); // Coffee and Cigarettes
    let ks = [1usize, 5, 9, 11, 13, 15];
    let mut table = Table::new(&[
        "method (runtime s; random accesses x1000)",
        "K=1",
        "K=5",
        "K=9",
        "K=11",
        "K=13",
        "K=15",
    ]);
    type Method<'a> = Box<dyn Fn(usize) -> (f64, u64) + 'a>;
    let methods: Vec<(&str, Method<'_>)> = vec![
        (
            "FA",
            Box::new(|k| {
                let r = FaTopK::run(&catalog, &query, &PaperScoring, k);
                (r.total_ms(), r.disk.random_accesses)
            }),
        ),
        (
            "RVAQ-noSkip",
            Box::new(|k| {
                let r = Rvaq::run(
                    &catalog,
                    &query,
                    &PaperScoring,
                    RvaqOptions::new(k).without_skip().with_exact_scores(),
                );
                (r.total_ms(), r.disk.random_accesses)
            }),
        ),
        (
            "Pq-Traverse",
            Box::new(|k| {
                let r = PqTraverse::run(&catalog, &query, &PaperScoring, k);
                (r.total_ms(), r.disk.random_accesses)
            }),
        ),
        (
            "RVAQ",
            Box::new(|k| {
                let r = Rvaq::run(
                    &catalog,
                    &query,
                    &PaperScoring,
                    RvaqOptions::new(k).with_exact_scores(),
                );
                (r.total_ms(), r.disk.random_accesses)
            }),
        ),
    ];
    for (name, run) in &methods {
        let mut row = vec![name.to_string()];
        for &k in &ks {
            let (ms, acc) = run(k);
            row.push(fmt_cell(ms, acc));
        }
        table.row(row);
    }
    let pq = catalog.result_sequences(&query);
    let mut report = table.render();
    report.push_str(&format!(
        "\n|P_q| = {} sequences, {} clips, video = {} clips\n",
        pq.len(),
        pq.clip_count(),
        catalog.clip_count
    ));
    ctx.emit("table6", &report);
}

pub fn run_table7(ctx: &ExpContext) {
    let k = 5usize;
    let mut table = Table::new(&["query", "FA", "RVAQ-noSkip", "Pq-Traverse", "RVAQ"]);
    for set_idx in [0usize, 1] {
        let set = youtube_query_set(set_idx, ctx.scale, ctx.seed);
        // The repository holds the set's videos; per-video catalogs are
        // queried independently and costs summed (clip ids are per-video,
        // as the paper's video-identifier association makes explicit).
        let catalogs: Vec<IngestedVideo> = set
            .videos
            .iter()
            .map(|v| {
                let oracle = v.oracle(ModelSuite::accurate());
                ingest(&oracle, &PaperScoring, &OnlineConfig::default())
            })
            .collect();
        let mut cells = Vec::new();
        for method in 0..4usize {
            let mut ms = 0.0;
            let mut acc = 0u64;
            for catalog in &catalogs {
                let r = match method {
                    0 => FaTopK::run(catalog, &set.query, &PaperScoring, k),
                    1 => Rvaq::run(
                        catalog,
                        &set.query,
                        &PaperScoring,
                        RvaqOptions::new(k).without_skip().with_exact_scores(),
                    ),
                    2 => PqTraverse::run(catalog, &set.query, &PaperScoring, k),
                    _ => Rvaq::run(
                        catalog,
                        &set.query,
                        &PaperScoring,
                        RvaqOptions::new(k).with_exact_scores(),
                    ),
                };
                ms += r.total_ms();
                acc += r.disk.random_accesses;
            }
            cells.push(fmt_cell(ms, acc));
        }
        let mut row = vec![set.id.to_string()];
        row.extend(cells);
        table.row(row);
    }
    let mut report = String::from("runtime s; random accesses x1000 (K=5)\n");
    report.push_str(&table.render());
    ctx.emit("table7", &report);
}

pub fn run_table8(ctx: &ExpContext) {
    let mut table = Table::new(&["movie", "K=1", "K=3", "K=5", "K=7", "K=9", "K=11", "max K"]);
    for movie_idx in 1..4usize {
        let (query, catalog) = ingest_movie(ctx, movie_idx);
        let total = catalog.result_sequences(&query).len().max(1);
        let ks: Vec<usize> = vec![1, 3, 5, 7, 9, 11, total];
        let mut row = vec![svq_eval::workloads::MOVIE_SPECS[movie_idx].0.to_string()];
        for &k in &ks {
            let trav = PqTraverse::run(&catalog, &query, &PaperScoring, k);
            // As the paper notes for growing K, exact scores of the top-K
            // are required; RVAQ pays for them.
            let rvaq = Rvaq::run(
                &catalog,
                &query,
                &PaperScoring,
                RvaqOptions::new(k).with_exact_scores(),
            );
            let speedup = trav.total_ms() / rvaq.total_ms().max(1e-9);
            row.push(format!("{speedup:.2}x"));
        }
        table.row(row);
    }
    ctx.emit("table8", &table.render());
}
