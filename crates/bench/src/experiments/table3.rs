//! Table 3: F1 under varying object predicates, over shared footage.
//!
//! The paper's observations to reproduce: a highly correlated,
//! high-accuracy predicate (`person`) *improves* F1 over the action-only
//! query; weaker predicates cost a little; stacking many predicates lowers
//! F1 slightly as detection-error surface grows.

use super::ExpContext;
use crate::Table;
use svq_core::online::OnlineConfig;
use svq_eval::runner::{run_videos, OnlineAlgorithm};
use svq_eval::workloads::{table3_queries, table3_videos};
use svq_vision::models::ModelSuite;

pub fn run(ctx: &ExpContext) {
    let config = OnlineConfig::default();
    let (leaves, dishes) = table3_videos(ctx.scale, ctx.seed);
    let mut table = Table::new(&["query", "SVAQ", "SVAQD"]);
    for (label, query) in table3_queries() {
        let videos = if label.starts_with("a=blowing") {
            &leaves
        } else {
            &dishes
        };
        let svaq = run_videos(
            videos,
            &query,
            OnlineAlgorithm::Svaq { p0: 1e-4 },
            ModelSuite::accurate(),
            config,
        );
        let svaqd = run_videos(
            videos,
            &query,
            OnlineAlgorithm::Svaqd { p0: 1e-4 },
            ModelSuite::accurate(),
            config,
        );
        table.row(vec![
            label.to_string(),
            format!("{:.2}", svaq.f1()),
            format!("{:.2}", svaqd.f1()),
        ]);
    }
    ctx.emit("table3", &table.render());
}
