//! §5.3 accuracy note: precision and F1 of RVAQ's ranked results against
//! ground truth on the movies; the paper reports precision ≥ 0.81,
//! F1 ≥ 0.829, and perfect precision for the top-10.

use super::ExpContext;
use crate::Table;
use svq_core::offline::{ingest, Rvaq, RvaqOptions};
use svq_core::online::OnlineConfig;
use svq_eval::metrics::{clips_to_frames, match_counts};
use svq_eval::runner::ETA;
use svq_eval::workloads::movies_workload;
use svq_types::PaperScoring;
use svq_vision::models::ModelSuite;

pub fn run(ctx: &ExpContext) {
    let movies = movies_workload(ctx.scale, ctx.seed);
    let mut table = Table::new(&["movie", "K", "precision", "F1", "top-10 precision"]);
    for case in &movies {
        let oracle = case.video.oracle(ModelSuite::accurate());
        let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let truth = case.video.truth.query_truth(&case.query);
        let geometry = case.video.truth.geometry;

        // All sequences, ranked.
        let total = catalog.result_sequences(&case.query).len();
        let all = Rvaq::run(
            &catalog,
            &case.query,
            &PaperScoring,
            RvaqOptions::new(total.max(1)).with_exact_scores(),
        );
        let predicted = clips_to_frames(
            &all.ranked.iter().map(|r| r.interval).collect::<Vec<_>>(),
            geometry,
        );
        let counts = match_counts(&predicted, &truth, ETA);

        // Top-10 precision.
        let top10 = Rvaq::run(
            &catalog,
            &case.query,
            &PaperScoring,
            RvaqOptions::new(10).with_exact_scores(),
        );
        let top10_frames = clips_to_frames(
            &top10.ranked.iter().map(|r| r.interval).collect::<Vec<_>>(),
            geometry,
        );
        let top10_counts = match_counts(&top10_frames, &truth, ETA);
        let top10_tp_only = svq_eval::metrics::MatchCounts {
            tp: top10_counts.tp,
            fp: top10_counts.fp,
            fn_: 0,
        };

        table.row(vec![
            case.title.to_string(),
            format!("{total}"),
            format!("{:.3}", counts.precision()),
            format!("{:.3}", counts.f1()),
            format!("{:.3}", top10_tp_only.precision()),
        ]);
    }
    ctx.emit("rvaq-accuracy", &table.render());
}
