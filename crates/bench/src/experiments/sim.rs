//! Deterministic-simulation sweep: the `svq-sim` harness at scale.
//!
//! Not a paper experiment: this is the verification counterpart of the
//! concurrency work (PR 3's mux, PR 4's spill sinks, PR 5's server). Every
//! registered scenario — the real exec/serve/storage stack under the
//! seeded virtual-time scheduler — is swept across hundreds of randomized
//! schedules, unfaulted and with every fault armed, and the committed seed
//! corpus is replayed. Any violation is shrunk to the smallest reproducing
//! size and reported as a one-line `svqact sim …` repro command before the
//! experiment fails.
//!
//! At the default scale the sweep covers ≥1000 schedules; `--scale 0.01`
//! (the CI smoke slice) trims it to a few dozen per scenario. Virtual time
//! dwarfs wall time — that is the point of the harness.
//!
//! Results land in `results/sim.txt`.

use super::ExpContext;
use crate::Table;
use std::time::Instant;
use svq_sim::{run_corpus_line, sweep_persisting, FaultPlan, CORPUS, SCENARIOS};

pub fn run(ctx: &ExpContext) {
    let smoke = ctx.scale < 0.05;
    // Shrunk failing schedules persist their full event trace next to the
    // report so a violation can be diffed against a local replay.
    let trace_dir = ctx.out_dir.join("sim-traces");
    let per_plan: u64 = if smoke { 10 } else { 100 };
    let plans = [("none", FaultPlan::none()), ("all", FaultPlan::all())];

    let mut table = Table::new(&[
        "scenario",
        "faults",
        "schedules",
        "steps",
        "virtual s",
        "wall s",
        "failures",
    ]);
    let mut total_schedules = 0u64;
    let mut repro_lines = Vec::new();

    for (si, scenario) in SCENARIOS.iter().enumerate() {
        for (pi, (label, faults)) in plans.iter().enumerate() {
            let base_seed = ctx.seed ^ ((si as u64) << 8) ^ ((pi as u64) << 4);
            let start = Instant::now();
            let report = sweep_persisting(
                scenario,
                base_seed,
                per_plan,
                scenario.default_size,
                *faults,
                3,
                Some(&trace_dir),
            );
            total_schedules += report.schedules;
            table.row(vec![
                scenario.name.to_string(),
                label.to_string(),
                report.schedules.to_string(),
                report.steps.to_string(),
                format!("{:.3}", report.virtual_nanos as f64 / 1e9),
                format!("{:.3}", start.elapsed().as_secs_f64()),
                report.failures.len().to_string(),
            ]);
            for failure in report.failures {
                match &failure.trace {
                    Some(path) => repro_lines.push(format!(
                        "{} [{}]  # trace: {}",
                        failure.repro,
                        failure.detail,
                        path.display()
                    )),
                    None => repro_lines.push(format!("{} [{}]", failure.repro, failure.detail)),
                }
            }
        }
    }

    // Corpus replay: every committed schedule stays green.
    let mut corpus_replayed = 0u64;
    for line in CORPUS.lines() {
        match run_corpus_line(line) {
            Ok(None) => {}
            Ok(Some((spec, outcome))) => {
                corpus_replayed += 1;
                total_schedules += 1;
                if let Some(f) = outcome.failure {
                    repro_lines.push(format!("{} [{f}]", spec.repro_line()));
                }
            }
            Err(e) => repro_lines.push(format!("corpus line unparseable: {e}")),
        }
    }

    let mut report = table.render();
    report.push_str(&format!(
        "\ntotal schedules: {total_schedules} (corpus: {corpus_replayed})\n"
    ));
    if repro_lines.is_empty() {
        report.push_str("violations: none\n");
    } else {
        report.push_str("violations:\n");
        for line in &repro_lines {
            report.push_str(&format!("  {line}\n"));
        }
    }
    ctx.emit("sim", &report);

    assert!(
        repro_lines.is_empty(),
        "simulation sweep found violations; repro commands:\n{}",
        repro_lines.join("\n")
    );
    assert!(
        smoke || total_schedules >= 1000,
        "full-scale sweep covers at least a thousand schedules, got {total_schedules}"
    );
}
