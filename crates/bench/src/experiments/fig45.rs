//! Figures 4 and 5: the effect of clip size.
//!
//! Figure 4: the number of result sequences falls as clips grow (fewer,
//! longer sequences), while the total number of frames reported stays
//! roughly stable. Figure 5: frame-level F1 is nearly independent of clip
//! size — the *content* retrieved does not change, only its packaging.

use super::ExpContext;
use crate::Table;
use svq_core::online::OnlineConfig;
use svq_eval::runner::{run_videos, OnlineAlgorithm};
use svq_eval::workloads::youtube_query_set;
use svq_types::ActionQuery;
use svq_vision::models::ModelSuite;
use svq_vision::synth::SyntheticVideo;

/// Swept clip sizes, in shots (x10 frames at the default geometry).
pub const CLIP_SIZES: [u32; 5] = [2, 3, 5, 8, 12];

fn cases(ctx: &ExpContext) -> Vec<(String, Vec<SyntheticVideo>, ActionQuery)> {
    let a = youtube_query_set(1, ctx.scale, ctx.seed);
    let b = youtube_query_set(0, ctx.scale, ctx.seed);
    vec![
        (
            "(a) {a=blowing leaves; o1=car}".into(),
            a.videos,
            ActionQuery::named("blowing leaves", &["car"]),
        ),
        (
            "(b) {a=washing dishes; o1=faucet}".into(),
            b.videos,
            ActionQuery::named("washing dishes", &["faucet"]),
        ),
    ]
}

fn sweep(ctx: &ExpContext) -> Vec<(String, u32, svq_eval::runner::EvalOutcome)> {
    let config = OnlineConfig::default();
    let mut out = Vec::new();
    for (label, videos, query) in cases(ctx) {
        for shots in CLIP_SIZES {
            let resized: Vec<SyntheticVideo> = videos
                .iter()
                .map(|v| v.with_shots_per_clip(shots))
                .collect();
            let outcome = run_videos(
                &resized,
                &query,
                OnlineAlgorithm::Svaqd { p0: 1e-4 },
                ModelSuite::accurate(),
                config,
            );
            out.push((label.clone(), shots, outcome));
        }
    }
    out
}

pub fn run_fig4(ctx: &ExpContext) {
    let mut table = Table::new(&[
        "query",
        "clip size (frames)",
        "# sequences",
        "frames reported",
    ]);
    for (label, shots, outcome) in sweep(ctx) {
        table.row(vec![
            label,
            format!("{}", shots * 10),
            format!("{}", outcome.sequences_found),
            format!("{}", outcome.frames_found),
        ]);
    }
    ctx.emit("fig4", &table.render());
}

pub fn run_fig5(ctx: &ExpContext) {
    let mut table = Table::new(&["query", "clip size (frames)", "frame-level F1"]);
    for (label, shots, outcome) in sweep(ctx) {
        table.row(vec![
            label,
            format!("{}", shots * 10),
            format!("{:.3}", outcome.frame_f1()),
        ]);
    }
    ctx.emit("fig5", &table.render());
}
