//! Load generator for the multi-node cluster: a shard router in front of
//! hash-sliced `svq-serve` processes.
//!
//! Not a paper experiment: the paper executes queries in-process. This
//! benchmarks the cluster layer — {1, 2, 4} shard servers (smoke: {1, 2})
//! behind one router, swept with {1, 16, 64} concurrent clients (smoke:
//! {1, 4}) issuing a mixed workload of targeted `query`s, `stream`s,
//! `stats`, and cross-catalog (`video: "all"`) top-k queries — and
//! measures routed request throughput and client-observed tail latency
//! per (shards, clients) cell, in two wire modes:
//!
//! * **serial** — one request, wait, one response per round trip.
//! * **pipelined** — the typed [`svq_serve::Caller`] API: each client
//!   puts its whole round budget in flight, then waits the [`Pending`]
//!   handles; the router overlaps the fan-out end to end.
//!
//! Two invariants hold on every configuration:
//!
//! * **Byte identity** — every outcome that crosses the router is
//!   compared, in canonical form, against in-process execution over an
//!   identically-constructed workload. Cross-catalog top-ks must match
//!   [`svq_query::execute_offline_all`] over the *combined* catalog —
//!   sharding must not change a result byte, at any shard count.
//! * **Typed failure** — after the sweep, one shard is killed and the
//!   router must answer queries for its videos with a typed
//!   `shard_unavailable` error (and keep serving the survivors), never
//!   hang.
//!
//! Results land in `results/cluster-throughput.txt` (table) and
//! `results/cluster-throughput.json` (machine-readable series).

use super::ExpContext;
use crate::Table;
use std::sync::Arc;
use std::time::{Duration, Instant};
use svq_core::offline::ingest;
use svq_core::online::OnlineConfig;
use svq_exec::shard_index;
use svq_query::{
    execute_offline, execute_offline_all, execute_online, parse, LogicalPlan, QueryOutcome,
};
use svq_serve::{
    Client, Request, Response, RouteConfig, Router, ServeConfig, Server, ServerHandle, VideoScope,
};
use svq_storage::VideoRepository;
use svq_types::{ActionClass, ObjectClass, PaperScoring, RejectReason, VideoId};
use svq_vision::models::{DetectionOracle, ModelSuite};
use svq_vision::synth::{ObjectSpec, ScenarioSpec};
use svq_vision::VideoStream;

const VIDEOS: u64 = 6;

const OFFLINE_SQL: &str = "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) \
     FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, \
     act USING ActionRecognizer) \
     WHERE act='jumping' AND obj.include('car') \
     ORDER BY RANK(act, obj) LIMIT 3";

const ONLINE_SQL: &str = "SELECT MERGE(clipID) AS Sequence \
     FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, \
     act USING ActionRecognizer) \
     WHERE act='jumping' AND obj.include('car')";

/// Identically-seeded construction reproduces identical detections, so an
/// oracle built here twice — once for a shard, once for the in-process
/// reference — yields byte-identical outcomes.
fn oracle(ctx: &ExpContext, video: u64, frames: u64) -> Arc<DetectionOracle> {
    let spec = ScenarioSpec::activitynet(
        VideoId::new(video),
        frames,
        ActionClass::named("jumping"),
        vec![ObjectSpec::correlated(ObjectClass::named("car"))],
        ctx.seed + video,
    );
    Arc::new(spec.generate().oracle(ModelSuite::accurate()))
}

fn canonical_json(outcome: &QueryOutcome) -> String {
    serde_json::to_string(&outcome.canonical()).expect("outcome encodes")
}

/// In-process references: `per_video[v] = [offline, online]` canonical
/// JSON, plus the cross-catalog top-k over the combined repository — the
/// single-process answer every cluster size must reproduce exactly.
fn expected_outcomes(ctx: &ExpContext, frames: u64) -> (Vec<[String; 2]>, String) {
    let offline = LogicalPlan::from_statement(&parse(OFFLINE_SQL).expect("offline sql"))
        .expect("offline plan");
    let online =
        LogicalPlan::from_statement(&parse(ONLINE_SQL).expect("online sql")).expect("online plan");
    let mut per_video = Vec::new();
    let mut catalogs = Vec::new();
    for v in 0..VIDEOS {
        let reference = oracle(ctx, v, frames);
        let catalog = ingest(&reference, &PaperScoring, &OnlineConfig::default());
        let query = execute_offline(&offline, &catalog, &PaperScoring).expect("offline runs");
        let mut stream = VideoStream::new(&reference);
        let streamed =
            execute_online(&online, &mut stream, OnlineConfig::default()).expect("online runs");
        per_video.push([canonical_json(&query), canonical_json(&streamed)]);
        catalogs.push(catalog);
    }
    let combined = VideoRepository::from_catalogs(catalogs);
    let all = execute_offline_all(&offline, &combined, &PaperScoring).expect("cluster runs");
    (per_video, canonical_json(&all))
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// One shard server owning the hash slice `shard_index(v, count) == index`
/// — the placement `svqact serve --shard-index` applies and the router
/// assumes.
fn start_shard(ctx: &ExpContext, index: usize, count: usize, frames: u64) -> ServerHandle {
    let oracles: Vec<_> = (0..VIDEOS)
        .filter(|&v| shard_index(VideoId::new(v), count) == index)
        .map(|v| oracle(ctx, v, frames))
        .collect();
    let repo = Arc::new(VideoRepository::from_catalogs(
        oracles
            .iter()
            .map(|o| ingest(o, &PaperScoring, &OnlineConfig::default())),
    ));
    Server::start(
        ServeConfig::builder()
            .max_conns(16)
            .workers(4)
            .shards(2)
            .read_timeout(Duration::from_secs(120))
            .write_timeout(Duration::from_secs(120))
            .drain_timeout(Duration::from_secs(30))
            .build()
            .expect("config is valid"),
        Some(repo),
        oracles,
        svq_exec::ExecMetrics::new(),
    )
    .expect("shard binds an ephemeral port")
}

/// The deterministic request mix: client `c`, round `r` → (request, kind
/// index, video). Kind 3 is the cross-catalog top-k, the request only a
/// cluster can answer by scatter-gather.
fn request_of(c: u64, r: u64) -> (Request, usize, u64) {
    let video = (c + r) % VIDEOS;
    let kind = ((c + r) % 4) as usize;
    let request = match kind {
        0 => Request::Query {
            sql: OFFLINE_SQL.into(),
            video: VideoScope::One(video),
        },
        1 => Request::Stream {
            sql: ONLINE_SQL.into(),
            video: Some(video),
        },
        2 => Request::Stats,
        _ => Request::Query {
            sql: OFFLINE_SQL.into(),
            video: VideoScope::All,
        },
    };
    (request, kind, video)
}

/// Byte-identity check for one routed response.
fn verify_response(
    response: Response,
    kind: usize,
    video: u64,
    shards: usize,
    expected: &(Vec<[String; 2]>, String),
) {
    match (kind, response) {
        (0 | 1, Response::Outcome(outcome)) => {
            assert_eq!(
                canonical_json(&outcome),
                expected.0[video as usize][kind],
                "routed outcome diverged from in-process execution \
                 (kind {kind}, video {video}, {shards} shards)"
            );
        }
        (2, Response::Stats(stats)) => {
            assert_eq!(
                stats.shards, shards as u64,
                "stats reports the configured fan-out"
            );
        }
        (3, Response::Outcome(outcome)) => {
            assert_eq!(
                canonical_json(&outcome),
                expected.1,
                "cluster top-k diverged from single-process execution \
                 ({shards} shards)"
            );
        }
        // Deliberate: a protocol violation must abort the experiment
        // loudly, like a failed assert.
        // svq-lint: allow(panic)
        (_, other) => panic!("unexpected response frame: {other:?}"),
    }
}

pub fn run(ctx: &ExpContext) {
    let smoke = ctx.scale < 0.05;
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let client_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 16, 64] };
    let rounds: u64 = if smoke { 4 } else { 8 };
    let frames = ((ctx.scale * 20_000.0) as u64).max(1_000);

    let expected = Arc::new(expected_outcomes(ctx, frames));

    let mut table = Table::new(&[
        "shards", "mode", "clients", "req/s", "p50 ms", "p95 ms", "p99 ms", "requests",
    ]);
    let mut series = Vec::new();
    let mut outcomes_compared = 0u64;
    let mut total_requests = 0u64;
    for &shards in shard_counts {
        let shard_handles: Vec<_> = (0..shards)
            .map(|i| start_shard(ctx, i, shards, frames))
            .collect();
        let addrs: Vec<String> = shard_handles
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect();
        let router = Router::start(
            RouteConfig::builder()
                .max_conns(client_counts.iter().copied().max().unwrap_or(1) + 32)
                .read_timeout(Duration::from_secs(120))
                .write_timeout(Duration::from_secs(120))
                .drain_timeout(Duration::from_secs(30))
                .upstream_timeout(Duration::from_secs(120))
                .build()
                .expect("config is valid"),
            &addrs,
            svq_exec::ExecMetrics::new(),
        )
        .expect("router binds an ephemeral port");
        let addr = router.local_addr();

        for &clients in client_counts {
            for mode in ["serial", "pipelined"] {
                let pipelined = mode == "pipelined";
                let started = Instant::now();
                let workers: Vec<_> = (0..clients as u64)
                    .map(|c| {
                        let expected = expected.clone();
                        std::thread::spawn(move || {
                            let mut latencies_ms = Vec::with_capacity(rounds as usize);
                            let mut kinds = [0u64; 4];
                            if pipelined {
                                // The typed call API: the whole budget in
                                // flight as Pending handles, awaited in
                                // submission order.
                                let caller = Client::connect(addr)
                                    .expect("client connects")
                                    .into_caller()
                                    .expect("caller starts");
                                let batch = Instant::now();
                                let handles: Vec<_> = (0..rounds)
                                    .map(|r| {
                                        let (request, kind, video) = request_of(c, r);
                                        let pending =
                                            caller.call(&request).expect("pipelined call");
                                        (pending, kind, video)
                                    })
                                    .collect();
                                for (pending, kind, video) in handles {
                                    let response = pending.wait().expect("response arrives");
                                    latencies_ms.push(batch.elapsed().as_secs_f64() * 1e3);
                                    kinds[kind] += 1;
                                    verify_response(response, kind, video, shards, &expected);
                                }
                            } else {
                                let mut client = Client::connect(addr).expect("client connects");
                                for r in 0..rounds {
                                    let (request, kind, video) = request_of(c, r);
                                    let sent = Instant::now();
                                    let response =
                                        client.request(&request).expect("exchange completes");
                                    latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                                    kinds[kind] += 1;
                                    verify_response(response, kind, video, shards, &expected);
                                }
                            }
                            (latencies_ms, kinds)
                        })
                    })
                    .collect();
                let mut latencies_ms = Vec::new();
                let mut kinds = [0u64; 4];
                for worker in workers {
                    let (lat, k) = worker.join().expect("client thread");
                    latencies_ms.extend(lat);
                    for (total, n) in kinds.iter_mut().zip(k) {
                        *total += n;
                    }
                }
                let wall = started.elapsed().as_secs_f64();
                let requests = latencies_ms.len() as u64;
                total_requests += requests;
                outcomes_compared += kinds[0] + kinds[1] + kinds[3];
                assert_eq!(requests, clients as u64 * rounds, "no request went missing");
                latencies_ms.sort_by(|a, b| a.total_cmp(b));
                let rps = requests as f64 / wall;
                let (p50, p95, p99) = (
                    percentile(&latencies_ms, 0.50),
                    percentile(&latencies_ms, 0.95),
                    percentile(&latencies_ms, 0.99),
                );
                table.row(vec![
                    shards.to_string(),
                    mode.to_string(),
                    clients.to_string(),
                    format!("{rps:.1}"),
                    format!("{p50:.2}"),
                    format!("{p95:.2}"),
                    format!("{p99:.2}"),
                    requests.to_string(),
                ]);
                series.push(format!(
                    "{{\"shards\": {shards}, \"mode\": \"{mode}\", \
                     \"clients\": {clients}, \"rounds\": {rounds}, \
                     \"requests\": {requests}, \"wall_sec\": {wall:.3}, \
                     \"req_per_sec\": {rps:.2}, \"p50_ms\": {p50:.3}, \
                     \"p95_ms\": {p95:.3}, \"p99_ms\": {p99:.3}, \
                     \"queries\": {}, \"streams\": {}, \"stats\": {}, \
                     \"cluster_topk\": {}, \"byte_identical\": true}}",
                    kinds[0], kinds[1], kinds[2], kinds[3]
                ));
            }
        }

        // Kill phase (multi-shard clusters): the last shard goes away and
        // its videos must answer as typed shard_unavailable while the
        // survivors keep serving.
        if shards > 1 {
            let dead_shard = shards - 1;
            let dead_video =
                (0..VIDEOS).find(|&v| shard_index(VideoId::new(v), shards) == dead_shard);
            let live_video =
                (0..VIDEOS).find(|&v| shard_index(VideoId::new(v), shards) != dead_shard);
            if let (Some(dead_video), Some(live_video)) = (dead_video, live_video) {
                let dead = &shard_handles[dead_shard];
                dead.shutdown();
                dead.wait();
                let mut client = Client::connect(addr).expect("client connects");
                match client
                    .request(&Request::Query {
                        sql: OFFLINE_SQL.into(),
                        video: VideoScope::One(dead_video),
                    })
                    .expect("the router answers, never hangs")
                {
                    Response::Error { reason, .. } => assert_eq!(
                        reason,
                        RejectReason::ShardUnavailable,
                        "killed shard answers typed"
                    ),
                    // svq-lint: allow(panic)
                    other => panic!("expected shard_unavailable, got {other:?}"),
                }
                let (request, kind, video) = (
                    Request::Query {
                        sql: OFFLINE_SQL.into(),
                        video: VideoScope::One(live_video),
                    },
                    0,
                    live_video,
                );
                let response = client.request(&request).expect("survivor answers");
                verify_response(response, kind, video, shards, &expected);
            }
        }

        router.shutdown();
        let report = router.wait();
        assert_eq!(
            report.malformed, 0,
            "the load generator speaks the protocol"
        );
        assert!(report.drained_in_deadline, "the router drain was clean");
        assert_eq!(report.forced_closes, 0, "no connection was force-closed");
        for shard in shard_handles {
            shard.shutdown();
            shard.wait();
        }
    }

    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\n{VIDEOS} videos x {frames} frames, shard counts {shard_counts:?}; \
         every one of {outcomes_compared} routed outcomes byte-identical \
         (canonical form) to in-process execution — including every \
         cross-catalog top-k vs the combined single-process catalog; \
         killed shards answered typed shard_unavailable\n"
    ));
    ctx.emit("cluster-throughput", &rendered);
    let json = format!(
        "{{\"experiment\": \"cluster-throughput\", \"videos\": {VIDEOS}, \
         \"frames\": {frames}, \"scale\": {}, \"seed\": {}, \
         \"smoke\": {smoke}, \"shard_counts\": {shard_counts:?}, \
         \"outcomes_compared\": {outcomes_compared}, \
         \"requests\": {total_requests}, \"clean_drain\": true, \
         \"killed_shard_typed\": true, \
         \"sweep\": [\n  {}\n]}}\n",
        ctx.scale,
        ctx.seed,
        series.join(",\n  ")
    );
    if std::fs::create_dir_all(&ctx.out_dir).is_ok() {
        let _ = std::fs::write(ctx.out_dir.join("cluster-throughput.json"), json);
    }
}
