//! Plain-text table rendering for the experiment reports.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "f1"]);
        t.row(vec!["q1".into(), "0.85".into()]);
        t.row(vec!["longer-name".into(), "0.9".into()]);
        let s = t.render();
        assert!(s.contains("name         f1"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new(&["a"]).row(vec!["x".into(), "y".into()]);
    }
}
