//! # svq-bench
//!
//! The experiment harness: one module per table/figure of the paper's §5,
//! each regenerating the corresponding rows/series from the synthetic
//! workloads. Run them through the `repro` binary:
//!
//! ```text
//! cargo run -p svq-bench --release --bin repro -- fig2
//! cargo run -p svq-bench --release --bin repro -- all --scale 0.3
//! ```
//!
//! Absolute numbers are not expected to match the paper (our substrate is a
//! calibrated simulator, not the authors' GPU testbed); the *shape* — who
//! wins, by what factor, where crossovers fall — is the reproduction target
//! recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;

pub use report::Table;
