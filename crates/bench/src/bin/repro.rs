//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--scale S] [--seed N] [--out DIR]
//! ```
//!
//! Experiments: fig2 fig3 table3 table4 table5 fig4 fig5 runtime table6
//! table7 table8 rvaq-accuracy ablation mux-throughput mux-ingress
//! ingest-spill.

use svq_bench::experiments::{ExpContext, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpContext::default();
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                ctx.scale = args[i].parse().expect("--scale takes a number");
            }
            "--seed" => {
                i += 1;
                ctx.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                ctx.out_dir = args[i].clone().into();
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        eprintln!("usage: repro <experiment|all> [--scale S] [--seed N] [--out DIR]");
        eprintln!(
            "experiments: {}",
            EXPERIMENTS
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    let run_all = targets.iter().any(|t| t == "all");
    for (name, run) in EXPERIMENTS {
        if run_all || targets.iter().any(|t| t == name) {
            let start = std::time::Instant::now();
            run(&ctx);
            eprintln!("[{name}] done in {:.1}s", start.elapsed().as_secs_f64());
        }
    }
}
