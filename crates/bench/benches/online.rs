//! Online-path throughput: clips per second through SVAQ and SVAQD
//! (excluding simulated model cost — the pure query-algorithm overhead the
//! paper reports as <2 % of latency).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use svq_core::online::{OnlineConfig, Svaq, Svaqd};
use svq_eval::workloads::youtube_query_set;
use svq_vision::models::ModelSuite;
use svq_vision::VideoStream;

fn bench_online(c: &mut Criterion) {
    let set = youtube_query_set(1, 0.1, 7);
    let video = &set.videos[0];
    let oracle = video.oracle(ModelSuite::accurate());
    let clips = video.truth.geometry.clip_count(video.truth.total_frames);

    let mut group = c.benchmark_group("online");
    group.throughput(Throughput::Elements(clips));
    group.bench_function("svaq_full_video", |b| {
        b.iter(|| {
            let mut stream = VideoStream::new(&oracle);
            Svaq::run(
                set.query.clone(),
                &mut stream,
                OnlineConfig::default(),
                1e-2,
                1e-2,
            )
        })
    });
    group.bench_function("svaqd_full_video", |b| {
        b.iter(|| {
            let mut stream = VideoStream::new(&oracle);
            Svaqd::run(
                set.query.clone(),
                &mut stream,
                OnlineConfig::default(),
                1e-4,
                1e-4,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
