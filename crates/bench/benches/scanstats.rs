//! Microbenchmarks of the statistical substrate: the Naus tail evaluation,
//! critical-value search (cold and memoised), kernel estimator updates and
//! the binomial quantile used by censored feeding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svq_scanstats::{
    critical_value, scan_tail_probability, CriticalValueTable, KernelEstimator, ScanConfig,
};

fn bench_scan_tail(c: &mut Criterion) {
    c.bench_function("naus_tail_w50", |b| {
        b.iter(|| scan_tail_probability(black_box(12), black_box(0.05), 50, 200.0))
    });
    c.bench_function("naus_tail_w250", |b| {
        b.iter(|| scan_tail_probability(black_box(30), black_box(0.05), 250, 200.0))
    });
}

fn bench_critical_value(c: &mut Criterion) {
    c.bench_function("critical_value_w50_cold", |b| {
        b.iter(|| critical_value(black_box(0.05), 50, 200.0, 0.05))
    });
    c.bench_function("critical_value_w50_cached", |b| {
        let mut table = CriticalValueTable::new(ScanConfig::new(50, 200.0, 0.05));
        table.critical_value(0.05);
        b.iter(|| table.critical_value(black_box(0.0500001)))
    });
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel_observe_clip_of_50", |b| {
        let mut est = KernelEstimator::new(20_000.0, 0.01);
        b.iter(|| est.observe_run(black_box(50), black_box(7)))
    });
    c.bench_function("binomial_quantile_w50", |b| {
        b.iter(|| svq_scanstats::binomial::quantile(black_box(0.99), 50, black_box(0.05)))
    });
}

criterion_group!(benches, bench_scan_tail, bench_critical_value, bench_kernel);
criterion_main!(benches);
