//! Offline-path benchmarks: ingestion, the Eq. 12 interval intersection,
//! and RVAQ versus the baselines on a movie catalog.

use criterion::{criterion_group, criterion_main, Criterion};
use svq_core::offline::{ingest, FaTopK, PqTraverse, Rvaq, RvaqOptions};
use svq_core::online::OnlineConfig;
use svq_eval::workloads::movies_workload;
use svq_storage::SequenceSet;
use svq_types::{ClipId, ClipInterval, Interval, PaperScoring};
use svq_vision::models::ModelSuite;

fn bench_offline(c: &mut Criterion) {
    let movies = movies_workload(0.1, 7);
    let case = &movies[0];
    let oracle = case.video.oracle(ModelSuite::accurate());

    c.bench_function("ingest_10min_movie", |b| {
        b.iter(|| ingest(&oracle, &PaperScoring, &OnlineConfig::default()))
    });

    let catalog = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
    c.bench_function("rvaq_top5", |b| {
        b.iter(|| Rvaq::run(&catalog, &case.query, &PaperScoring, RvaqOptions::new(5)))
    });
    c.bench_function("pq_traverse_top5", |b| {
        b.iter(|| PqTraverse::run(&catalog, &case.query, &PaperScoring, 5))
    });
    c.bench_function("fa_top5", |b| {
        b.iter(|| FaTopK::run(&catalog, &case.query, &PaperScoring, 5))
    });

    // Eq. 12 interval sweep on synthetic interval sets.
    let mk = |offset: u64, step: u64, len: u64, n: u64| {
        SequenceSet::new(
            (0..n)
                .map(|i| {
                    let s = offset + i * step;
                    Interval::new(ClipId::new(s), ClipId::new(s + len)) as ClipInterval
                })
                .collect(),
        )
    };
    let a = mk(0, 20, 8, 2_000);
    let b2 = mk(5, 17, 6, 2_000);
    c.bench_function("interval_sweep_2k_x_2k", |b| b.iter(|| a.intersect(&b2)));
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
