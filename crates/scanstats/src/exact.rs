//! Exact distribution of the discrete scan statistic for small windows.
//!
//! A sliding-window bitmask dynamic program: the state after trial `t` is
//! the outcome pattern of the last `w` trials (a `w`-bit mask). Any state
//! whose popcount reaches `k` transitions to an absorbing "hit" state. The
//! probability mass remaining outside the hit state after `N` trials is
//! `P(S_w(N) < k)`.
//!
//! Cost is `O(N · 2^w)`, so this is only practical for `w ≲ 18` — which is
//! exactly its purpose: a ground-truth oracle against which the test-suite
//! validates the Naus closed-form approximation (`crate::naus`) and the
//! Markov extension (`crate::markov`).

/// Exact `P(S_w(N) ≥ k)` for i.i.d. Bernoulli(p) trials.
///
/// # Panics
/// If `w > 20` (state space would exceed ~1M) or `w == 0` or `N < w`.
pub fn scan_tail_exact(k: u64, p: f64, w: u32, n: u64) -> f64 {
    scan_tail_exact_markov(k, p, p, w, n)
}

/// Exact `P(S_w(N) ≥ k)` for first-order Markov-dependent Bernoulli trials.
///
/// The chain starts from its stationary distribution; `p01` is the success
/// probability after a failure, `p11` after a success. With `p01 == p11`
/// this reduces to the i.i.d. case.
pub fn scan_tail_exact_markov(k: u64, p01: f64, p11: f64, w: u32, n: u64) -> f64 {
    assert!(w > 0 && w <= 20, "exact DP supports 1 <= w <= 20, got {w}");
    assert!(n >= w as u64, "need at least one full window (n >= w)");
    assert!((0.0..=1.0).contains(&p01) && (0.0..=1.0).contains(&p11));
    if k == 0 {
        return 1.0;
    }
    if k > w as u64 {
        return 0.0;
    }

    let states = 1usize << w;
    let mask = states - 1;
    // dist[s] = probability the last w trial outcomes equal bit pattern s
    // (bit 0 = most recent trial) and no window so far reached k successes.
    let mut dist = vec![0.0f64; states];
    let mut next = vec![0.0f64; states];
    let mut hit = 0.0f64;

    // Stationary success probability pi1 = p01 / (1 - p11 + p01).
    let denom = 1.0 - p11 + p01;
    let pi1 = if denom.abs() < 1e-15 {
        0.5
    } else {
        p01 / denom
    };

    // Seed the first w trials one at a time, tracking the partial window.
    // Pattern bit layout: bit i = outcome of the trial i steps back.
    dist[0] = 1.0 - pi1;
    dist[1] = pi1;
    let mut filled = 1u32;
    while filled < w {
        next.iter_mut().for_each(|x| *x = 0.0);
        for (s, &pr) in dist.iter().enumerate() {
            if pr <= 0.0 {
                continue;
            }
            let p_succ = if s & 1 == 1 { p11 } else { p01 };
            let grown0 = s << 1;
            let grown1 = (s << 1) | 1;
            next[grown0 & mask] += pr * (1.0 - p_succ);
            next[grown1 & mask] += pr * p_succ;
        }
        std::mem::swap(&mut dist, &mut next);
        filled += 1;
    }
    // First full window observed: absorb states already at k successes.
    for (s, mass) in dist.iter_mut().enumerate().take(states) {
        if (s as u32).count_ones() as u64 >= k && *mass > 0.0 {
            hit += *mass;
            *mass = 0.0;
        }
    }

    // Remaining trials slide the window by one each step.
    for _ in w as u64..n {
        next.iter_mut().for_each(|x| *x = 0.0);
        for (s, &pr) in dist.iter().enumerate() {
            if pr <= 0.0 {
                continue;
            }
            let p_succ = if s & 1 == 1 { p11 } else { p01 };
            for (bit, pp) in [(0usize, 1.0 - p_succ), (1, p_succ)] {
                if pp <= 0.0 {
                    continue;
                }
                let ns = ((s << 1) | bit) & mask;
                if (ns as u32).count_ones() as u64 >= k {
                    hit += pr * pp;
                } else {
                    next[ns] += pr * pp;
                }
            }
        }
        std::mem::swap(&mut dist, &mut next);
    }
    hit.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_equals_n_reduces_to_binomial_tail() {
        // With N = w there is exactly one window: P(S >= k) = P(Bin(w,p) >= k).
        let (w, p) = (8u32, 0.3);
        for k in 1..=8u64 {
            let exact = scan_tail_exact(k, p, w, w as u64);
            let bin_tail: f64 = (k..=w as u64)
                .map(|i| crate::binomial::pmf(i, w as u64, p))
                .sum();
            assert!(
                (exact - bin_tail).abs() < 1e-10,
                "k={k}: {exact} vs {bin_tail}"
            );
        }
    }

    #[test]
    fn k_one_is_any_success() {
        // P(S_w(N) >= 1) = 1 - (1-p)^N.
        let (w, p, n) = (5u32, 0.1, 40u64);
        let exact = scan_tail_exact(1, p, w, n);
        let expect = 1.0 - (1.0f64 - p).powi(n as i32);
        assert!((exact - expect).abs() < 1e-10);
    }

    #[test]
    fn k_equals_w_is_run_of_w_successes() {
        // Small enough to verify against brute force over all outcomes.
        let (w, p, n) = (3u32, 0.4, 6u64);
        let mut brute = 0.0;
        for outcome in 0u32..(1 << n) {
            let mut prob = 1.0;
            for t in 0..n {
                prob *= if outcome >> t & 1 == 1 { p } else { 1.0 - p };
            }
            let mut max_run_window = 0;
            for start in 0..=(n - w as u64) {
                let mut cnt = 0;
                for t in start..start + w as u64 {
                    cnt += (outcome >> t & 1) as u64;
                }
                max_run_window = max_run_window.max(cnt);
            }
            if max_run_window >= w as u64 {
                brute += prob;
            }
        }
        let exact = scan_tail_exact(w as u64, p, w, n);
        assert!((exact - brute).abs() < 1e-10, "{exact} vs {brute}");
    }

    #[test]
    fn brute_force_grid_agreement() {
        // Full brute force over all 2^N outcomes for a grid of (w, k).
        let n = 10u64;
        let p = 0.25;
        for w in [3u32, 4, 5] {
            for k in 1..=w as u64 {
                let mut brute = 0.0;
                for outcome in 0u32..(1 << n) {
                    let mut prob = 1.0;
                    for t in 0..n {
                        prob *= if outcome >> t & 1 == 1 { p } else { 1.0 - p };
                    }
                    let mut s = 0;
                    for start in 0..=(n - w as u64) {
                        let mut cnt = 0;
                        for t in start..start + w as u64 {
                            cnt += (outcome >> t & 1) as u64;
                        }
                        s = s.max(cnt);
                    }
                    if s >= k {
                        brute += prob;
                    }
                }
                let exact = scan_tail_exact(k, p, w, n);
                assert!(
                    (exact - brute).abs() < 1e-9,
                    "w={w} k={k}: {exact} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn markov_reduces_to_iid_when_probabilities_match() {
        let a = scan_tail_exact_markov(3, 0.2, 0.2, 6, 30);
        let b = scan_tail_exact(3, 0.2, 6, 30);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn positive_dependence_increases_burstiness() {
        // Sticky successes (p11 > p01) concentrate events, raising the
        // probability of a dense window at equal stationary rate.
        // Stationary rate: pi1 = p01/(1-p11+p01); pick pairs with pi1 = 0.2.
        let iid = scan_tail_exact_markov(4, 0.2, 0.2, 8, 64);
        // p11 = 0.6, want pi1 = 0.2 -> p01 = pi1(1-p11)/(1-pi1) = 0.1.
        let sticky = scan_tail_exact_markov(4, 0.1, 0.6, 8, 64);
        assert!(sticky > iid, "sticky={sticky} iid={iid}");
    }
}
