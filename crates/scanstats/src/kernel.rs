//! Dynamic background-probability estimation (SVAQD, §3.3).
//!
//! SVAQD replaces the a-priori background probability `p0` with a running
//! estimate `p̂(t)` computed from the event stream itself: an exponential
//! kernel smooths past events, and Diggle edge correction removes the bias
//! near the start of the stream (the paper's Eq. 6).
//!
//! With discrete occurrence units and kernel `K(Δ) = exp(−Δ/u)` the
//! edge-corrected estimator has a closed incremental form. Maintain two
//! exponentially decayed masses,
//!
//! ```text
//! E(t) = Σ_{event OUs n ≤ t}  exp(−(t − t_n)/u)      (event mass)
//! A(t) = Σ_{all OUs j ≤ t}    exp(−(t − t_j)/u)      (occurrence mass)
//! ```
//!
//! and estimate `p̂(t) = E(t) / A(t)`. `A(t)` is the geometric series
//! `(1 − e^{−t/u}) / (1 − e^{−1/u})`, so dividing by it is precisely the
//! paper's edge-correction factor `(1 − e^{−1/u}) / (1 − e^{−t/u})` applied
//! to the normalised kernel sum; advancing time by `Δt` multiplies both
//! masses by `e^{−Δt/u}`, which is the paper's update `p̂(t+Δt) =
//! e^{−Δt/u} p̂(t)` before re-normalisation. The estimator is unbiased for
//! a constant background and tracks sudden changes within `O(u)` OUs while
//! smoothing gradual drift — the behaviour Figure 2 relies on.

use serde::{Deserialize, Serialize};

/// Exponential-kernel background-probability estimator with edge correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelEstimator {
    /// Kernel bandwidth `u`, in occurrence units.
    bandwidth: f64,
    /// Per-OU decay factor `γ = exp(−1/u)`.
    decay: f64,
    /// Decayed event mass `E(t)`.
    event_mass: f64,
    /// Decayed occurrence mass `A(t)`.
    occurrence_mass: f64,
    /// Total OUs observed.
    observed: u64,
    /// Total events observed (the paper's `N*`).
    events: u64,
    /// Prior estimate returned before any OU is observed, blended in with
    /// pseudo-count weight [`Self::prior_strength`] so it fades quickly as
    /// evidence arrives.
    prior: f64,
    /// Pseudo-count weight of the prior, in occurrence units.
    prior_strength: f64,
    /// Remaining prior mass: the prior acts as `prior_strength` virtual
    /// occurrence units observed just before the stream began, decaying
    /// under the kernel exactly like real observations.
    prior_mass: f64,
    /// Floor/ceiling keeping downstream critical-value searches well-posed.
    clamp: (f64, f64),
}

impl KernelEstimator {
    /// Default clamp range for estimated probabilities.
    pub const DEFAULT_CLAMP: (f64, f64) = (1e-6, 0.9);

    /// Create an estimator with bandwidth `u` (occurrence units) and an
    /// initial prior `p0` (the paper's `p_obj_0` / `p_act_0`).
    pub fn new(bandwidth: f64, prior: f64) -> Self {
        assert!(bandwidth >= 1.0, "bandwidth must be at least one OU");
        assert!((0.0..=1.0).contains(&prior), "prior must lie in [0,1]");
        Self {
            bandwidth,
            decay: (-1.0 / bandwidth).exp(),
            event_mass: 0.0,
            occurrence_mass: 0.0,
            observed: 0,
            events: 0,
            prior,
            prior_strength: 100.0,
            prior_mass: 100.0,
            clamp: Self::DEFAULT_CLAMP,
        }
    }

    /// Override the prior pseudo-count (occurrence units of evidence at
    /// which the prior and the data weigh equally).
    pub fn with_prior_strength(mut self, strength: f64) -> Self {
        assert!(strength >= 0.0);
        self.prior_strength = strength;
        self.prior_mass = strength;
        self
    }

    /// Override the clamp range.
    pub fn with_clamp(mut self, floor: f64, ceil: f64) -> Self {
        assert!(0.0 < floor && floor < ceil && ceil <= 1.0);
        self.clamp = (floor, ceil);
        self
    }

    /// Observe one occurrence unit; `event` is whether the unit carried a
    /// positive prediction.
    pub fn observe(&mut self, event: bool) {
        self.event_mass = self.event_mass * self.decay + if event { 1.0 } else { 0.0 };
        self.occurrence_mass = self.occurrence_mass * self.decay + 1.0;
        self.prior_mass *= self.decay;
        self.observed += 1;
        self.events += event as u64;
    }

    /// Observe a run of occurrence units of which `events` were positive.
    /// Order within the run is immaterial at run lengths well under the
    /// bandwidth; SVAQD feeds one clip's worth of OUs at a time.
    pub fn observe_run(&mut self, units: u64, events: u64) {
        debug_assert!(events <= units);
        let mut remaining_events = events;
        for i in 0..units {
            // Spread events evenly across the run.
            let due = ((i + 1) * events) / units.max(1);
            let fire = due > events - remaining_events && remaining_events > 0;
            self.observe(fire);
            if fire {
                remaining_events -= 1;
            }
        }
    }

    /// The current edge-corrected estimate `p̂(t)`.
    ///
    /// The prior enters as a pseudo-count of [`prior_strength`] occurrence
    /// units: `p̂ = (E + n₀·p₀) / (A + n₀)`. A cold-started stream returns
    /// `p₀`; once a few hundred OUs are seen the data dominate, so a wildly
    /// wrong `p₀` (Figure 2's sweep spans five orders of magnitude) washes
    /// out within a handful of clips.
    ///
    /// [`prior_strength`]: Self::with_prior_strength
    pub fn estimate(&self) -> f64 {
        let blended = (self.event_mass + self.prior_mass * self.prior)
            / (self.occurrence_mass + self.prior_mass).max(1e-12);
        blended.clamp(self.clamp.0, self.clamp.1)
    }

    /// Maximum-likelihood estimate over the whole stream (`N*/N`), ignoring
    /// the kernel — exposed for diagnostics and tests.
    pub fn global_rate(&self) -> f64 {
        if self.observed == 0 {
            self.prior
        } else {
            self.events as f64 / self.observed as f64
        }
    }

    /// Total occurrence units observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Total events observed (the paper's `N*`).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Kernel bandwidth `u`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cold_start_returns_prior() {
        let est = KernelEstimator::new(100.0, 0.01);
        assert!((est.estimate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn converges_to_constant_background() {
        let mut est = KernelEstimator::new(500.0, 0.5); // bad prior on purpose
        let mut rng = StdRng::seed_from_u64(42);
        let p = 0.03;
        for _ in 0..20_000 {
            est.observe(rng.gen_bool(p));
        }
        let e = est.estimate();
        assert!((e - p).abs() < 0.01, "estimate {e} far from {p}");
        assert!((est.global_rate() - p).abs() < 0.01);
    }

    #[test]
    fn tracks_sudden_change_within_bandwidth() {
        let mut est = KernelEstimator::new(200.0, 0.01);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5_000 {
            est.observe(rng.gen_bool(0.01));
        }
        assert!(est.estimate() < 0.05);
        // Traffic spike: the background jumps to 0.3.
        for _ in 0..1_000 {
            est.observe(rng.gen_bool(0.3));
        }
        let e = est.estimate();
        assert!(e > 0.2, "estimator failed to adapt: {e}");
    }

    #[test]
    fn smooths_single_outlier_burst() {
        let mut est = KernelEstimator::new(1_000.0, 0.01);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            est.observe(rng.gen_bool(0.01));
        }
        let before = est.estimate();
        // A 20-OU burst of positives: far shorter than the bandwidth.
        for _ in 0..20 {
            est.observe(true);
        }
        let after = est.estimate();
        assert!(
            after - before < 0.05,
            "burst moved estimate too far: {before} -> {after}"
        );
    }

    #[test]
    fn estimate_stays_clamped() {
        let mut est = KernelEstimator::new(10.0, 0.5);
        for _ in 0..1_000 {
            est.observe(true);
        }
        assert!(est.estimate() <= KernelEstimator::DEFAULT_CLAMP.1);
        let mut est = KernelEstimator::new(10.0, 0.5);
        for _ in 0..1_000 {
            est.observe(false);
        }
        assert!(est.estimate() >= KernelEstimator::DEFAULT_CLAMP.0);
    }

    #[test]
    fn observe_run_matches_interleaved_observation_rate() {
        let mut a = KernelEstimator::new(50.0, 0.1);
        a.observe_run(500, 50);
        assert_eq!(a.observed(), 500);
        assert_eq!(a.events(), 50);
        // The long-run estimate reflects the 10% rate.
        assert!(
            (a.estimate() - 0.1).abs() < 0.05,
            "estimate {}",
            a.estimate()
        );
    }

    #[test]
    fn edge_correction_unbiased_early() {
        // Without edge correction the early estimate would be biased low by
        // the missing left tail of the kernel. Average the estimate after
        // only bandwidth/5 observations over many seeds: it should centre on
        // the true rate.
        let p = 0.2;
        let mut total = 0.0;
        let seeds = 200;
        for seed in 0..seeds {
            let mut est = KernelEstimator::new(100.0, p); // prior = truth so
                                                          // blending is neutral
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                est.observe(rng.gen_bool(p));
            }
            total += est.estimate();
        }
        let mean = total / seeds as f64;
        assert!(
            (mean - p).abs() < 0.03,
            "early-window mean {mean} biased vs {p}"
        );
    }
}
