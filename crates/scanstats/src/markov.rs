//! Scan statistics for Markov-dependent Bernoulli trials (footnote 7).
//!
//! The paper notes the whole analysis extends to trials with known
//! first-order Markov dependence via the finite Markov chain embedding
//! (FMCE) technique. We implement a tractable instance: an exact
//! single-window success-count distribution for the stationary chain
//! (dynamic program over position × count × last state), combined with a
//! declumping approximation for the sliding maximum. The test-suite
//! validates the result against the exact bitmask DP of [`crate::exact`].

/// First-order Markov model of a binary trial sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovTrials {
    /// `P(success | previous failure)`.
    pub p01: f64,
    /// `P(success | previous success)`.
    pub p11: f64,
}

impl MarkovTrials {
    /// Construct, validating both probabilities.
    pub fn new(p01: f64, p11: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01) && (0.0..=1.0).contains(&p11));
        Self { p01, p11 }
    }

    /// An i.i.d. sequence (no dependence).
    pub fn iid(p: f64) -> Self {
        Self::new(p, p)
    }

    /// The stationary success probability `π₁ = p01 / (1 − p11 + p01)`.
    pub fn stationary(&self) -> f64 {
        let denom = 1.0 - self.p11 + self.p01;
        if denom.abs() < 1e-15 {
            0.5
        } else {
            self.p01 / denom
        }
    }

    /// Exact distribution of the success count in one window of `w` trials
    /// started from the stationary distribution. Returns `dist[c] =
    /// P(count = c)` for `c = 0..=w`.
    pub fn window_count_distribution(&self, w: u32) -> Vec<f64> {
        let w = w as usize;
        let pi1 = self.stationary();
        // state[(count, last)] = probability mass; last in {0, 1}.
        let mut cur = vec![[0.0f64; 2]; w + 1];
        cur[0][0] = 1.0 - pi1;
        cur[1][1] = pi1;
        for _ in 1..w {
            let mut next = vec![[0.0f64; 2]; w + 1];
            for (count, row) in cur.iter().enumerate() {
                for (last, &mass) in row.iter().enumerate() {
                    if mass <= 0.0 {
                        continue;
                    }
                    let p_succ = if last == 1 { self.p11 } else { self.p01 };
                    next[count][0] += mass * (1.0 - p_succ);
                    if count < w {
                        next[count + 1][1] += mass * p_succ;
                    }
                }
            }
            cur = next;
        }
        cur.iter().map(|row| row[0] + row[1]).collect()
    }

    /// `P(count in one stationary window ≥ k)`.
    pub fn window_tail(&self, k: u64, w: u32) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > w as u64 {
            return 0.0;
        }
        self.window_count_distribution(w)
            .iter()
            .skip(k as usize)
            .sum()
    }
}

/// Approximate `P(S_w(N) ≥ k)` for Markov-dependent trials.
///
/// For `w ≤ 20` this uses the finite-Markov-chain-embedding route the
/// paper's footnote 7 sketches: `Q2 = P(S_w(2w) < k)` and
/// `Q3 = P(S_w(3w) < k)` are computed *exactly* for the dependent chain by
/// the bitmask DP of [`crate::exact`] (the DP's state space — the last `w`
/// trial outcomes plus an absorbing hit state — is precisely a finite Markov
/// chain embedding of the compound pattern `S_w ≥ k`), and the tail is
/// extrapolated with the same product form Naus uses for the i.i.d. case:
/// `1 − Q2·(Q3/Q2)^{L−2}`.
///
/// For `w > 20` the embedding is too large; a deterministic internal
/// Monte-Carlo estimate (seed derived from the parameters, 8192 runs,
/// standard error ≤ 0.006) is used instead.
pub fn scan_tail_markov(k: u64, trials: MarkovTrials, w: u32, n: u64) -> f64 {
    assert!(n >= w as u64);
    if k == 0 {
        return 1.0;
    }
    if k > w as u64 {
        return 0.0;
    }
    let q = trials.window_tail(k, w);
    if q <= 0.0 {
        return 0.0;
    }
    if q >= 1.0 {
        return 1.0;
    }
    if w <= 20 {
        let q2 = (1.0
            - crate::exact::scan_tail_exact_markov(k, trials.p01, trials.p11, w, 2 * w as u64))
        .clamp(0.0, 1.0);
        if q2 <= 0.0 {
            return 1.0;
        }
        let q3 = (1.0
            - crate::exact::scan_tail_exact_markov(k, trials.p01, trials.p11, w, 3 * w as u64))
        .clamp(0.0, q2);
        let l = (n as f64 / w as f64).max(2.0);
        let ratio = (q3 / q2).clamp(0.0, 1.0);
        return (1.0 - q2 * ratio.powf(l - 2.0)).clamp(0.0, 1.0);
    }
    montecarlo_markov(k, trials, w, n, 8192)
}

/// Seeded Monte-Carlo tail for a Markov chain; the seed is a deterministic
/// function of the parameters so results are reproducible.
fn montecarlo_markov(k: u64, trials: MarkovTrials, w: u32, n: u64, runs: u32) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let seed = k.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (w as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ n
        ^ (trials.p01.to_bits().rotate_left(17))
        ^ trials.p11.to_bits();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u32;
    let mut ring = vec![false; w as usize];
    for _ in 0..runs {
        ring.iter_mut().for_each(|b| *b = false);
        let mut count = 0u64;
        let mut last = rng.gen_bool(trials.stationary());
        let mut hit = false;
        for t in 0..n as usize {
            let slot = t % w as usize;
            if ring[slot] {
                count -= 1;
            }
            let p = if last { trials.p11 } else { trials.p01 };
            let s = rng.gen_bool(p);
            last = s;
            ring[slot] = s;
            count += s as u64;
            if t + 1 >= w as usize && count >= k {
                hit = true;
                break;
            }
        }
        hits += hit as u32;
    }
    hits as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::scan_tail_exact_markov;

    #[test]
    fn stationary_probability() {
        assert!((MarkovTrials::iid(0.3).stationary() - 0.3).abs() < 1e-12);
        // p01=0.1, p11=0.6: pi1 = 0.1/(1-0.6+0.1) = 0.2.
        assert!((MarkovTrials::new(0.1, 0.6).stationary() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn iid_window_distribution_is_binomial() {
        let dist = MarkovTrials::iid(0.3).window_count_distribution(10);
        for (c, &prob) in dist.iter().enumerate() {
            let expect = crate::binomial::pmf(c as u64, 10, 0.3);
            assert!((prob - expect).abs() < 1e-10, "count {c}");
        }
    }

    #[test]
    fn window_distribution_sums_to_one() {
        for trials in [
            MarkovTrials::iid(0.2),
            MarkovTrials::new(0.05, 0.7),
            MarkovTrials::new(0.5, 0.1),
        ] {
            let total: f64 = trials.window_count_distribution(15).iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn approximation_tracks_exact_for_small_tails() {
        // w <= 20 takes the FMCE route: exact Q2/Q3 with Naus extrapolation,
        // which should be very close to the exact sliding DP.
        for &(k, p01, p11, w, n) in &[
            (5u64, 0.05f64, 0.05f64, 10u32, 200u64),
            (6, 0.03, 0.4, 10, 300),
            (7, 0.05, 0.5, 12, 240),
            (4, 0.02, 0.3, 14, 700),
        ] {
            let trials = MarkovTrials::new(p01, p11);
            let exact = scan_tail_exact_markov(k, p01, p11, w, n);
            let approx = scan_tail_markov(k, trials, w, n);
            assert!(
                (approx - exact).abs() < 0.02,
                "k={k} p01={p01} p11={p11}: approx={approx} exact={exact}"
            );
        }
    }

    #[test]
    fn large_window_route_matches_independent_simulation() {
        // w > 20 falls back to an internal seeded Monte Carlo; compare
        // against an independent simulation with a different seed.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let trials = MarkovTrials::new(0.02, 0.3);
        let (k, w, n) = (6u64, 30u32, 600u64);
        let approx = scan_tail_markov(k, trials, w, n);
        // Simulate the Markov chain directly.
        let mut rng = StdRng::seed_from_u64(5);
        let runs = 4_000;
        let mut hits = 0;
        for _ in 0..runs {
            let mut ring = vec![false; w as usize];
            let mut count = 0u64;
            let mut last = rng.gen_bool(trials.stationary());
            let mut hit = false;
            for t in 0..n as usize {
                let slot = t % w as usize;
                if ring[slot] {
                    count -= 1;
                }
                let p = if last { trials.p11 } else { trials.p01 };
                let s = rng.gen_bool(p);
                last = s;
                ring[slot] = s;
                count += s as u64;
                if t + 1 >= w as usize && count >= k {
                    hit = true;
                    break;
                }
            }
            hits += hit as u32;
        }
        let mc = hits as f64 / runs as f64;
        assert!(
            (approx - mc).abs() < 0.1,
            "declumping approx={approx} vs mc={mc}"
        );
    }

    #[test]
    fn monotone_in_k() {
        let trials = MarkovTrials::new(0.05, 0.4);
        let mut prev = 1.0;
        for k in 1..=10 {
            let t = scan_tail_markov(k, trials, 10, 500);
            assert!(t <= prev + 1e-9);
            prev = t;
        }
    }

    #[test]
    fn degenerate_cases() {
        let trials = MarkovTrials::iid(0.2);
        assert_eq!(scan_tail_markov(0, trials, 5, 50), 1.0);
        assert_eq!(scan_tail_markov(6, trials, 5, 50), 0.0);
        assert_eq!(scan_tail_markov(2, MarkovTrials::iid(0.0), 5, 50), 0.0);
    }
}
