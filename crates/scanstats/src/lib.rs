//! # svq-scanstats
//!
//! Discrete scan statistics for event sequences — the statistical substrate
//! of SVAQ/SVAQD (§3.2-3.3 of the paper).
//!
//! The engine treats each positive model prediction (an object detected on a
//! frame, an action recognised on a shot) as a Bernoulli event with some
//! *background* success probability `p`. A clip "contains" a predicate when
//! the number of positive predictions inside it is *statistically
//! surprising* under the background: at least `k_crit`, the smallest `k`
//! with `P(S_w(N) ≥ k | p, w, L) ≤ α` (Eq. 5), where `S_w(N)` is the scan
//! statistic — the maximum number of successes in any window of `w`
//! consecutive trials among `N = L·w` trials.
//!
//! This crate provides:
//!
//! * [`binomial`] — numerically stable binomial pmf/cdf in log space;
//! * [`naus`] — the Naus (1982) `Q2`/`Q3` approximation of the scan-statistic
//!   tail (the paper's footnote 6) and the critical-value search of Eq. 5;
//! * [`exact`] — an exact sliding-window bitmask DP, usable for small `w`,
//!   which the test-suite uses as ground truth for the approximation;
//! * [`montecarlo`] — a seeded Monte-Carlo estimator of the same tail, the
//!   second line of defence in validation;
//! * [`kernel`] — the exponential-kernel background-probability estimator
//!   with edge correction (Eq. 6) that powers SVAQD's dynamic parameter
//!   updates;
//! * [`markov`] — the footnote-7 extension: scan statistics over
//!   Markov-dependent Bernoulli trials via a finite-Markov-chain-embedding
//!   style approximation.

#![forbid(unsafe_code)]

pub mod binomial;
pub mod exact;
pub mod kernel;
pub mod markov;
pub mod montecarlo;
pub mod naus;

pub use kernel::KernelEstimator;
pub use naus::{critical_value, scan_tail_probability, CriticalValueTable, ScanConfig};
