//! Naus (1982) approximation of the discrete scan-statistic tail and the
//! critical-value machinery of the paper's Eq. 5.
//!
//! For `N = L·w` i.i.d. Bernoulli(p) trials, let `S_w(N)` be the maximum
//! number of successes in any window of `w` consecutive trials. The paper's
//! footnote 6 uses the classic approximation
//!
//! ```text
//! P(S_w(N) ≥ k)  ≈  1 − Q2 · (Q3 / Q2)^(L−2)
//! ```
//!
//! where `Q2 = P(S_w(2w) < k)` and `Q3 = P(S_w(3w) < k)` are *exact* and
//! given by Naus' closed forms in terms of the binomial pmf `b(·; w, p)` and
//! cdf `F(·; w, p)`:
//!
//! ```text
//! Q2 = F(k−1)² − (k−1)·b(k)·F(k−2) + w·p·b(k)·F(k−3)
//! Q3 = F(k−1)³ − A1 + A2 + A3 − A4
//! A1 = 2·b(k)·F(k−1)·[(k−1)·F(k−2) − w·p·F(k−3)]
//! A2 = ½·b(k)²·[(k−1)(k−2)·F(k−3) − 2(k−2)·w·p·F(k−4) + w²p²·F(k−5)]
//! A3 = Σ_{r=1}^{k−1} b(2k−r)·F(r−1)²
//! A4 = Σ_{r=2}^{k−1} b(2k−r)·b(r)·(r−1)·F(r−2)
//! ```
//!
//! The test-suite validates this implementation against the exact bitmask
//! DP ([`crate::exact`]) and a Monte-Carlo estimator ([`crate::montecarlo`])
//! over a grid of `(w, p, L, k)`.

use crate::binomial::BinomialTable;
use serde::{Deserialize, Serialize};

/// Configuration of one scan-statistic test: window length `w` (the clip
/// length in occurrence units), horizon factor `L = N/w`, and significance
/// level `α`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanConfig {
    /// Window length in occurrence units (frames for objects, shots for
    /// actions): the paper's `w`.
    pub window: u32,
    /// Number of windows in the reference horizon: the paper's `L = N/w`.
    /// SVAQ/SVAQD use the stream length observed so far (at least 2).
    pub horizon_windows: f64,
    /// Significance level `α` of Eq. 5.
    pub alpha: f64,
}

impl ScanConfig {
    /// Construct a validated configuration.
    pub fn new(window: u32, horizon_windows: f64, alpha: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            horizon_windows >= 1.0,
            "horizon must cover at least one window"
        );
        assert!(
            (0.0..1.0).contains(&alpha) && alpha > 0.0,
            "alpha must be in (0,1)"
        );
        Self {
            window,
            horizon_windows,
            alpha,
        }
    }

    /// The default significance level used throughout the reproduction.
    pub const DEFAULT_ALPHA: f64 = 0.05;
}

/// `Q2 = P(S_w(2w) < k)`, exact (Naus 1982).
fn q2(k: u64, w: u64, p: f64, t: &BinomialTable) -> f64 {
    let k_i = k as i64;
    let f1 = t.cdf(k_i - 1);
    let bk = t.pmf(k_i);
    f1 * f1 - (k as f64 - 1.0) * bk * t.cdf(k_i - 2) + w as f64 * p * bk * t.cdf(k_i - 3)
}

/// `Q3 = P(S_w(3w) < k)`, exact (Naus 1982).
fn q3(k: u64, w: u64, p: f64, t: &BinomialTable) -> f64 {
    let k_i = k as i64;
    let kf = k as f64;
    let wp = w as f64 * p;
    let f1 = t.cdf(k_i - 1);
    let bk = t.pmf(k_i);

    let a1 = 2.0 * bk * f1 * ((kf - 1.0) * t.cdf(k_i - 2) - wp * t.cdf(k_i - 3));
    let a2 = 0.5
        * bk
        * bk
        * ((kf - 1.0) * (kf - 2.0) * t.cdf(k_i - 3) - 2.0 * (kf - 2.0) * wp * t.cdf(k_i - 4)
            + wp * wp * t.cdf(k_i - 5));
    let mut a3 = 0.0;
    for r in 1..k_i {
        let fr1 = t.cdf(r - 1);
        a3 += t.pmf(2 * k_i - r) * fr1 * fr1;
    }
    let mut a4 = 0.0;
    for r in 2..k_i {
        a4 += t.pmf(2 * k_i - r) * t.pmf(r) * (r as f64 - 1.0) * t.cdf(r - 2);
    }
    f1 * f1 * f1 - a1 + a2 + a3 - a4
}

/// `P(S_w(N) ≥ k | p, w, L)` via the Naus approximation.
///
/// Degenerate cases are handled exactly: `k = 0` always occurs (probability
/// 1); `k > w` can never occur (a window of `w` trials holds at most `w`
/// successes); `p ∈ {0, 1}` are deterministic.
pub fn scan_tail_probability(k: u64, p: f64, w: u32, horizon_windows: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
    assert!(w > 0, "window must be positive");
    let wu = w as u64;
    if k == 0 {
        return 1.0;
    }
    if k > wu {
        return 0.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }

    let table = BinomialTable::new(wu, p);
    let q2v = q2(k, wu, p, &table).clamp(0.0, 1.0);
    if q2v <= 0.0 {
        return 1.0;
    }
    let l = horizon_windows.max(2.0);
    let q3v = q3(k, wu, p, &table).clamp(0.0, q2v);
    let ratio = (q3v / q2v).clamp(0.0, 1.0);
    (1.0 - q2v * ratio.powf(l - 2.0)).clamp(0.0, 1.0)
}

/// The critical value of Eq. 5: the smallest `k` such that
/// `P(S_w(N) ≥ k | p, w, L) ≤ α`.
///
/// The tail probability is non-increasing in `k`, so a binary search over
/// `k ∈ [1, w]` finds the threshold in `O(log w)` tail evaluations. If even
/// `k = w` (every occurrence unit positive) is not significant at level `α`
/// — which happens when the background probability is high relative to the
/// window — the value is clamped to `w`, the strictest test the window
/// admits; SVAQD's dynamic background updates make this a transient state.
pub fn critical_value(p: f64, w: u32, horizon_windows: f64, alpha: f64) -> u32 {
    assert!(
        (0.0..1.0).contains(&alpha) && alpha > 0.0,
        "alpha must be in (0,1)"
    );
    let mut lo = 1u32; // candidate answers live in [lo, hi]
    let mut hi = w;
    if scan_tail_probability(w as u64, p, w, horizon_windows) > alpha {
        return w;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if scan_tail_probability(mid as u64, p, w, horizon_windows) <= alpha {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Quantisation step of the critical-value grid: 1% relative
/// (`ln 1.01 ≈ 0.00995`).
const GRID_LN_STEP: f64 = 0.00995;

/// Process-wide memo of resolved critical values, shared by every
/// [`CriticalValueTable`] instance. Keyed by `(w, L-bits, α-bits, cell)`;
/// each entry is evaluated at the cell's canonical probability, so the map
/// is a pure function of its key — safe to share across threads, queries,
/// and serve requests without affecting determinism.
type SharedKey = (u32, u64, u64, i32);
static SHARED_CRITICALS: std::sync::OnceLock<
    std::sync::Mutex<std::collections::HashMap<SharedKey, u32>>,
> = std::sync::OnceLock::new();

fn shared_criticals() -> &'static std::sync::Mutex<std::collections::HashMap<SharedKey, u32>> {
    SHARED_CRITICALS.get_or_init(Default::default)
}

/// Resolve one grid cell through the shared memo. The Naus evaluation runs
/// outside the lock: a racing thread may compute the same cell twice, but
/// both arrive at the identical value (pure function of the cell), so the
/// lock is only ever held for a map probe or insert.
fn shared_critical_value(window: u32, horizon: f64, alpha: f64, cell: i32) -> u32 {
    let key = (window, horizon.to_bits(), alpha.to_bits(), cell);
    {
        let memo = shared_criticals()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&k) = memo.get(&key) {
            return k;
        }
    }
    let k = critical_value(CriticalValueTable::cell_p(cell), window, horizon, alpha);
    shared_criticals()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(key, k);
    k
}

/// A memoised critical-value table.
///
/// SVAQD recomputes critical values every time a background probability is
/// refreshed (Algorithm 3, line 9). Probabilities are quantised onto a log
/// grid so repeated lookups for near-identical backgrounds hit the cache;
/// the quantisation (1% relative) is far below the estimator's own noise.
///
/// Each entry is evaluated at the *canonical probability of its grid cell*
/// (not the first probability that happened to land there), which makes a
/// resolved value a pure function of `(w, L, α, cell)`. That purity lets
/// every table in the process share one memo behind the scenes: a cold
/// Naus evaluation costs tens of microseconds and a drifting background
/// estimate crosses dozens of cells per stream, so without sharing, every
/// freshly-constructed SVAQD run (one per `stream` request on the serve
/// path) would re-pay the entire warm-up.
#[derive(Debug, Clone)]
pub struct CriticalValueTable {
    window: u32,
    horizon_windows: f64,
    alpha: f64,
    cache: std::collections::HashMap<i32, u32>,
}

impl CriticalValueTable {
    /// Create a table for a fixed `(w, L, α)`.
    pub fn new(config: ScanConfig) -> Self {
        Self {
            window: config.window,
            horizon_windows: config.horizon_windows,
            alpha: config.alpha,
            cache: std::collections::HashMap::new(),
        }
    }

    /// Quantisation key: index of `p` on a 1%-relative log grid.
    fn key(p: f64) -> i32 {
        (p.max(1e-12).ln() / GRID_LN_STEP).round() as i32
    }

    /// Canonical probability of a grid cell (its log-space centre).
    fn cell_p(cell: i32) -> f64 {
        (cell as f64 * GRID_LN_STEP).exp().min(1.0)
    }

    /// The critical value for background probability `p` (cached).
    pub fn critical_value(&mut self, p: f64) -> u32 {
        let cell = Self::key(p);
        if let Some(&k) = self.cache.get(&cell) {
            return k;
        }
        let k = shared_critical_value(self.window, self.horizon_windows, self.alpha, cell);
        self.cache.insert(cell, k);
        k
    }

    /// Number of distinct backgrounds resolved so far by this table.
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_cases() {
        assert_eq!(scan_tail_probability(0, 0.3, 10, 5.0), 1.0);
        assert_eq!(scan_tail_probability(11, 0.3, 10, 5.0), 0.0);
        assert_eq!(scan_tail_probability(3, 0.0, 10, 5.0), 0.0);
        assert_eq!(scan_tail_probability(3, 1.0, 10, 5.0), 1.0);
    }

    #[test]
    fn tail_is_monotone_decreasing_in_k() {
        for &(w, p, l) in &[(10u32, 0.1, 6.0), (50, 0.01, 20.0), (25, 0.3, 4.0)] {
            let mut prev = 1.0;
            for k in 1..=w as u64 {
                let t = scan_tail_probability(k, p, w, l);
                assert!(
                    t <= prev + 1e-9,
                    "tail not monotone at w={w} p={p} l={l} k={k}: {t} > {prev}"
                );
                prev = t;
            }
        }
    }

    #[test]
    fn tail_is_monotone_increasing_in_horizon() {
        for k in [3u64, 5] {
            let mut prev = 0.0;
            for l in [2.0, 4.0, 8.0, 16.0, 64.0] {
                let t = scan_tail_probability(k, 0.05, 20, l);
                assert!(t >= prev - 1e-12, "k={k} l={l}: {t} < {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn critical_value_is_threshold() {
        for &(w, p, l, alpha) in &[
            (50u32, 1e-4, 100.0, 0.05),
            (50, 0.01, 100.0, 0.05),
            (10, 0.05, 20.0, 0.01),
            (25, 0.2, 50.0, 0.05),
        ] {
            let k = critical_value(p, w, l, alpha);
            assert!(k >= 1 && k <= w);
            assert!(
                scan_tail_probability(k as u64, p, w, l) <= alpha,
                "k_crit not significant: w={w} p={p}"
            );
            if k > 1 && k < w {
                assert!(
                    scan_tail_probability(k as u64 - 1, p, w, l) > alpha,
                    "k_crit not minimal: w={w} p={p}"
                );
            }
        }
    }

    #[test]
    fn critical_value_grows_with_background() {
        let ks: Vec<u32> = [1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.2]
            .iter()
            .map(|&p| critical_value(p, 50, 100.0, 0.05))
            .collect();
        for pair in ks.windows(2) {
            assert!(pair[0] <= pair[1], "critical values not monotone: {ks:?}");
        }
        // A vanishing background needs only a couple of hits; a heavy one
        // needs many.
        assert!(ks[0] <= 4);
        assert!(*ks.last().unwrap() >= 15);
    }

    #[test]
    fn high_background_clamps_to_window() {
        // With p close to 1 even an all-positive window is unsurprising.
        assert_eq!(critical_value(0.999, 10, 1000.0, 1e-6), 10);
    }

    #[test]
    fn naus_matches_exact_dp_for_small_windows() {
        // The closed form against ground truth (no Monte-Carlo noise).
        for &(w, p) in &[(8u32, 0.05f64), (10, 0.1), (12, 0.2), (14, 0.02)] {
            for l in [2.0f64, 4.0, 10.0] {
                let n = (l * w as f64) as u64;
                for k in 1..=w as u64 {
                    let naus = scan_tail_probability(k, p, w, l);
                    let exact = crate::exact::scan_tail_exact(k, p, w, n);
                    assert!(
                        (naus - exact).abs() < 0.03,
                        "w={w} p={p} l={l} k={k}: naus={naus} exact={exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_returns_consistent_values() {
        let mut table = CriticalValueTable::new(ScanConfig::new(50, 100.0, 0.05));
        let a = table.critical_value(1e-4);
        let b = table.critical_value(1.0000001e-4); // same grid cell
        assert_eq!(a, b);
        assert_eq!(a, critical_value(1e-4, 50, 100.0, 0.05));
        assert_eq!(table.cached_entries(), 1);
        let _ = table.critical_value(0.3);
        assert_eq!(table.cached_entries(), 2);
    }

    #[test]
    fn tables_agree_regardless_of_lookup_order() {
        // Entries are evaluated at the canonical probability of their grid
        // cell, so two tables must resolve identical values no matter which
        // probabilities they saw first — the property that makes the
        // process-wide memo safe to share across concurrent queries.
        let config = ScanConfig::new(50, 200.0, 0.05);
        let probes = [1e-4, 2.3e-3, 0.017, 0.09, 0.31, 0.0099];
        let mut forward = CriticalValueTable::new(config);
        let mut backward = CriticalValueTable::new(config);
        let hits: Vec<u32> = probes.iter().map(|&p| forward.critical_value(p)).collect();
        let rev: Vec<u32> = probes
            .iter()
            .rev()
            .map(|&p| backward.critical_value(p))
            .collect();
        let rev: Vec<u32> = rev.into_iter().rev().collect();
        assert_eq!(hits, rev);
        // Nearby probabilities in the same 1%-relative cell share an entry.
        let mut jittered = CriticalValueTable::new(config);
        for (&p, &k) in probes.iter().zip(&hits) {
            assert_eq!(jittered.critical_value(p * 1.000001), k);
        }
    }
}
