//! Numerically stable binomial probabilities.
//!
//! The Naus approximation evaluates binomial pmf values `b(k; w, p)` and cdf
//! values `F(k; w, p)` for window lengths up to a few hundred and background
//! probabilities as small as `1e-6`. Computing `C(w,k) p^k q^{w-k}` directly
//! under- and over-flows; everything here works in log space via a Lanczos
//! log-gamma.

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
///
/// Coefficients are the classic g=7, n=9 set; absolute error is below
/// `1e-13` over the domain used here, far below the Monte-Carlo noise floor
/// the test-suite validates against.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)`; zero when `k == 0` or `k == n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial pmf `b(k; n, p) = C(n,k) p^k (1-p)^{n-k}`.
///
/// Handles the boundary probabilities exactly: `p = 0` puts all mass on
/// `k = 0`, `p = 1` on `k = n`.
pub fn pmf(k: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0,1], got {p}");
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Binomial cdf `F(k; n, p) = Σ_{i≤k} b(i; n, p)`.
///
/// `k` is signed so the Naus formulas can write `F(k-3)` without guarding:
/// negative arguments return `0`, arguments `≥ n` return `1`.
pub fn cdf(k: i64, n: u64, p: f64) -> f64 {
    if k < 0 {
        return 0.0;
    }
    let k = k as u64;
    if k >= n {
        return 1.0;
    }
    // Direct summation: n is a window length (tens to low hundreds) so the
    // loop is short, and summing ascending pmf terms is stable.
    let mut acc = 0.0;
    for i in 0..=k {
        acc += pmf(i, n, p);
    }
    acc.min(1.0)
}

/// The smallest `k` with `F(k; n, p) ≥ q` — the binomial quantile used by
/// the censored background estimators ("counts beyond the (1−α) noise
/// quantile are truncated to the quantile").
pub fn quantile(q: f64, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&q));
    let mut acc = 0.0;
    for k in 0..=n {
        acc += pmf(k, n, p);
        if acc >= q {
            return k;
        }
    }
    n
}

/// Precomputed pmf and cdf tables for a fixed `(n, p)` — the Naus formulas
/// reference `b(·)` and `F(·)` many times, so the critical-value search
/// builds one of these per window configuration.
#[derive(Debug, Clone)]
pub struct BinomialTable {
    pmf: Vec<f64>,
    cdf: Vec<f64>,
    n: u64,
}

impl BinomialTable {
    /// Tabulate `b(k; n, p)` and `F(k; n, p)` for `k = 0..=n`.
    pub fn new(n: u64, p: f64) -> Self {
        let mut pmf_v = Vec::with_capacity(n as usize + 1);
        let mut cdf_v = Vec::with_capacity(n as usize + 1);
        let mut acc = 0.0;
        for k in 0..=n {
            let b = pmf(k, n, p);
            acc = (acc + b).min(1.0);
            pmf_v.push(b);
            cdf_v.push(acc);
        }
        Self {
            pmf: pmf_v,
            cdf: cdf_v,
            n,
        }
    }

    /// `b(k; n, p)`; zero outside `0..=n` (signed for formula convenience).
    pub fn pmf(&self, k: i64) -> f64 {
        if k < 0 || k > self.n as i64 {
            0.0
        } else {
            self.pmf[k as usize]
        }
    }

    /// `F(k; n, p)`; zero below 0, one at and above `n`.
    pub fn cdf(&self, k: i64) -> f64 {
        if k < 0 {
            0.0
        } else if k >= self.n as i64 {
            1.0
        } else {
            self.cdf[k as usize]
        }
    }

    /// The window length `n`.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, f) in facts.iter().enumerate() {
            assert!(
                (ln_gamma(n as f64 + 1.0) - f.ln()).abs() < 1e-10,
                "ln_gamma({}) mismatch",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi).
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn choose_small_cases() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 5).exp() - 252.0).abs() < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (50, 0.01), (100, 0.5), (200, 1e-4)] {
            let total: f64 = (0..=n).map(|k| pmf(k, n, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_boundary_probabilities() {
        assert_eq!(pmf(0, 10, 0.0), 1.0);
        assert_eq!(pmf(1, 10, 0.0), 0.0);
        assert_eq!(pmf(10, 10, 1.0), 1.0);
        assert_eq!(pmf(9, 10, 1.0), 0.0);
        assert_eq!(pmf(11, 10, 0.5), 0.0);
    }

    #[test]
    fn pmf_matches_direct_computation() {
        // b(2; 4, 0.5) = 6/16.
        assert!((pmf(2, 4, 0.5) - 0.375).abs() < 1e-12);
        // b(1; 3, 0.2) = 3 * 0.2 * 0.64 = 0.384.
        assert!((pmf(1, 3, 0.2) - 0.384).abs() < 1e-12);
    }

    #[test]
    fn cdf_signed_boundaries() {
        assert_eq!(cdf(-1, 10, 0.3), 0.0);
        assert_eq!(cdf(10, 10, 0.3), 1.0);
        assert_eq!(cdf(99, 10, 0.3), 1.0);
        assert!((cdf(4, 10, 0.3) - (0..=4).map(|k| pmf(k, 10, 0.3)).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn table_agrees_with_scalar_functions() {
        let t = BinomialTable::new(30, 0.07);
        for k in -2i64..=32 {
            assert!(
                (t.pmf(k)
                    - if (0..=30).contains(&k) {
                        pmf(k as u64, 30, 0.07)
                    } else {
                        0.0
                    })
                .abs()
                    < 1e-12
            );
            assert!((t.cdf(k) - cdf(k, 30, 0.07)).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_is_cdf_inverse() {
        for &(n, p) in &[(5u64, 0.05f64), (50, 0.12), (10, 0.5)] {
            for q in [0.5, 0.95, 0.99] {
                let k = quantile(q, n, p);
                assert!(cdf(k as i64, n, p) >= q);
                if k > 0 {
                    assert!(cdf(k as i64 - 1, n, p) < q);
                }
            }
        }
        assert_eq!(quantile(0.99, 5, 0.0), 0);
        assert_eq!(quantile(0.5, 5, 1.0), 5);
    }

    #[test]
    fn tiny_p_does_not_underflow_to_nan() {
        let t = BinomialTable::new(250, 1e-6);
        assert!(t.pmf(3).is_finite());
        assert!(t.cdf(3) > 0.0);
        assert!(t.cdf(250) == 1.0);
    }
}
