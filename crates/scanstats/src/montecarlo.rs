//! Seeded Monte-Carlo estimation of the scan-statistic tail.
//!
//! Used by the test-suite as a second, approximation-free reference for
//! window lengths beyond the exact DP's reach, and exposed publicly so
//! downstream users can sanity-check critical values for their own
//! geometries.

/// Estimate `P(S_w(N) ≥ k)` for i.i.d. Bernoulli(p) trials by simulation.
///
/// `rng` supplies all randomness; runs are reproducible for a fixed seed.
/// The estimator's standard error is `sqrt(q(1-q)/runs)` for true tail `q`.
pub fn scan_tail_montecarlo(
    k: u64,
    p: f64,
    w: u32,
    n: u64,
    runs: u32,
    rng: &mut impl rand::Rng,
) -> f64 {
    assert!(w > 0 && n >= w as u64, "need n >= w >= 1");
    assert!((0.0..=1.0).contains(&p));
    if k == 0 {
        return 1.0;
    }
    if k > w as u64 {
        return 0.0;
    }
    let w = w as usize;
    let mut hits = 0u32;
    // Ring buffer of the last w outcomes; `count` is the window popcount.
    let mut ring = vec![false; w];
    for _ in 0..runs {
        ring.iter_mut().for_each(|b| *b = false);
        let mut count = 0u64;
        let mut hit = false;
        for t in 0..n as usize {
            let slot = t % w;
            if ring[slot] {
                count -= 1;
            }
            let success = rng.gen_bool(p);
            ring[slot] = success;
            if success {
                count += 1;
            }
            // Only a full window constitutes a scanning interval.
            if t + 1 >= w && count >= k {
                hit = true;
                break;
            }
        }
        hits += hit as u32;
    }
    hits as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three-sigma Monte-Carlo tolerance for `runs` samples.
    fn tol(q: f64, runs: u32) -> f64 {
        3.0 * (q * (1.0 - q) / runs as f64).sqrt() + 1e-3
    }

    #[test]
    fn matches_exact_dp_on_grid() {
        let mut rng = StdRng::seed_from_u64(7);
        let runs = 20_000;
        for &(k, p, w, n) in &[
            (2u64, 0.05f64, 10u32, 100u64),
            (3, 0.1, 10, 200),
            (4, 0.2, 12, 120),
            (5, 0.3, 8, 64),
        ] {
            let exact = crate::exact::scan_tail_exact(k, p, w, n);
            let mc = scan_tail_montecarlo(k, p, w, n, runs, &mut rng);
            assert!(
                (mc - exact).abs() <= tol(exact, runs),
                "k={k} p={p} w={w} n={n}: mc={mc} exact={exact}"
            );
        }
    }

    #[test]
    fn naus_approximation_agrees_with_simulation() {
        // The headline validation: the closed form used by the engine is
        // close to simulated truth across realistic parameters, including
        // clip-sized windows (w = 50) the exact DP cannot reach.
        let mut rng = StdRng::seed_from_u64(11);
        let runs = 20_000;
        for &(k, p, w, l) in &[
            (3u64, 0.01f64, 50u32, 20.0f64),
            (5, 0.02, 50, 40.0),
            (4, 0.05, 25, 30.0),
            (8, 0.1, 50, 10.0),
            (3, 0.005, 100, 10.0),
        ] {
            let n = (l * w as f64) as u64;
            let naus = crate::naus::scan_tail_probability(k, p, w, l);
            let mc = scan_tail_montecarlo(k, p, w, n, runs, &mut rng);
            // Naus is itself an approximation: allow MC noise plus a small
            // approximation budget.
            assert!(
                (mc - naus).abs() <= tol(naus.clamp(0.01, 0.99), runs) + 0.02,
                "k={k} p={p} w={w} l={l}: mc={mc} naus={naus}"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = scan_tail_montecarlo(3, 0.1, 10, 100, 5_000, &mut StdRng::seed_from_u64(3));
        let b = scan_tail_montecarlo(3, 0.1, 10, 100, 5_000, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(scan_tail_montecarlo(0, 0.5, 5, 20, 10, &mut rng), 1.0);
        assert_eq!(scan_tail_montecarlo(6, 0.5, 5, 20, 10, &mut rng), 0.0);
        assert_eq!(scan_tail_montecarlo(1, 0.0, 5, 20, 100, &mut rng), 0.0);
        assert_eq!(scan_tail_montecarlo(5, 1.0, 5, 20, 100, &mut rng), 1.0);
    }
}
