//! Fixture: the rule-abiding mirror of `bad_ws`'s lock crate — every
//! shape the concurrency passes must *not* flag. Consistent acquisition
//! order, a `try_lock` inversion (non-blocking attempts take no ordering
//! edge), a sleep after the guard is dropped, and a justified
//! suppression.

#![forbid(unsafe_code)]

use parking_lot::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    /// `a` before `b`, directly.
    pub fn both(&self) {
        let _a = self.a.lock();
        let _b = self.b.lock();
    }

    /// `a` before `b`, through a call — same order, no cycle.
    pub fn nested(&self) {
        let _a = self.a.lock();
        self.tail();
    }

    fn tail(&self) {
        let _b = self.b.lock();
    }

    /// Inverted order through `try_lock`: a non-blocking attempt cannot
    /// be the blocking half of a deadlock, so no edge and no cycle.
    pub fn opportunistic(&self) -> bool {
        let _b = self.b.lock();
        if let Some(mut a) = self.a.try_lock() {
            *a += 1;
            return true;
        }
        false
    }

    /// The guard dies with its block; the sleep runs lock-free.
    pub fn pace_outside(&self) {
        {
            let _a = self.a.lock();
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    /// A visible, deliberate exception is silent.
    pub fn warm(&self) {
        let _a = self.a.lock();
        // Holding `a` across this sleep is required by the warm-up
        // protocol and cannot deadlock: `a` is a leaf lock here.
        // svq-lint: allow(blocking-under-lock)
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
