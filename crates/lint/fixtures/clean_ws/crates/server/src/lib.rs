//! Fixture: the rule-abiding daemon mirror — operational logging goes to
//! stderr only, so the crate has zero findings.

#![forbid(unsafe_code)]

pub fn announce_bound_address(addr: &str) {
    eprintln!("serve: accepting connections on {addr}");
}
