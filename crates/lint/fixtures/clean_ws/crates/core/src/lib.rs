//! Fixture: the rule-abiding mirror of `bad_ws` — same shape of code,
//! zero findings expected.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Timing through an injected tick, never the wall clock.
pub fn clock_injected(now_nanos: u64, start_nanos: u64) -> u64 {
    now_nanos.saturating_sub(start_nanos)
}

/// Ordered containers iterate deterministically; a HashMap used for
/// lookup only is fine.
pub fn ordered_iteration(lookup: &HashMap<u64, f64>) -> Vec<u64> {
    let mut scores: BTreeMap<u64, f64> = BTreeMap::new();
    if let Some(s) = lookup.get(&1) {
        scores.insert(1, *s);
    }
    let mut out: Vec<u64> = scores.keys().copied().collect();
    let absorbed: BTreeSet<u64> = BTreeSet::new();
    for id in &absorbed {
        out.push(*id);
    }
    // Moving an ordered container stays ordered — no finding for the
    // renamed binding.
    let renamed = scores;
    out.extend(renamed.keys().copied());
    out
}

/// Errors handled or documented, never swallowed.
pub fn panic_free(input: Option<u32>) -> Result<u32, &'static str> {
    let a = input.ok_or("missing input")?;
    let b = input.expect("checked non-empty by ok_or above");
    debug_assert_eq!(a, b);
    Ok(a + b)
}

/// Tolerance comparison instead of float equality.
pub fn float_tolerant(x: f64) -> bool {
    (x - 1.5e3).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_behave() {
        assert_eq!(panic_free(Some(2)), Ok(4));
        assert!(float_tolerant(1500.0));
    }
}
