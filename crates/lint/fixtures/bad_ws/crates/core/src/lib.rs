//! Fixture: one seeded violation set per rule, in a determinism-bound
//! crate (`crates/core`). The self-tests assert exact counts, so every
//! violation here is intentional — add new ones only alongside the test.
//! (No `#![forbid(unsafe_code)]` on purpose: that's the forbid-unsafe
//! seed.)

use std::collections::{HashMap, HashSet};
use std::time::Instant; // determinism #1

pub fn clock_abuse() -> u64 {
    let start = Instant::now(); // determinism #2
    start.elapsed().as_nanos() as u64
}

pub fn hash_order_abuse() -> Vec<u64> {
    let mut scores: HashMap<u64, f64> = HashMap::new();
    scores.insert(1, 0.5);
    let mut out = Vec::new();
    for (k, _v) in scores.iter() {
        // determinism #3 (`.iter()`)
        out.push(*k);
    }
    let absorbed: HashSet<u64> = HashSet::new();
    for id in &absorbed {
        // determinism #4 (`for` over hash set)
        out.push(*id);
    }
    let renamed = scores; // the move carries hash order with it
    for (k, _v) in renamed.iter() {
        // determinism #5 (iterating a moved HashMap of another name)
        out.push(*k);
    }
    out
}

pub fn panic_abuse(input: Option<u32>) -> u32 {
    let a = input.unwrap(); // panic #1
    let b = input.expect(""); // panic #2
    if a != b {
        panic!("impossible"); // panic #3
    }
    a + b
}

pub fn float_abuse(x: f64) -> bool {
    if x == 0.0 {
        // float-eq #1
        return true;
    }
    x != 1.5e3 // float-eq #2
}

pub fn print_abuse(n: usize) {
    println!("libraries must not print: {n}"); // print #1
    eprintln!("nor to stderr"); // print #2
}

pub fn suppressed_is_silent(input: Option<u32>) -> u32 {
    // A visible, deliberate exception — not counted by any rule.
    input.unwrap() // svq-lint: allow(panic)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3); // exempt: inside #[cfg(test)]
        assert!(0.5 == 0.5); // exempt float comparison
        println!("tests may print");
    }
}
