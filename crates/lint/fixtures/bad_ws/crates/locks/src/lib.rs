//! Fixture: seeded concurrency violations for the workspace-global
//! passes. Exactly one `lock-cycle` (a cross-function ABBA — the reverse
//! acquisition is one call hop away from the forward one) and exactly two
//! `blocking-under-lock` findings (a sleep reached through a call, and a
//! direct sleep under a guard). The self-tests assert these counts.
//! (`#![forbid(unsafe_code)]` present on purpose: the forbid-unsafe seed
//! lives in `crates/core`.)

#![forbid(unsafe_code)]

use parking_lot::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    /// Forward order: `a` first, then `b` — one call hop away.
    pub fn forward(&self) {
        let a = self.a.lock();
        self.grab_b(*a);
    }

    fn grab_b(&self, x: u64) {
        let mut b = self.b.lock();
        *b += x;
    }

    /// Reverse order: `b` first, then `a`. Together with `forward` this
    /// closes the ABBA cycle — lock-cycle #1.
    pub fn backward(&self) {
        let b = self.b.lock();
        let mut a = self.a.lock();
        *a += *b;
    }

    /// The sleep is one call hop away — blocking-under-lock #1.
    pub fn paced(&self) {
        let _a = self.a.lock();
        pause();
    }

    /// Direct sleep under a guard — blocking-under-lock #2.
    pub fn throttled(&self) {
        let _b = self.b.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

fn pause() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
