//! Fixture: a stderr-only daemon crate (`crates/server`). Exactly one
//! seeded print violation — the `println!` steals the launcher's stdout —
//! while the `eprintln!` operational log is the sanctioned idiom and must
//! stay silent. (`#![forbid(unsafe_code)]` present on purpose: the
//! forbid-unsafe seed lives in `crates/core`.)

#![forbid(unsafe_code)]

pub fn announce_bound_address(addr: &str) {
    println!("listening on {addr}"); // print #3 (stdout in a daemon)
    eprintln!("serve: accepting connections on {addr}"); // allowed: stderr log
}
