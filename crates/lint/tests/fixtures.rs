//! Fixture self-tests: every rule fires on the seeded `bad_ws` fixture,
//! stays silent on the `clean_ws` mirror, and the real workspace checks
//! clean against the committed baseline.

use std::path::{Path, PathBuf};
use svq_lint::{lint_workspace, Baseline, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn count(findings: &[svq_lint::Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn every_rule_fires_on_the_seeded_fixture() {
    let findings = lint_workspace(&fixture("bad_ws")).expect("fixture walks");
    assert_eq!(count(&findings, Rule::Determinism), 5, "{findings:#?}");
    assert_eq!(count(&findings, Rule::PanicDiscipline), 3, "{findings:#?}");
    assert_eq!(count(&findings, Rule::FloatEq), 2, "{findings:#?}");
    // Two in the library fixture + one stdout theft in the stderr-only
    // daemon fixture (whose `eprintln!` must stay silent).
    assert_eq!(count(&findings, Rule::PrintDiscipline), 3, "{findings:#?}");
    assert!(
        findings.iter().any(|f| f.rule == Rule::PrintDiscipline
            && f.path.starts_with("crates/server")
            && f.message.contains("stderr-only")),
        "{findings:#?}"
    );
    assert!(
        !findings
            .iter()
            .any(|f| f.path.starts_with("crates/server") && f.message.starts_with("`eprintln")),
        "daemon stderr logging must not fire: {findings:#?}"
    );
    assert_eq!(count(&findings, Rule::ForbidUnsafe), 1, "{findings:#?}");
    // The concurrency passes: one ABBA cycle (the reverse acquisition one
    // call hop from the forward one), two blocking-under-lock seeds (a
    // sleep one call away, a direct sleep).
    assert_eq!(count(&findings, Rule::LockCycle), 1, "{findings:#?}");
    assert_eq!(
        count(&findings, Rule::BlockingUnderLock),
        2,
        "{findings:#?}"
    );
}

#[test]
fn lock_cycle_findings_carry_file_line_witnesses() {
    let findings = lint_workspace(&fixture("bad_ws")).expect("fixture walks");
    let cycle = findings
        .iter()
        .find(|f| f.rule == Rule::LockCycle)
        .expect("the ABBA seed fires");
    assert!(
        !cycle.witness.is_empty(),
        "a cycle without a witness path is unactionable: {cycle:#?}"
    );
    // Every witness step names a source site, and both locks of the ABBA
    // pair appear somewhere in the path.
    for step in &cycle.witness {
        assert!(
            step.contains("crates/locks/src/lib.rs:"),
            "witness step without a file:line site: {step}"
        );
    }
    let joined = cycle.witness.join("\n");
    assert!(
        joined.contains("Pair.a") && joined.contains("Pair.b"),
        "{joined}"
    );

    // The one-call-hop blocking finding names the leaf sleep through its
    // chain, not just the call site.
    let hop = findings
        .iter()
        .find(|f| f.rule == Rule::BlockingUnderLock && !f.witness.is_empty())
        .expect("the call-hop seed carries a chain witness");
    assert!(hop.witness.iter().any(|s| s.contains("sleep")), "{hop:#?}");
}

#[test]
fn seeded_fixture_fails_an_empty_baseline_check() {
    // This is what `svq-lint --check` exits non-zero on: findings with no
    // baseline budget.
    let findings = lint_workspace(&fixture("bad_ws")).expect("fixture walks");
    let result = Baseline::default().check(&findings);
    assert!(!result.is_clean());
    let failing_rules: std::collections::BTreeSet<Rule> =
        result.new_findings.iter().map(|f| f.rule).collect();
    for rule in Rule::ALL {
        assert!(failing_rules.contains(&rule), "{rule} did not fail --check");
    }
}

#[test]
fn seeded_fixture_passes_once_baselined() {
    let findings = lint_workspace(&fixture("bad_ws")).expect("fixture walks");
    let base = Baseline::from_findings(&findings);
    // Ratcheted: the same findings pass, one more would fail.
    assert!(base.check(&findings).is_clean());
}

#[test]
fn clean_fixture_has_zero_findings() {
    let findings = lint_workspace(&fixture("clean_ws")).expect("fixture walks");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn real_workspace_checks_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf();
    let findings = lint_workspace(&root).expect("workspace walks");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("lint-baseline.txt is committed at the workspace root");
    let base = Baseline::parse(&baseline_text).expect("baseline parses");
    let result = base.check(&findings);
    assert!(
        result.is_clean(),
        "new lint findings beyond baseline:\n{}",
        result
            .new_findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The determinism contract for crates/core is fully discharged — no
    // baselined debt there (the point of the Clock refactor).
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == Rule::Determinism && f.path.starts_with("crates/core")),
        "crates/core must carry zero determinism findings"
    );
}
