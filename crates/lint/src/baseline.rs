//! Ratchet baseline: existing findings are tracked, new ones fail.
//!
//! The baseline records finding *counts* per `(rule, file)` rather than
//! exact lines, so unrelated edits that shift line numbers do not churn
//! it. `--check` fails when any pair's current count exceeds its baseline
//! count (a new violation) or a pair appears that the baseline has never
//! seen; counts that *drop* only produce a staleness warning, inviting
//! `--update-baseline` to ratchet down.

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

/// Finding counts keyed by `(rule, workspace-relative path)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(Rule, PathBuf), usize>,
}

/// Outcome of comparing current findings against a baseline.
#[derive(Debug, Default)]
pub struct CheckResult {
    /// Findings beyond the baseline budget, grouped per `(rule, file)` —
    /// the *newest* `current - allowed` findings of each group.
    pub new_findings: Vec<Finding>,
    /// `(rule, file, allowed, current)` where current < allowed: the
    /// baseline is stale and can be ratcheted down.
    pub stale: Vec<(Rule, PathBuf, usize, usize)>,
}

impl CheckResult {
    pub fn is_clean(&self) -> bool {
        self.new_findings.is_empty()
    }
}

impl Baseline {
    /// Aggregate findings into baseline counts.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<(Rule, PathBuf), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule, f.path.clone())).or_default() += 1;
        }
        Self { counts }
    }

    /// Parse the committed `lint-baseline.txt` format: one
    /// `rule<TAB>path<TAB>count` per line, `#` comments allowed.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let entry = (|| {
                let rule = Rule::from_name(parts.next()?)?;
                let path = PathBuf::from(parts.next()?);
                let count: usize = parts.next()?.parse().ok()?;
                Some(((rule, path), count))
            })();
            match entry {
                Some((key, count)) => {
                    counts.insert(key, count);
                }
                None => {
                    return Err(format!(
                        "baseline line {}: expected `rule<TAB>path<TAB>count`, got {line:?}",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(Self { counts })
    }

    /// Compare `findings` against this baseline.
    pub fn check(&self, findings: &[Finding]) -> CheckResult {
        let mut grouped: BTreeMap<(Rule, PathBuf), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            grouped.entry((f.rule, f.path.clone())).or_default().push(f);
        }
        let mut result = CheckResult::default();
        for (key, group) in &grouped {
            let allowed = self.counts.get(key).copied().unwrap_or(0);
            if group.len() > allowed {
                result
                    .new_findings
                    .extend(group[allowed..].iter().map(|f| (*f).clone()));
            }
        }
        for (key, &allowed) in &self.counts {
            let current = grouped.get(key).map_or(0, Vec::len);
            if current < allowed {
                result.stale.push((key.0, key.1.clone(), allowed, current));
            }
        }
        result
    }
}

impl fmt::Display for Baseline {
    /// The committed file format. Deterministic: `BTreeMap` order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# svq-lint baseline: tracked findings per (rule, file).\n\
             # New findings beyond these counts fail `svq-lint --check`.\n\
             # Regenerate with `cargo run -p svq-lint -- --update-baseline`."
        )?;
        for ((rule, path), count) in &self.counts {
            writeln!(f, "{}\t{}\t{}", rule, path.display(), count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: PathBuf::from(path),
            line,
            message: String::new(),
            witness: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_the_text_format() {
        let findings = vec![
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 3),
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 9),
            finding(Rule::PanicDiscipline, "crates/b/src/x.rs", 1),
        ];
        let base = Baseline::from_findings(&findings);
        let parsed = Baseline::parse(&base.to_string()).expect("parses");
        assert_eq!(base, parsed);
    }

    #[test]
    fn new_findings_fail_matching_counts_pass() {
        let old = vec![finding(Rule::FloatEq, "f.rs", 3)];
        let base = Baseline::from_findings(&old);
        assert!(base.check(&old).is_clean());
        let more = vec![
            finding(Rule::FloatEq, "f.rs", 3),
            finding(Rule::FloatEq, "f.rs", 8),
        ];
        let res = base.check(&more);
        assert_eq!(res.new_findings.len(), 1);
        assert_eq!(res.new_findings[0].line, 8);
    }

    #[test]
    fn unseen_file_fails_even_with_other_budget() {
        let base = Baseline::from_findings(&[finding(Rule::FloatEq, "old.rs", 1)]);
        let res = base.check(&[finding(Rule::FloatEq, "new.rs", 1)]);
        assert_eq!(res.new_findings.len(), 1);
    }

    #[test]
    fn fixed_findings_surface_as_stale() {
        let base = Baseline::from_findings(&[
            finding(Rule::FloatEq, "f.rs", 3),
            finding(Rule::FloatEq, "f.rs", 4),
        ]);
        let res = base.check(&[finding(Rule::FloatEq, "f.rs", 3)]);
        assert!(res.is_clean());
        assert_eq!(
            res.stale,
            vec![(Rule::FloatEq, PathBuf::from("f.rs"), 2, 1)]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("float-eq\tf.rs\t2").is_ok());
        assert!(Baseline::parse("bogus-rule\tf.rs\t2").is_err());
        assert!(Baseline::parse("float-eq f.rs 2").is_err());
        assert!(Baseline::parse("# comment\n\n").is_ok());
    }
}
