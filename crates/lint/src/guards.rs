//! Guard-region tracking: walk one function body and emit the ordered
//! concurrency events — lock acquisitions, condvar waits, calls, and
//! blocking operations — each annotated with the set of guards live at
//! that point.
//!
//! Guard regions follow the same philosophy as `regions.rs`: brace-depth
//! scope tracking over the token stream. A `let g = m.lock();` opens a
//! region that closes at `drop(g)` or the end of the binding's block; a
//! statement-temporary `m.lock().len()` is held to the end of its
//! statement (conservatively to the end of the enclosing block when no
//! `;` terminates it, as in `for c in m.lock().iter() { … }` — which is
//! exactly the shape that must stay visible as held).

use crate::ir::{FileIr, FnIr};
use crate::scanner::{Token, TokenKind};
use std::collections::BTreeMap;

/// A guard live at some event.
#[derive(Debug, Clone)]
pub struct HeldGuard {
    /// Normalised lock identity (`exec:Session.state`).
    pub lock: String,
    /// Acquisition site lines: the original acquisition plus every
    /// condvar-wait re-acquisition inside the region (the runtime auditor
    /// re-stamps the held entry at the wait site, so both are holder
    /// sites).
    pub sites: Vec<u32>,
    /// `false` for `try_lock`-family acquisitions.
    pub blocking: bool,
}

/// A call expression awaiting resolution by the call graph.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Path segments for free/path calls (`[scenario, find]`); for method
    /// calls, just the method name.
    pub segments: Vec<String>,
    pub method: bool,
    /// Receiver chain (source order, e.g. `[self, core, sessions]`) for
    /// method calls.
    pub receiver: Vec<String>,
    /// Best-effort receiver type: the impl owner for `self.m()`, a local
    /// or parameter type hint for `session.m()`.
    pub receiver_type: Option<String>,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub enum EventKind {
    /// A direct lock acquisition at `line`.
    Acquire {
        lock: String,
        line: u32,
        blocking: bool,
    },
    /// A condvar wait re-acquiring the guard of `lock` at `line`; `held`
    /// excludes the waited guard itself (it is released while parked).
    Wait { lock: String, line: u32 },
    /// A call expression (resolved later against the workspace).
    Call(CallRef),
    /// A directly blocking operation (`sleep`, `join`, bounded-channel
    /// send/recv, file or socket I/O).
    Block { what: String, line: u32 },
}

/// One event with the guards live when it happens.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    pub held: Vec<HeldGuard>,
}

/// Methods that acquire a lock, blocking until granted.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];
/// Non-blocking acquisition attempts: order later acquisitions but take
/// no incoming edge (mirrors the runtime auditor's `try_acquired`).
const TRY_METHODS: [&str; 3] = ["try_lock", "try_read", "try_write"];
/// Condvar wait family: releases and re-acquires the waited guard.
const WAIT_METHODS: [&str; 4] = ["wait", "wait_for", "wait_while", "wait_timeout"];
/// Methods that always mean file/socket I/O regardless of arity.
const IO_METHODS: [&str; 14] = [
    "read_to_string",
    "read_to_end",
    "read_line",
    "read_exact",
    "write_all",
    "write_fmt",
    "flush",
    "sync_all",
    "sync_data",
    "accept",
    "connect",
    "set_len",
    "read_dir",
    "copy",
];
/// Guard-preserving adapters between an acquisition and its `let`
/// binding: `let g = m.lock().unwrap_or_else(|e| e.into_inner());` still
/// binds the guard to `g`.
const ADAPTERS: [&str; 5] = ["unwrap", "expect", "unwrap_or_else", "map_err", "map"];
/// Keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "else", "break", "ref",
];

struct Slot {
    name: Option<String>,
    lock: String,
    sites: Vec<u32>,
    blocking: bool,
    /// Brace depth the binding lives at: dropped when that depth closes.
    depth: usize,
    /// Statement temporary: additionally dropped at the next `;` at its
    /// depth.
    temp: bool,
}

/// Extract the event sequence of one function.
pub fn function_events(file: &FileIr, f: &FnIr, tokens: &[Token]) -> Vec<Event> {
    let mut events = Walker {
        t: tokens,
        file,
        locals: f.locals.clone(),
        owner: f.owner.clone(),
        krate: f.krate.clone(),
        depth: 0,
        slots: Vec::new(),
        pending_let: None,
        events: Vec::new(),
    }
    .run(f.body.0, f.body.1.min(tokens.len()));
    apply_escapes(file, &mut events);
    events
}

/// Apply `svq-lint: guard-escapes(callee)` pragmas: a guard acquired in a
/// closure's tail position escapes into the enclosing call, which holds
/// it across its own work — a region the brace-depth walker cannot see
/// (the call token precedes the acquisition, and the closure's `}` ends
/// the lexical region). The pragma names the callee; every call to it in
/// the same function gets the escaped guard added to its held set, so the
/// fixpoint pairs the acquisition site with everything the callee
/// reaches.
fn apply_escapes(file: &FileIr, events: &mut [Event]) {
    for (&line, callee) in &file.escapes {
        // Like `allow(..)`, the pragma covers its own line and the next.
        let Some(guard) = events.iter().find_map(|ev| match &ev.kind {
            EventKind::Acquire {
                lock,
                line: l,
                blocking,
            } if *l == line || *l == line + 1 => Some(HeldGuard {
                lock: lock.clone(),
                sites: vec![*l],
                blocking: *blocking,
            }),
            _ => None,
        }) else {
            continue;
        };
        for ev in events.iter_mut() {
            if let EventKind::Call(call) = &ev.kind {
                if call.segments.last().is_some_and(|s| s == callee)
                    && !ev.held.iter().any(|g| g.lock == guard.lock)
                {
                    ev.held.push(guard.clone());
                }
            }
        }
    }
}

struct PendingLet {
    name: String,
    /// Bound inside a following block (`if let Some(g) = m.try_lock() {`).
    conditional: bool,
}

struct Walker<'a> {
    t: &'a [Token],
    file: &'a FileIr,
    locals: BTreeMap<String, String>,
    owner: Option<String>,
    krate: String,
    depth: usize,
    slots: Vec<Slot>,
    pending_let: Option<PendingLet>,
    events: Vec<Event>,
}

impl<'a> Walker<'a> {
    fn held(&self) -> Vec<HeldGuard> {
        self.slots
            .iter()
            .map(|s| HeldGuard {
                lock: s.lock.clone(),
                sites: s.sites.clone(),
                blocking: s.blocking,
            })
            .collect()
    }

    fn run(mut self, start: usize, end: usize) -> Vec<Event> {
        let mut i = start.min(end);
        // Skip the opening `{` so depth 0 means "directly in the body".
        if self.t.get(i).is_some_and(|n| n.is_op("{")) {
            i += 1;
        }
        while i < end {
            let tok = &self.t[i];
            match tok.text.as_str() {
                "{" if tok.kind == TokenKind::Op => {
                    self.depth += 1;
                    i += 1;
                    continue;
                }
                "}" if tok.kind == TokenKind::Op => {
                    let d = self.depth;
                    self.slots.retain(|s| s.depth < d);
                    self.depth = d.saturating_sub(1);
                    i += 1;
                    continue;
                }
                ";" if tok.kind == TokenKind::Op => {
                    let d = self.depth;
                    self.slots.retain(|s| !(s.temp && s.depth == d));
                    self.pending_let = None;
                    i += 1;
                    continue;
                }
                _ => {}
            }
            if tok.is_ident("let") {
                i = self.parse_let(i);
                continue;
            }
            if tok.is_ident("drop")
                && self.t.get(i + 1).is_some_and(|n| n.is_op("("))
                && self
                    .t
                    .get(i + 2)
                    .is_some_and(|n| n.kind == TokenKind::Ident)
                && self.t.get(i + 3).is_some_and(|n| n.is_op(")"))
            {
                let name = &self.t[i + 2].text;
                if let Some(pos) = self
                    .slots
                    .iter()
                    .rposition(|s| s.name.as_deref() == Some(name))
                {
                    self.slots.remove(pos);
                    i += 4;
                    continue;
                }
            }
            // `.method(` dispatch.
            if tok.is_op(".")
                && self
                    .t
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Ident)
                && self.t.get(i + 2).is_some_and(|n| n.is_op("("))
            {
                i = self.parse_method(i);
                continue;
            }
            // Free or path call `ident(` (not a method, not a macro).
            if tok.kind == TokenKind::Ident
                && self.t.get(i + 1).is_some_and(|n| n.is_op("("))
                && !(i > 0 && (self.t[i - 1].is_op(".") || self.t[i - 1].is_op("!")))
                && !NON_CALL_KEYWORDS.contains(&tok.text.as_str())
            {
                i = self.parse_path_call(i);
                continue;
            }
            i += 1;
        }
        self.events
    }

    /// `let [mut] NAME [: Type] = …` / `[if|while] let Some(NAME) = …`.
    /// Registers the pending binding; the acquisition handler decides
    /// whether a guard binds to it. Returns the index to resume at.
    fn parse_let(&mut self, i: usize) -> usize {
        let conditional =
            i > 0 && (self.t[i - 1].is_ident("if") || self.t[i - 1].is_ident("while"));
        let mut j = i + 1;
        // `Some(NAME)` / `Ok(NAME)` patterns.
        if self
            .t
            .get(j)
            .is_some_and(|n| n.is_ident("Some") || n.is_ident("Ok"))
            && self.t.get(j + 1).is_some_and(|n| n.is_op("("))
        {
            j += 2;
            while self.t.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = self.t.get(j).filter(|n| n.kind == TokenKind::Ident) {
                self.pending_let = Some(PendingLet {
                    name: name.text.clone(),
                    conditional,
                });
            }
            return j + 1;
        }
        while self.t.get(j).is_some_and(|n| n.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = self.t.get(j).filter(|n| n.kind == TokenKind::Ident) else {
            return i + 1;
        };
        let name = name.text.clone();
        // Type ascription feeds the local type hints.
        if self.t.get(j + 1).is_some_and(|n| n.is_op(":")) {
            let mut k = j + 2;
            let mut last_ty = None;
            while k < self.t.len() && !self.t[k].is_op("=") && !self.t[k].is_op(";") {
                if self.t[k].kind == TokenKind::Ident && self.t[k].text != "mut" {
                    last_ty = Some(self.t[k].text.clone());
                }
                k += 1;
            }
            if let Some(ty) = last_ty {
                self.locals.insert(name.clone(), ty);
            }
            self.pending_let = Some(PendingLet { name, conditional });
            return k;
        }
        // Constructor inference: `let x = Type::new(...)` (or any
        // `Type::assoc(...)` with an uppercase head) types the local.
        // Smart-pointer heads are skipped — `Arc::new(...)` says nothing
        // about what is inside.
        const WRAPPERS: &[&str] = &[
            "Arc", "Rc", "Box", "Some", "Ok", "Mutex", "RwLock", "RefCell",
        ];
        if self.t.get(j + 1).is_some_and(|n| n.is_op("=")) {
            if let Some(head) = self.t.get(j + 2).filter(|n| {
                n.kind == TokenKind::Ident
                    && n.text.chars().next().is_some_and(char::is_uppercase)
                    && !WRAPPERS.contains(&n.text.as_str())
            }) {
                if self.t.get(j + 3).is_some_and(|n| n.is_op("::")) {
                    self.locals.insert(name.clone(), head.text.clone());
                }
            }
        }
        self.pending_let = Some(PendingLet { name, conditional });
        j + 1
    }

    /// Handle `.m(` at the `.` in position `i`.
    fn parse_method(&mut self, i: usize) -> usize {
        let name = self.t[i + 1].text.as_str().to_string();
        let line = self.t[i + 1].line;
        let open = i + 2;
        let no_args = self.t.get(open + 1).is_some_and(|n| n.is_op(")"));
        let chain = receiver_chain(self.t, i);

        if (LOCK_METHODS.contains(&name.as_str()) && no_args && !chain.is_empty())
            || (TRY_METHODS.contains(&name.as_str()) && no_args && !chain.is_empty())
        {
            let blocking = LOCK_METHODS.contains(&name.as_str());
            let lock = self.lock_identity(&chain);
            self.events.push(Event {
                kind: EventKind::Acquire {
                    lock: lock.clone(),
                    line,
                    blocking,
                },
                held: self.held(),
            });
            // Named binding or statement temporary?
            let after = open + 2;
            match self.binding_target(after) {
                Binding::Named(conditional) => {
                    let pl = self.pending_let.take();
                    self.slots.push(Slot {
                        name: pl.map(|p| p.name),
                        lock,
                        sites: vec![line],
                        blocking,
                        depth: self.depth + usize::from(conditional),
                        temp: false,
                    });
                }
                Binding::Temp => {
                    self.slots.push(Slot {
                        name: None,
                        lock,
                        sites: vec![line],
                        blocking,
                        depth: self.depth,
                        temp: true,
                    });
                }
            }
            return after;
        }

        if WAIT_METHODS.contains(&name.as_str()) && !no_args {
            // Waiting on a live guard? The argument is `[&][mut] NAME`.
            let mut k = open + 1;
            while self
                .t
                .get(k)
                .is_some_and(|n| n.is_op("&") || n.is_ident("mut"))
            {
                k += 1;
            }
            if let Some(arg) = self.t.get(k).filter(|n| n.kind == TokenKind::Ident) {
                if let Some(pos) = self
                    .slots
                    .iter()
                    .rposition(|s| s.name.as_deref() == Some(arg.text.as_str()))
                {
                    let lock = self.slots[pos].lock.clone();
                    let held: Vec<HeldGuard> = self
                        .slots
                        .iter()
                        .enumerate()
                        .filter(|(idx, _)| *idx != pos)
                        .map(|(_, s)| HeldGuard {
                            lock: s.lock.clone(),
                            sites: s.sites.clone(),
                            blocking: s.blocking,
                        })
                        .collect();
                    self.events.push(Event {
                        kind: EventKind::Wait { lock, line },
                        held,
                    });
                    // The wake-up re-stamps the holder site at the wait.
                    if !self.slots[pos].sites.contains(&line) {
                        self.slots[pos].sites.push(line);
                    }
                    return open + 1;
                }
            }
        }

        // Blocking operations.
        let tail = chain.last().map(String::as_str).unwrap_or("");
        let blocked = if name == "join" && no_args {
            Some("thread join".to_string())
        } else if (name == "recv" || name == "recv_timeout") && self.file.bounded.contains(tail) {
            Some(format!("recv on bounded channel `{tail}`"))
        } else if name == "send" && !no_args && self.file.bounded.contains(tail) {
            Some(format!("send on bounded channel `{tail}`"))
        } else if name == "sleep" {
            Some("sleep".to_string())
        } else if IO_METHODS.contains(&name.as_str())
            || ((name == "read" || name == "write") && !no_args)
        {
            Some(format!("file/socket I/O (`.{name}(..)`)"))
        } else {
            None
        };
        if let Some(what) = blocked {
            self.events.push(Event {
                kind: EventKind::Block { what, line },
                held: self.held(),
            });
            return open + 1;
        }

        // Plain method call.
        let receiver_type = if chain == ["self"] {
            self.owner.clone()
        } else if chain.len() == 1 {
            self.locals.get(&chain[0]).cloned()
        } else {
            None
        };
        self.events.push(Event {
            kind: EventKind::Call(CallRef {
                segments: vec![name],
                method: true,
                receiver: chain,
                receiver_type,
                line,
            }),
            held: self.held(),
        });
        open + 1
    }

    /// Handle `ident(` at `i` for a free or `a::b::f(` path call.
    fn parse_path_call(&mut self, i: usize) -> usize {
        let line = self.t[i].line;
        // Walk back over `seg::` prefixes.
        let mut segments = vec![self.t[i].text.clone()];
        let mut k = i;
        while k >= 2 && self.t[k - 1].is_op("::") && self.t[k - 2].kind == TokenKind::Ident {
            segments.insert(0, self.t[k - 2].text.clone());
            k -= 2;
        }
        let name = segments.last().cloned().unwrap_or_default();

        // Blocking path calls.
        let first = segments.first().map(String::as_str).unwrap_or("");
        let io_roots = [
            "File",
            "OpenOptions",
            "TcpStream",
            "TcpListener",
            "UnixStream",
            "UnixListener",
        ];
        let blocked = if name == "sleep" {
            Some("sleep".to_string())
        } else if segments.iter().any(|s| s == "fs") {
            Some(format!("file I/O (`fs::{name}`)"))
        } else if segments.len() > 1 && io_roots.contains(&first) {
            Some(format!("file/socket I/O (`{}`)", segments.join("::")))
        } else {
            None
        };
        if let Some(what) = blocked {
            self.events.push(Event {
                kind: EventKind::Block { what, line },
                held: self.held(),
            });
            return i + 2;
        }

        // Tuple-struct / enum constructors, not calls.
        if segments.len() == 1 && name.chars().next().is_some_and(char::is_uppercase) {
            return i + 1;
        }

        self.events.push(Event {
            kind: EventKind::Call(CallRef {
                segments,
                method: false,
                receiver: Vec::new(),
                receiver_type: None,
                line,
            }),
            held: self.held(),
        });
        i + 2
    }

    /// Decide whether the acquisition whose call closes just before
    /// `after` binds to the pending `let` (possibly through adapters and
    /// closing delimiters) or is a statement temporary.
    fn binding_target(&mut self, mut after: usize) -> Binding {
        if self.pending_let.is_none() {
            return Binding::Temp;
        }
        let conditional = self.pending_let.as_ref().is_some_and(|p| p.conditional);
        let mut k = after;
        loop {
            match self.t.get(k) {
                Some(n) if n.is_op(")") || n.is_op("]") || n.is_op("?") => k += 1,
                Some(n)
                    if n.is_op(".")
                        && self
                            .t
                            .get(k + 1)
                            .is_some_and(|m| ADAPTERS.contains(&m.text.as_str()))
                        && self.t.get(k + 2).is_some_and(|m| m.is_op("(")) =>
                {
                    match skip_parens_from(self.t, k + 2) {
                        Some(close) => k = close + 1,
                        None => return Binding::Temp,
                    }
                }
                Some(n) if n.is_op(";") => {
                    after = k;
                    let _ = after;
                    return Binding::Named(false);
                }
                Some(n) if n.is_op("{") && conditional => return Binding::Named(true),
                _ => return Binding::Temp,
            }
        }
    }

    /// Normalised lock identity from a receiver chain: strip `self`
    /// (substituting the impl owner), substitute known local types, and
    /// keep the last two segments, prefixed with the crate so unrelated
    /// same-named fields never merge across crates.
    fn lock_identity(&self, chain: &[String]) -> String {
        let mut segs: Vec<String> = Vec::new();
        let mut rest = chain;
        if let Some(firstseg) = chain.first() {
            if firstseg == "self" {
                if let Some(o) = &self.owner {
                    segs.push(o.clone());
                }
                rest = &chain[1..];
            } else if let Some(ty) = self.locals.get(firstseg) {
                segs.push(ty.clone());
                rest = &chain[1..];
            }
        }
        segs.extend(rest.iter().cloned());
        let tail = if segs.len() > 2 {
            segs[segs.len() - 2..].join(".")
        } else {
            segs.join(".")
        };
        format!("{}:{}", self.krate, tail)
    }
}

enum Binding {
    /// Bind to the pending let; `true` = inside the conditional block.
    Named(bool),
    Temp,
}

/// Walk backwards from the `.` at `dot` and collect the receiver chain in
/// source order: `self.core.sessions.lock()` → `[self, core, sessions]`.
/// Call results in the chain keep their callee name (`stdout().lock()` →
/// `[stdout]`).
fn receiver_chain(t: &[Token], dot: usize) -> Vec<String> {
    let mut rev = Vec::new();
    let mut k = dot as isize - 1;
    loop {
        if k < 0 {
            break;
        }
        let tok = &t[k as usize];
        if tok.is_op(")") || tok.is_op("]") {
            // Skip back over the balanced group to the ident before it.
            let open = if tok.is_op(")") { "(" } else { "[" };
            let close = tok.text.clone();
            let mut depth = 0i32;
            while k >= 0 {
                let u = &t[k as usize];
                if u.is_op(&close) {
                    depth += 1;
                } else if u.is_op(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            k -= 1;
            if k >= 0 && t[k as usize].kind == TokenKind::Ident {
                rev.push(t[k as usize].text.clone());
                k -= 1;
            } else {
                break;
            }
        } else if tok.kind == TokenKind::Ident {
            rev.push(tok.text.clone());
            k -= 1;
        } else if tok.is_op("?") {
            k -= 1;
            continue;
        } else {
            break;
        }
        if k >= 0 && t[k as usize].is_op(".") {
            k -= 1;
        } else {
            break;
        }
    }
    rev.reverse();
    rev
}

fn skip_parens_from(t: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = open;
    while k < t.len() {
        if t[k].is_op("(") {
            depth += 1;
        } else if t[k].is_op(")") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{self, SourceUnit};
    use crate::rules::FileContext;
    use crate::scanner;

    fn events_of(src: &str) -> Vec<Event> {
        let units = vec![SourceUnit {
            ctx: FileContext::from_rel_path(std::path::Path::new("crates/exec/src/mux.rs")),
            scanned: scanner::scan(src),
        }];
        let ws = ir::build(&units);
        let f = ws.fns.first().expect("one fn");
        function_events(&ws.files[f.file], f, &units[f.file].scanned.tokens)
    }

    #[test]
    fn let_bound_guard_is_live_until_scope_end() {
        let src = r#"
            impl Mux {
                fn f(&self) {
                    let g = self.state.lock();
                    std::thread::sleep(d);
                }
            }
        "#;
        let ev = events_of(src);
        let block = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Block { .. }))
            .expect("sleep event");
        assert_eq!(block.held.len(), 1);
        assert_eq!(block.held[0].lock, "exec:Mux.state");
    }

    #[test]
    fn guard_escapes_pragma_widens_the_enclosing_call() {
        let src = r#"
            impl Backend {
                fn f(&self) {
                    sweep_all(|id| {
                        // svq-lint: guard-escapes(sweep_all)
                        self.gates.get(&id).map(|g| g.lock())
                    });
                }
            }
        "#;
        let ev = events_of(src);
        let call = ev
            .iter()
            .find(|e| {
                matches!(&e.kind, EventKind::Call(c) if c.segments.last().is_some_and(|s| s == "sweep_all"))
            })
            .expect("sweep_all call event");
        assert_eq!(call.held.len(), 1, "{call:?}");
        assert_eq!(call.held[0].lock, "exec:g");
    }

    #[test]
    fn drop_closes_the_region() {
        let src = r#"
            fn f(m: &Mutex<u64>) {
                let g = m.lock();
                drop(g);
                std::thread::sleep(d);
            }
        "#;
        let ev = events_of(src);
        let block = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Block { .. }))
            .expect("sleep event");
        assert!(block.held.is_empty(), "{block:?}");
    }

    #[test]
    fn inner_block_guard_dies_with_its_block() {
        let src = r#"
            fn f(m: &Mutex<u64>) {
                let v = { let g = m.lock(); 1 };
                std::thread::sleep(d);
            }
        "#;
        let ev = events_of(src);
        let block = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Block { .. }))
            .expect("sleep event");
        assert!(block.held.is_empty(), "{block:?}");
    }

    #[test]
    fn try_lock_is_not_blocking_and_binds_conditionally() {
        let src = r#"
            impl P {
                fn f(&self) {
                    if let Some(g) = self.a.try_lock() {
                        std::thread::sleep(d);
                    }
                }
            }
        "#;
        let ev = events_of(src);
        let acq = ev
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Acquire { blocking, .. } => Some(*blocking),
                _ => None,
            })
            .expect("acquire event");
        assert!(!acq, "try_lock is non-blocking");
        let block = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Block { .. }))
            .expect("sleep event");
        assert_eq!(block.held.len(), 1, "guard live inside the if-let block");
    }

    #[test]
    fn condvar_wait_releases_its_own_guard_and_restamps_the_site() {
        let src = r#"
            impl S {
                fn f(&self) {
                    let mut state = self.state.lock();
                    self.done.wait(&mut state);
                    let g2 = self.other.lock();
                }
            }
        "#;
        let ev = events_of(src);
        let wait = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Wait { .. }))
            .expect("wait event");
        assert!(wait.held.is_empty(), "own guard excluded: {wait:?}");
        // The later acquisition sees the guard with both sites.
        let acq = ev
            .iter()
            .rfind(|e| matches!(e.kind, EventKind::Acquire { .. }))
            .expect("second acquire");
        assert_eq!(acq.held.len(), 1);
        assert_eq!(acq.held[0].sites.len(), 2, "{acq:?}");
    }

    #[test]
    fn guard_through_adapter_chain_still_binds() {
        let src = r#"
            fn f(m: &StdMutex<u64>) {
                let g = m.lock().unwrap_or_else(|e| e.into_inner());
                std::thread::sleep(d);
            }
        "#;
        let ev = events_of(src);
        let block = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Block { .. }))
            .expect("sleep event");
        assert_eq!(block.held.len(), 1, "{block:?}");
    }

    #[test]
    fn statement_temporary_dies_at_the_semicolon() {
        let src = r#"
            fn f(m: &Mutex<Vec<u64>>) {
                let n = m.lock().len();
                std::thread::sleep(d);
            }
        "#;
        let ev = events_of(src);
        let block = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Block { .. }))
            .expect("sleep event");
        assert!(block.held.is_empty(), "{block:?}");
    }

    #[test]
    fn for_over_temporary_guard_is_held_through_the_body() {
        let src = r#"
            impl S {
                fn f(&self) {
                    for c in self.conns.lock().iter() {
                        c.sock.write_all(b"x");
                    }
                }
            }
        "#;
        let ev = events_of(src);
        let block = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Block { .. }))
            .expect("write_all event");
        assert_eq!(block.held.len(), 1, "{block:?}");
    }

    #[test]
    fn bounded_send_blocks_unbounded_does_not() {
        let src = r#"
            fn f() {
                let (tx, rx) = bounded(4);
                let (utx, urx) = unbounded();
                let g = m.lock();
                tx.send(1);
                utx.send(2);
                rx.recv();
            }
        "#;
        let ev = events_of(src);
        let blocks: Vec<&str> = ev
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Block { what, .. } => Some(what.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(blocks.len(), 2, "{blocks:?}");
        assert!(blocks[0].contains("send on bounded"));
        assert!(blocks[1].contains("recv on bounded"));
    }
}
