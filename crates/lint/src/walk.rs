//! Workspace file walker.
//!
//! Collects every `.rs` file under `crates/` and `tests/` of the
//! workspace root, skipping `target/` build output and the linter's own
//! `fixtures/` (deliberately violating sources used by the self-tests).

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", ".git"];

/// Workspace-relative paths of every lintable `.rs` file, sorted for
/// deterministic output.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut files)?;
        }
    }
    for f in &mut files {
        if let Ok(rel) = f.strip_prefix(root) {
            *f = rel.to_path_buf();
        }
    }
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The root source file of each crate under `<root>/crates/` (lib.rs,
/// falling back to main.rs), as workspace-relative paths. These are the
/// files `forbid-unsafe` inspects.
pub fn crate_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(roots);
    }
    for entry in std::fs::read_dir(&crates)? {
        let dir = entry?.path();
        if !dir.is_dir() {
            continue;
        }
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let path = dir.join(candidate);
            if path.is_file() {
                if let Ok(rel) = path.strip_prefix(root) {
                    roots.push(rel.to_path_buf());
                }
                break;
            }
        }
    }
    roots.sort();
    Ok(roots)
}
