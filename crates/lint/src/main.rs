//! `svq-lint` CLI.
//!
//! ```text
//! svq-lint                     report every finding (exit 0)
//! svq-lint --check             fail on findings beyond the baseline
//! svq-lint --update-baseline   rewrite lint-baseline.txt from current state
//!     --root <dir>             workspace root (default: discovered upward)
//!     --baseline <file>        baseline path (default: <root>/lint-baseline.txt)
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use svq_lint::{find_workspace_root, lint_workspace, Baseline};

struct Args {
    check: bool,
    update: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        update: false,
        root: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--update-baseline" => args.update = true,
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?)),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?))
            }
            "--help" | "-h" => {
                println!(
                    "svq-lint: workspace invariant linter\n\
                     \n\
                     USAGE: svq-lint [--check | --update-baseline] [--root <dir>] [--baseline <file>]\n\
                     \n\
                     Rules: determinism, panic, float-eq, print, forbid-unsafe\n\
                     Suppress inline with `// svq-lint: allow(<rule>)`."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.check && args.update {
        return Err("--check and --update-baseline are mutually exclusive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("svq-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match args.root {
        Some(r) => r,
        None => find_workspace_root(&cwd).ok_or("no workspace root found above cwd")?,
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.txt"));

    let findings = lint_workspace(&root).map_err(|e| e.to_string())?;

    if args.update {
        let base = Baseline::from_findings(&findings);
        std::fs::write(&baseline_path, base.to_string()).map_err(|e| e.to_string())?;
        println!(
            "svq-lint: wrote {} ({} tracked findings)",
            baseline_path.display(),
            findings.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if args.check {
        let base = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => return Err(e.to_string()),
        };
        let result = base.check(&findings);
        for (rule, path, allowed, current) in &result.stale {
            println!(
                "svq-lint: stale baseline: [{rule}] {} allows {allowed}, now {current} — \
                 run --update-baseline to ratchet down",
                path.display()
            );
        }
        if result.is_clean() {
            println!(
                "svq-lint: clean ({} findings, all within baseline)",
                findings.len()
            );
            return Ok(ExitCode::SUCCESS);
        }
        for f in &result.new_findings {
            println!("{f}");
        }
        println!(
            "svq-lint: {} new finding(s) beyond baseline — fix them or, if \
             deliberate, suppress inline / update the baseline",
            result.new_findings.len()
        );
        return Ok(ExitCode::FAILURE);
    }

    for f in &findings {
        println!("{f}");
    }
    println!("svq-lint: {} finding(s)", findings.len());
    Ok(ExitCode::SUCCESS)
}
