//! `svq-lint` CLI.
//!
//! ```text
//! svq-lint                     report every finding (exit 0)
//! svq-lint --check             fail on findings beyond the baseline
//! svq-lint --update-baseline   rewrite lint-baseline.txt from current state
//!     --format human|json      json writes results/lint-report.json too
//!     --root <dir>             workspace root (default: discovered upward)
//!     --baseline <file>        baseline path (default: <root>/lint-baseline.txt)
//! ```

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use svq_lint::{find_workspace_root, lint_workspace_full, Baseline, Finding, StaticLockGraph};

struct Args {
    check: bool,
    update: bool,
    json: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        update: false,
        json: false,
        root: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--update-baseline" => args.update = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format expects human|json, got {other:?}")),
            },
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?)),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?))
            }
            "--help" | "-h" => {
                println!(
                    "svq-lint: workspace invariant linter\n\
                     \n\
                     USAGE: svq-lint [--check | --update-baseline] [--format human|json]\n\
                     \x20               [--root <dir>] [--baseline <file>]\n\
                     \n\
                     Per-file rules: determinism, panic, float-eq, print, forbid-unsafe\n\
                     Workspace concurrency passes: lock-cycle (static lock-order cycles),\n\
                     blocking-under-lock (sleep/join/bounded-channel/condvar-wait/IO under\n\
                     a live guard, reached directly or through the call graph).\n\
                     \n\
                     --format json writes <root>/results/lint-report.json with every\n\
                     finding (rule, file, line, witness chain) plus analysis statistics.\n\
                     Suppress inline with `// svq-lint: allow(<rule>)`."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.check && args.update {
        return Err("--check and --update-baseline are mutually exclusive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("svq-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Print one finding, then its witness path indented beneath it.
fn print_finding(f: &Finding) {
    println!("{f}");
    for step in &f.witness {
        println!("    {step}");
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Hand-rolled report JSON — the offline container has no serde for this
/// crate, and the shape is flat enough not to need it.
fn render_json(findings: &[Finding], graph: &StaticLockGraph) -> String {
    let mut out = String::from("{\n  \"stats\": {");
    let s = &graph.stats;
    let _ = write!(
        out,
        "\"files\": {}, \"functions\": {}, \"resolved_calls\": {}, \
         \"unresolved_calls\": {}, \"lock_nodes\": {}, \"lock_edges\": {}, \
         \"site_pairs\": {}",
        s.files,
        s.functions,
        s.resolved_calls,
        s.unresolved_calls,
        s.lock_nodes,
        s.lock_edges,
        s.site_pairs
    );
    out.push_str("},\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"witness\": [",
            f.rule.name(),
            json_escape(&f.path.to_string_lossy()),
            f.line,
            json_escape(&f.message),
        );
        for (j, step) in f.witness.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(step));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match args.root {
        Some(r) => r,
        None => find_workspace_root(&cwd).ok_or("no workspace root found above cwd")?,
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.txt"));

    let (findings, graph) = lint_workspace_full(&root).map_err(|e| e.to_string())?;

    if args.json {
        let dir = root.join("results");
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let path = dir.join("lint-report.json");
        std::fs::write(&path, render_json(&findings, &graph)).map_err(|e| e.to_string())?;
        println!(
            "svq-lint: wrote {} ({} findings)",
            path.display(),
            findings.len()
        );
    }

    if args.update {
        let base = Baseline::from_findings(&findings);
        std::fs::write(&baseline_path, base.to_string()).map_err(|e| e.to_string())?;
        println!(
            "svq-lint: wrote {} ({} tracked findings)",
            baseline_path.display(),
            findings.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let stats_line = {
        let s = &graph.stats;
        format!(
            "svq-lint: analyzed {} files / {} functions; call graph {} resolved, \
             {} unresolved; lock graph {} nodes, {} edges, {} site pairs",
            s.files,
            s.functions,
            s.resolved_calls,
            s.unresolved_calls,
            s.lock_nodes,
            s.lock_edges,
            s.site_pairs
        )
    };

    if args.check {
        let base = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => return Err(e.to_string()),
        };
        let result = base.check(&findings);
        for (rule, path, allowed, current) in &result.stale {
            println!(
                "svq-lint: stale baseline: [{rule}] {} allows {allowed}, now {current} — \
                 run --update-baseline to ratchet down",
                path.display()
            );
        }
        if result.is_clean() {
            println!("{stats_line}");
            println!(
                "svq-lint: clean ({} findings, all within baseline)",
                findings.len()
            );
            return Ok(ExitCode::SUCCESS);
        }
        for f in &result.new_findings {
            print_finding(f);
        }
        println!(
            "svq-lint: {} new finding(s) beyond baseline — fix them or, if \
             deliberate, suppress inline / update the baseline",
            result.new_findings.len()
        );
        return Ok(ExitCode::FAILURE);
    }

    for f in &findings {
        print_finding(f);
    }
    println!("{stats_line}");
    println!("svq-lint: {} finding(s)", findings.len());
    Ok(ExitCode::SUCCESS)
}
