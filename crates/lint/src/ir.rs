//! Syntactic IR over the token scanner: function items with their impl
//! owners and module paths, plus per-file facts the concurrency passes
//! need (test masks, bounded-channel binding names).
//!
//! This is deliberately *syntactic*: no type checking, no trait solving.
//! Function identity is a qualified path (`crate::module::Type::name`)
//! reconstructed from `mod`/`impl`/`trait` nesting, which is exactly what
//! the call-graph resolver ([`crate::callgraph`]) matches call paths
//! against. The approximations mirror the existing rules: false negatives
//! are possible, false positives are rare and suppressible.

use crate::regions;
use crate::rules::FileContext;
use crate::scanner::{ScannedFile, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// One scanned source file plus its lint context, the unit the
/// concurrency passes consume (the token rules consume it too, so the
/// workspace is read and scanned exactly once).
pub struct SourceUnit {
    pub ctx: FileContext,
    pub scanned: ScannedFile,
}

/// Per-file facts shared by every function in the file.
pub struct FileIr {
    pub path: PathBuf,
    /// Crate directory name (`exec`, `server`, …); `tests` for the
    /// workspace-level `tests/` tree.
    pub krate: String,
    /// Whole-file test code (under a `tests/` directory).
    pub test_file: bool,
    /// Per-token `#[cfg(test)]`/`#[test]` region mask.
    pub test_mask: Vec<bool>,
    /// Names destructured from `let (tx, rx) = bounded(..)`: sends and
    /// receives through these can block on capacity.
    pub bounded: BTreeSet<String>,
    /// `svq-lint: guard-escapes(callee)` pragmas: acquisition line → the
    /// callee that holds the escaping guard across its own work.
    pub escapes: BTreeMap<u32, String>,
}

/// One function item.
pub struct FnIr {
    /// Index into [`WorkspaceIr::files`].
    pub file: usize,
    /// Fully qualified path: `crate::module::Type::name`.
    pub qual: String,
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub owner: Option<String>,
    pub krate: String,
    /// Module segments between the crate and the item (file-derived plus
    /// inline `mod` nesting).
    pub module: Vec<String>,
    pub line: u32,
    /// Function lives in test code (test file or `#[cfg(test)]` region).
    pub is_test: bool,
    /// Token range of the body: `tokens[body.0]` is the opening `{`,
    /// `tokens[body.1]` the matching `}` (or one past the end on EOF).
    pub body: (usize, usize),
    /// Parameter type hints: binding name → last identifier of its
    /// declared type (`session: &Arc<Session>` → `Session`).
    pub locals: BTreeMap<String, String>,
}

/// The whole workspace, ready for the call-graph and lock-graph passes.
pub struct WorkspaceIr {
    pub files: Vec<FileIr>,
    pub fns: Vec<FnIr>,
}

/// Build the IR for every function in every unit.
pub fn build(units: &[SourceUnit]) -> WorkspaceIr {
    let mut ir = WorkspaceIr {
        files: Vec::new(),
        fns: Vec::new(),
    };
    for (file_idx, unit) in units.iter().enumerate() {
        let tokens = &unit.scanned.tokens;
        let krate = unit
            .ctx
            .crate_name
            .clone()
            .unwrap_or_else(|| "tests".to_string());
        let file_mods = file_modules(&unit.ctx.path);
        let test_mask = regions::test_region_mask(tokens);
        ir.files.push(FileIr {
            path: unit.ctx.path.clone(),
            krate: krate.clone(),
            test_file: unit.ctx.test_file,
            test_mask: test_mask.clone(),
            bounded: bounded_names(tokens),
            escapes: unit.scanned.escapes.clone(),
        });
        extract_fns(
            tokens,
            &test_mask,
            unit.ctx.test_file,
            file_idx,
            &krate,
            &file_mods,
            &mut ir.fns,
        );
    }
    ir
}

/// Module segments implied by the file's path under its crate:
/// `crates/exec/src/mux.rs` → `[mux]`, `crates/core/src/offline/mod.rs`
/// → `[offline]`, `lib.rs`/`main.rs` → `[]`, `tests/foo.rs` → `[foo]`.
fn file_modules(rel: &std::path::Path) -> Vec<String> {
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let mut mods: Vec<String> = comps
        .iter()
        .skip(if comps.first().map(String::as_str) == Some("crates") {
            2
        } else {
            1
        })
        .filter(|c| *c != "src" && *c != "tests")
        .cloned()
        .collect();
    if let Some(last) = mods.pop() {
        let stem = last.trim_end_matches(".rs");
        if stem != "lib" && stem != "main" && stem != "mod" {
            mods.push(stem.to_string());
        }
    }
    mods
}

/// Names bound by `let (a, b) = [path::]bounded(..)`.
fn bounded_names(t: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..t.len() {
        if !(t[i].is_ident("let")
            && t.get(i + 1).is_some_and(|n| n.is_op("("))
            && t.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            && t.get(i + 3).is_some_and(|n| n.is_op(","))
            && t.get(i + 4).is_some_and(|n| n.kind == TokenKind::Ident)
            && t.get(i + 5).is_some_and(|n| n.is_op(")"))
            && t.get(i + 6).is_some_and(|n| n.is_op("=")))
        {
            continue;
        }
        // Initialiser is a (possibly qualified) `bounded(..)` call.
        let is_bounded = (i + 7..(i + 12).min(t.len()))
            .any(|j| t[j].is_ident("bounded") && t.get(j + 1).is_some_and(|n| n.is_op("(")));
        if is_bounded {
            names.insert(t[i + 2].text.clone());
            names.insert(t[i + 4].text.clone());
        }
    }
    names
}

/// What a `{`/`}` pair on the item-structure walk belongs to.
enum Frame {
    Plain,
    Mod,
    /// Restores the previous impl/trait owner on close.
    Impl(Option<String>),
    /// Closes the body of `fns[idx]`.
    Fn(usize),
}

fn extract_fns(
    t: &[Token],
    mask: &[bool],
    test_file: bool,
    file_idx: usize,
    krate: &str,
    file_mods: &[String],
    out: &mut Vec<FnIr>,
) {
    let mut frames: Vec<Frame> = Vec::new();
    let mut mods: Vec<String> = file_mods.to_vec();
    let mut owner: Option<String> = None;
    let mut i = 0;
    while i < t.len() {
        let tok = &t[i];
        if tok.is_ident("mod")
            && t.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
            && t.get(i + 2).is_some_and(|n| n.is_op("{"))
        {
            mods.push(t[i + 1].text.clone());
            frames.push(Frame::Mod);
            i += 3;
            continue;
        }
        if tok.is_ident("impl") || tok.is_ident("trait") {
            if let Some((name, brace)) = impl_header(t, i) {
                frames.push(Frame::Impl(owner.take()));
                owner = Some(name);
                i = brace + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if tok.is_ident("fn") && t.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
            let name = t[i + 1].text.clone();
            let line = t[i + 1].line;
            if let Some((locals, after_sig)) = fn_signature(t, i + 2) {
                match after_sig {
                    SigEnd::Body(brace) => {
                        let mut qual = vec![krate.to_string()];
                        qual.extend(mods.iter().cloned());
                        if let Some(o) = &owner {
                            qual.push(o.clone());
                        }
                        qual.push(name.clone());
                        let idx = out.len();
                        out.push(FnIr {
                            file: file_idx,
                            qual: qual.join("::"),
                            name,
                            owner: owner.clone(),
                            krate: krate.to_string(),
                            module: mods.clone(),
                            line,
                            is_test: test_file || mask.get(i + 1).copied().unwrap_or(false),
                            body: (brace, t.len()),
                            locals,
                        });
                        frames.push(Frame::Fn(idx));
                        i = brace + 1;
                        continue;
                    }
                    SigEnd::Decl(end) => {
                        i = end + 1;
                        continue;
                    }
                }
            }
            i += 2;
            continue;
        }
        if tok.is_op("{") {
            frames.push(Frame::Plain);
        } else if tok.is_op("}") {
            match frames.pop() {
                Some(Frame::Mod) => {
                    mods.pop();
                }
                Some(Frame::Impl(prev)) => owner = prev,
                Some(Frame::Fn(idx)) => out[idx].body.1 = i,
                _ => {}
            }
        }
        i += 1;
    }
}

/// Parse an `impl`/`trait` header starting at index `i` (the keyword):
/// returns the subject type's last path segment and the index of the
/// opening `{`. `impl<T> Foo<T> {` → `Foo`; `impl fmt::Display for Bar {`
/// → `Bar`.
fn impl_header(t: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if t.get(j).is_some_and(|n| n.is_op("<")) {
        j = skip_angles(t, j)?;
    }
    let (first, mut j) = read_type_path(t, j)?;
    let mut name = first;
    // Trait supertraits / where clauses may intervene; scan to `for`, `{`
    // or `;` at bracket depth zero.
    let mut depth = 0i32;
    while j < t.len() {
        let tok = &t[j];
        if depth == 0 {
            if tok.is_ident("for") {
                let (n, nj) = read_type_path(t, j + 1)?;
                name = n;
                j = nj;
                continue;
            }
            if tok.is_op("{") {
                return Some((name, j));
            }
            if tok.is_op(";") {
                return None;
            }
        }
        match tok.text.as_str() {
            "(" | "[" | "<" if tok.kind == TokenKind::Op => depth += 1,
            ")" | "]" | ">" if tok.kind == TokenKind::Op => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Read a type path (`a::b::C<T>`), returning its last identifier segment
/// and the index after it. Skips `&`, `mut`, `dyn` prefixes and trailing
/// generic arguments.
fn read_type_path(t: &[Token], mut j: usize) -> Option<(String, usize)> {
    while t
        .get(j)
        .is_some_and(|n| n.is_op("&") || n.is_ident("mut") || n.is_ident("dyn"))
        || t.get(j).is_some_and(|n| n.kind == TokenKind::Lifetime)
    {
        j += 1;
    }
    let mut last = None;
    loop {
        match t.get(j) {
            Some(n) if n.kind == TokenKind::Ident => {
                last = Some(n.text.clone());
                j += 1;
            }
            _ => break,
        }
        if t.get(j).is_some_and(|n| n.is_op("<")) {
            j = skip_angles(t, j)?;
        }
        if t.get(j).is_some_and(|n| n.is_op("::")) {
            j += 1;
        } else {
            break;
        }
    }
    last.map(|l| (l, j))
}

/// Skip a balanced `<...>` group starting at the `<` at `j`; returns the
/// index after the closing `>`.
fn skip_angles(t: &[Token], j: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = j;
    while k < t.len() {
        if t[k].is_op("<") {
            depth += 1;
        } else if t[k].is_op(">") {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
        k += 1;
    }
    None
}

enum SigEnd {
    /// Index of the body's opening `{`.
    Body(usize),
    /// Index of the terminating `;` (trait method declaration).
    Decl(usize),
}

/// Parse a function signature starting at `j` (just after the name):
/// optional generics, the parameter list (harvesting type hints), then
/// scan to the body `{` or declaration `;`.
fn fn_signature(t: &[Token], mut j: usize) -> Option<(BTreeMap<String, String>, SigEnd)> {
    if t.get(j).is_some_and(|n| n.is_op("<")) {
        j = skip_angles(t, j)?;
    }
    if !t.get(j).is_some_and(|n| n.is_op("(")) {
        return None;
    }
    let close = skip_parens(t, j)?;
    let locals = param_types(&t[j + 1..close]);
    // Return type / where clause: no braces occur before the body's `{`.
    let mut k = close + 1;
    let mut depth = 0i32;
    while k < t.len() {
        let tok = &t[k];
        if depth == 0 {
            if tok.is_op("{") {
                return Some((locals, SigEnd::Body(k)));
            }
            if tok.is_op(";") {
                return Some((locals, SigEnd::Decl(k)));
            }
        }
        match tok.text.as_str() {
            "(" | "[" | "<" if tok.kind == TokenKind::Op => depth += 1,
            ")" | "]" | ">" if tok.kind == TokenKind::Op => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Index of the `)` matching the `(` at `j`.
fn skip_parens(t: &[Token], j: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = j;
    while k < t.len() {
        if t[k].is_op("(") {
            depth += 1;
        } else if t[k].is_op(")") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

/// `name: Type` hints from a parameter list slice: the hint is the last
/// identifier of the type (`&Arc<Session>` → `Session`), good enough to
/// key method resolution and lock identity.
fn param_types(params: &[Token]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut depth = 0i32;
    let mut start = 0;
    let param_of = |seg: &[Token], out: &mut BTreeMap<String, String>| {
        // `[mut] name : Type…`
        let mut k = 0;
        while seg.get(k).is_some_and(|n| n.is_ident("mut")) {
            k += 1;
        }
        let Some(name) = seg.get(k).filter(|n| n.kind == TokenKind::Ident) else {
            return;
        };
        if name.text == "self" || !seg.get(k + 1).is_some_and(|n| n.is_op(":")) {
            return;
        }
        let ty = seg[k + 2..]
            .iter()
            .rfind(|n| n.kind == TokenKind::Ident && n.text != "mut" && n.text != "dyn");
        if let Some(ty) = ty {
            out.insert(name.text.clone(), ty.text.clone());
        }
    };
    for (k, tok) in params.iter().enumerate() {
        match tok.text.as_str() {
            "(" | "[" | "<" if tok.kind == TokenKind::Op => depth += 1,
            ")" | "]" | ">" if tok.kind == TokenKind::Op => depth -= 1,
            "," if tok.kind == TokenKind::Op && depth == 0 => {
                param_of(&params[start..k], &mut out);
                start = k + 1;
            }
            _ => {}
        }
    }
    param_of(&params[start..], &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner;

    fn unit(path: &str, src: &str) -> SourceUnit {
        SourceUnit {
            ctx: FileContext::from_rel_path(std::path::Path::new(path)),
            scanned: scanner::scan(src),
        }
    }

    #[test]
    fn functions_get_qualified_names() {
        let src = r#"
            pub fn free() {}
            mod inner {
                impl Widget {
                    fn method(&self) {}
                }
                impl fmt::Display for Gadget {
                    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
                }
            }
        "#;
        let units = vec![unit("crates/exec/src/mux.rs", src)];
        let ir = build(&units);
        let quals: Vec<&str> = ir.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "exec::mux::free",
                "exec::mux::inner::Widget::method",
                "exec::mux::inner::Gadget::fmt",
            ]
        );
    }

    #[test]
    fn bodies_and_param_hints_are_tracked() {
        let src = "fn take(session: &Arc<Session>, n: usize) { let x = 1; }";
        let units = vec![unit("crates/exec/src/lib.rs", src)];
        let ir = build(&units);
        assert_eq!(ir.fns.len(), 1);
        let f = &ir.fns[0];
        assert_eq!(f.locals.get("session").map(String::as_str), Some("Session"));
        assert_eq!(f.locals.get("n").map(String::as_str), Some("usize"));
        let t = &units[f.file].scanned.tokens;
        assert!(t[f.body.0].is_op("{"));
        assert!(t[f.body.1].is_op("}"));
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src = "trait Sink { fn push(&mut self, v: u64); fn done(&self) -> bool { true } }";
        let units = vec![unit("crates/storage/src/sink.rs", src)];
        let ir = build(&units);
        let names: Vec<&str> = ir.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["done"]);
        assert_eq!(ir.fns[0].owner.as_deref(), Some("Sink"));
    }

    #[test]
    fn bounded_channel_names_are_collected() {
        let src =
            "fn f() { let (tx, rx) = crossbeam::channel::bounded(4); let (a, b) = unbounded(); }";
        let units = vec![unit("crates/exec/src/mux.rs", src)];
        let ir = build(&units);
        assert!(ir.files[0].bounded.contains("tx"));
        assert!(ir.files[0].bounded.contains("rx"));
        assert!(!ir.files[0].bounded.contains("a"));
    }

    #[test]
    fn test_regions_mark_functions() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests { fn helper() {} }";
        let units = vec![unit("crates/exec/src/mux.rs", src)];
        let ir = build(&units);
        assert!(!ir.fns[0].is_test);
        assert!(ir.fns[1].is_test);
    }
}
