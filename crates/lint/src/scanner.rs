//! Token scanner for Rust source — the lexing approach of
//! `svq-query`'s SQL lexer applied to Rust itself.
//!
//! The linter does not parse Rust; it scans it. A token stream with line
//! numbers is enough to recognise every pattern the rules care about
//! (`.unwrap()`, `panic!`, `== 0.0`, `map.iter()`, `#[cfg(test)]` …)
//! while staying robust to formatting. The scanner handles the lexical
//! constructs that would otherwise produce false tokens: nested block
//! comments, line/doc comments, raw strings (`r#"…"#`), byte strings,
//! char-vs-lifetime disambiguation (`'a'` vs `'a`), and numeric literals
//! with exponents and suffixes.
//!
//! Line comments are also where inline suppressions live:
//! `// svq-lint: allow(rule-a, rule-b)` silences those rules on the
//! comment's own line and the line immediately after it.

use std::collections::{BTreeMap, BTreeSet};

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, exponent, or `f32`/`f64`
    /// suffix).
    Float,
    /// String literal (plain, raw, or byte); `text` is the *content*.
    Str,
    /// Char or byte-char literal; `text` is the raw inside of the quotes.
    Char,
    /// Operator / punctuation. Multi-char operators that the rules need to
    /// see atomically (`::`, `==`, `!=`, `->`, `=>`, `&&`, `||`, `..=`,
    /// `..`, `<=`, `>=`) are merged; everything else is one char.
    Op,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Is this an `Op` token with exactly this text?
    pub fn is_op(&self, op: &str) -> bool {
        self.kind == TokenKind::Op && self.text == op
    }

    /// Is this an `Ident` token with exactly this text?
    pub fn is_ident(&self, ident: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == ident
    }
}

/// A fully scanned file: tokens plus the inline suppressions found in its
/// comments.
#[derive(Debug, Default)]
pub struct ScannedFile {
    pub tokens: Vec<Token>,
    /// Rule names suppressed per line (`"all"` suppresses every rule). A
    /// suppression on line `l` covers findings on `l` and `l + 1`.
    pub suppressions: BTreeMap<u32, BTreeSet<String>>,
    /// `svq-lint: guard-escapes(callee)` declarations, keyed by line: the
    /// guard acquired on that line escapes (via a closure's return value)
    /// into the named callee, which holds it across its own work. The
    /// guard walker widens that call's held set accordingly — the one
    /// guard-region shape brace-depth tracking cannot see.
    pub escapes: BTreeMap<u32, String>,
}

impl ScannedFile {
    /// Whether `rule` is suppressed for a finding on `line`.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.suppressions
                .get(l)
                .is_some_and(|rules| rules.contains(rule) || rules.contains("all"))
        })
    }
}

/// Scan `source` into tokens and suppressions.
pub fn scan(source: &str) -> ScannedFile {
    Scanner::new(source).run()
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: ScannedFile,
}

impl<'a> Scanner<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            out: ScannedFile::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> ScannedFile {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => {
                    if !self.raw_string(0) {
                        self.ident();
                    }
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.string();
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump();
                    self.char_literal();
                }
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                    if !self.raw_string(1) {
                        self.ident();
                    }
                }
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                _ => self.operator(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        record_suppression(text, line, &mut self.out.suppressions);
        record_escape(text, line, &mut self.out.escapes);
    }

    fn block_comment(&mut self) {
        // Nested, as in Rust.
        let mut depth = 0usize;
        while self.pos < self.src.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push(TokenKind::Str, text, line);
    }

    /// Raw (byte) string starting at `pos + prefix` (`prefix` skips a `b`).
    /// Returns false if this is not actually a raw string (e.g. the ident
    /// `r#for`), leaving the position untouched.
    fn raw_string(&mut self, prefix: usize) -> bool {
        let mut hashes = 0usize;
        let mut i = self.pos + prefix + 1; // past the `r`
        while self.src.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if self.src.get(i) != Some(&b'"') {
            return false; // raw identifier like r#match
        }
        let line = self.line;
        for _ in 0..(prefix + 1 + hashes + 1) {
            self.bump();
        }
        let start = self.pos;
        let mut closer = vec![b'"'];
        closer.resize(hashes + 1, b'#');
        while self.pos < self.src.len() && !self.src[self.pos..].starts_with(&closer) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        for _ in 0..closer.len().min(self.src.len() - self.pos) {
            self.bump();
        }
        self.push(TokenKind::Str, text, line);
        true
    }

    fn char_or_lifetime(&mut self) {
        // `'a` (lifetime) vs `'a'` (char): a lifetime is `'` + ident chars
        // NOT followed by a closing `'`.
        let mut i = self.pos + 1;
        let mut ident_len = 0usize;
        while self
            .src
            .get(i)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            ident_len += 1;
            i += 1;
        }
        if ident_len > 0 && self.src.get(i) != Some(&b'\'') {
            let line = self.line;
            self.bump();
            let start = self.pos;
            for _ in 0..ident_len {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.char_literal();
        }
    }

    fn char_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push(TokenKind::Char, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut is_float = false;
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        if self.peek(0) == b'x' || self.peek(0) == b'o' || self.peek(0) == b'b' {
            // Hex/octal/binary: consume the prefixed digits.
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokenKind::Int, text, line);
            return;
        }
        // Fraction — but `1..2` is a range and `1.method()` a call.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            is_float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        } else if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_byte(self.peek(1)) {
            // Trailing-dot float like `2.`.
            is_float = true;
            self.bump();
        }
        // Exponent.
        if (self.peek(0) == b'e' || self.peek(0) == b'E')
            && (self.peek(1).is_ascii_digit()
                || ((self.peek(1) == b'+' || self.peek(1) == b'-')
                    && self.peek(2).is_ascii_digit()))
        {
            is_float = true;
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Suffix (`u64`, `f64`, …).
        let suffix_start = self.pos;
        while is_ident_byte(self.peek(0)) {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while is_ident_byte(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, line);
    }

    fn operator(&mut self) {
        let line = self.line;
        const MERGED: [&str; 10] = ["..=", "::", "==", "!=", "->", "=>", "&&", "||", "..", "<="];
        const MERGED2: [&str; 1] = [">="];
        for op in MERGED.iter().chain(MERGED2.iter()) {
            if self.src[self.pos..].starts_with(op.as_bytes()) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokenKind::Op, (*op).to_string(), line);
                return;
            }
        }
        let b = self.bump();
        self.push(TokenKind::Op, (b as char).to_string(), line);
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parse `svq-lint: allow(rule-a, rule-b)` out of a line comment.
fn record_suppression(comment: &str, line: u32, out: &mut BTreeMap<u32, BTreeSet<String>>) {
    const MARKER: &str = "svq-lint: allow(";
    let Some(at) = comment.find(MARKER) else {
        return;
    };
    let rest = &comment[at + MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty());
    out.entry(line).or_default().extend(rules);
}

/// Parse `svq-lint: guard-escapes(callee)` out of a line comment.
fn record_escape(comment: &str, line: u32, out: &mut BTreeMap<u32, String>) {
    const MARKER: &str = "svq-lint: guard-escapes(";
    let Some(at) = comment.find(MARKER) else {
        return;
    };
    let rest = &comment[at + MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    let callee = rest[..close].trim();
    if !callee.is_empty() {
        out.insert(line, callee.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        scan(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_idents_numbers_and_merged_ops() {
        let toks = kinds("let x: f64 = 1.5e-3; x != 2.0 && y == 3");
        assert!(toks.contains(&(TokenKind::Float, "1.5e-3".into())));
        assert!(toks.contains(&(TokenKind::Op, "!=".into())));
        assert!(toks.contains(&(TokenKind::Op, "&&".into())));
        assert!(toks.contains(&(TokenKind::Op, "==".into())));
        assert!(toks.contains(&(TokenKind::Int, "3".into())));
    }

    #[test]
    fn distinguishes_char_from_lifetime() {
        let toks = kinds("fn f<'a>(c: char) { if c == 'x' {} }");
        assert!(toks.contains(&(TokenKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokenKind::Char, "x".into())));
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..10 {} for j in 0..=3 {}");
        assert!(toks.contains(&(TokenKind::Int, "0".into())));
        assert!(toks.contains(&(TokenKind::Op, "..".into())));
        assert!(toks.contains(&(TokenKind::Op, "..=".into())));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Float));
    }

    #[test]
    fn float_suffix_and_trailing_dot() {
        let toks = kinds("let a = 1f64; let b = 2.;");
        assert!(toks.contains(&(TokenKind::Float, "1f64".into())));
        assert!(toks.contains(&(TokenKind::Float, "2.".into())));
    }

    #[test]
    fn comments_and_strings_produce_no_false_tokens() {
        let src = r##"
            // panic! in a comment
            /* unwrap() /* nested */ still comment */
            let s = "panic!(\"no\")";
            let r = r#"unwrap()"#;
        "##;
        let toks = kinds(src);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && (t == "panic" || t == "unwrap")));
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = kinds("let r#match = 1;");
        assert!(
            toks.contains(&(TokenKind::Ident, "r".into()))
                || toks.contains(&(TokenKind::Ident, "match".into()))
        );
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn suppressions_cover_their_line_and_the_next() {
        let src = "let a = 1; // svq-lint: allow(panic)\nlet b = 2;\nlet c = 3;";
        let f = scan(src);
        assert!(f.suppressed("panic", 1));
        assert!(f.suppressed("panic", 2));
        assert!(!f.suppressed("panic", 3));
        assert!(!f.suppressed("float-eq", 1));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let f = scan("a\nb\n\nc");
        let lines: Vec<u32> = f.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
