//! The static lock-order graph and the two concurrency rules built on it.
//!
//! Per-function acquisition sequences (from [`crate::guards`]) are
//! propagated transitively through the call graph by a bottom-up
//! fixpoint, producing for every function the set of locks it *may*
//! acquire and the blocking operations it *may* reach — each with one
//! witness call chain. A second pass replays every function's events with
//! its live-guard regions and emits:
//!
//! * **lock-order edges** `held → acquired`, both as identity pairs (for
//!   DFS cycle detection → the `lock-cycle` rule) and as `(file, line)`
//!   site pairs (so the runtime auditor's observed edges can be checked
//!   for static coverage — the soundness gate);
//! * **`blocking-under-lock` findings** wherever a sleep, join,
//!   bounded-channel op, condvar wait, or file/socket I/O is reached —
//!   directly or through calls — while any guard is live.
//!
//! `try_lock`-family acquisitions take no incoming edge (matching the
//! runtime auditor) but do hold a region that orders later acquisitions.
//! Test-region edges stay in the graph (the runtime workloads run from
//! tests) but never produce findings — the runtime auditor owns tests.

use crate::callgraph::CallGraph;
use crate::guards::{Event, EventKind, HeldGuard};
use crate::ir::{SourceUnit, WorkspaceIr};
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// A site is a workspace-relative path plus a 1-based line — exactly what
/// `Location::caller()` gives the runtime auditor.
pub type Site = (String, u32);

/// One representative lock-order edge.
#[derive(Debug, Clone)]
pub struct EdgeInfo {
    pub from: String,
    pub to: String,
    /// Where the held lock was acquired.
    pub holder: Site,
    /// Where the second lock is acquired (the leaf of the call chain).
    pub acq: Site,
    /// Call chain from the holding function to the leaf acquisition
    /// (empty for same-function edges).
    pub chain: Vec<String>,
    /// Edge only observed from test code.
    pub from_test: bool,
}

/// Analysis counters surfaced in `--format json` and the CLI summary.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    pub files: usize,
    pub functions: usize,
    pub resolved_calls: usize,
    pub unresolved_calls: usize,
    pub lock_nodes: usize,
    pub lock_edges: usize,
    pub site_pairs: usize,
}

/// The static lock-order graph, queryable by the runtime cross-check.
pub struct StaticLockGraph {
    pub nodes: BTreeSet<String>,
    pub edges: Vec<EdgeInfo>,
    /// Every `(holder site, acquisition site)` pair the analysis admits.
    pairs: BTreeSet<(Site, Site)>,
    /// Every acquisition / wait re-acquisition site.
    sites: BTreeSet<Site>,
    pub stats: Stats,
}

impl StaticLockGraph {
    /// Does the static graph admit a runtime-observed edge from a lock
    /// acquired at `holder` to one acquired at `acq`?
    pub fn covers(&self, holder: (&str, u32), acq: (&str, u32)) -> bool {
        self.pairs
            .contains(&((holder.0.to_string(), holder.1), (acq.0.to_string(), acq.1)))
    }

    /// Is this site a lock acquisition the static analysis knows about at
    /// all? A runtime edge endpoint inside `crates/` that the IR never
    /// saw means the syntactic pass missed an acquisition form — a
    /// soundness hole worth failing loudly on.
    pub fn knows_site(&self, site: (&str, u32)) -> bool {
        self.sites.contains(&(site.0.to_string(), site.1))
    }
}

struct Via {
    site: (usize, u32),
    blocking: bool,
    chain: Vec<String>,
}

struct BlockVia {
    what: String,
    site: (usize, u32),
    chain: Vec<String>,
}

#[derive(Default)]
struct Summary {
    /// lock identity → every reachable acquisition site (each with one
    /// witness chain). All sites matter: the runtime cross-check compares
    /// site pairs, and a lock acquired at several places (e.g. every
    /// method of `SimulatedDisk` takes `inner`) must admit each of them.
    acquires: BTreeMap<String, Vec<Via>>,
    /// dedup key → blocking-operation witness.
    blocks: BTreeMap<String, BlockVia>,
}

const MAX_CHAIN: usize = 8;

fn has_site(s: &Summary, lock: &str, site: (usize, u32)) -> bool {
    s.acquires
        .get(lock)
        .is_some_and(|vias| vias.iter().any(|v| v.site == site))
}

/// Run the concurrency analysis: returns findings (for `lock-cycle` and
/// `blocking-under-lock`) plus the full static graph.
pub fn analyze(
    units: &[SourceUnit],
    ir: &WorkspaceIr,
    events: &[Vec<Event>],
) -> (Vec<Finding>, StaticLockGraph) {
    let graph = crate::callgraph::resolve(ir, events);
    analyze_with(units, ir, events, &graph)
}

fn site_of(units: &[SourceUnit], file: usize, line: u32) -> Site {
    (units[file].ctx.path.to_string_lossy().into_owned(), line)
}

fn analyze_with(
    units: &[SourceUnit],
    ir: &WorkspaceIr,
    events: &[Vec<Event>],
    graph: &CallGraph,
) -> (Vec<Finding>, StaticLockGraph) {
    let n = ir.fns.len();
    // Event-index → callee list, per function, for O(1) lookup.
    let resolved: Vec<BTreeMap<usize, &Vec<usize>>> = graph
        .calls
        .iter()
        .map(|per| per.iter().map(|(ei, cs)| (*ei, cs)).collect())
        .collect();

    // --- Pass 1: bottom-up may-acquire / may-block fixpoint. -----------
    let mut summaries: Vec<Summary> = (0..n).map(|_| Summary::default()).collect();
    for _pass in 0..32 {
        let mut changed = false;
        for fi in 0..n {
            let file = ir.fns[fi].file;
            // Collect insertions first (callee summaries may alias ours).
            let mut new_acquires: Vec<(String, Via)> = Vec::new();
            let mut new_blocks: Vec<(String, BlockVia)> = Vec::new();
            for (ei, ev) in events[fi].iter().enumerate() {
                match &ev.kind {
                    EventKind::Acquire {
                        lock,
                        line,
                        blocking,
                    } => {
                        if *blocking && !has_site(&summaries[fi], lock, (file, *line)) {
                            new_acquires.push((
                                lock.clone(),
                                Via {
                                    site: (file, *line),
                                    blocking: true,
                                    chain: Vec::new(),
                                },
                            ));
                        }
                    }
                    EventKind::Wait { lock, line } => {
                        if !has_site(&summaries[fi], lock, (file, *line)) {
                            new_acquires.push((
                                lock.clone(),
                                Via {
                                    site: (file, *line),
                                    blocking: true,
                                    chain: Vec::new(),
                                },
                            ));
                        }
                        let key = format!("wait@{file}:{line}");
                        if !summaries[fi].blocks.contains_key(&key) {
                            new_blocks.push((
                                key,
                                BlockVia {
                                    what: "condvar wait".into(),
                                    site: (file, *line),
                                    chain: Vec::new(),
                                },
                            ));
                        }
                    }
                    EventKind::Block { what, line } => {
                        let key = format!("block@{file}:{line}");
                        if !summaries[fi].blocks.contains_key(&key) {
                            new_blocks.push((
                                key,
                                BlockVia {
                                    what: what.clone(),
                                    site: (file, *line),
                                    chain: Vec::new(),
                                },
                            ));
                        }
                    }
                    EventKind::Call(call) => {
                        let Some(callees) = resolved[fi].get(&ei) else {
                            continue;
                        };
                        for &c in callees.iter() {
                            let step = format!(
                                "{}:{} → {}",
                                units[file].ctx.path.display(),
                                call.line,
                                ir.fns[c].qual
                            );
                            for (lock, vias) in &summaries[c].acquires {
                                for via in vias {
                                    if has_site(&summaries[fi], lock, via.site)
                                        || via.chain.len() >= MAX_CHAIN
                                    {
                                        continue;
                                    }
                                    let mut chain = vec![step.clone()];
                                    chain.extend(via.chain.iter().cloned());
                                    new_acquires.push((
                                        lock.clone(),
                                        Via {
                                            site: via.site,
                                            blocking: via.blocking,
                                            chain,
                                        },
                                    ));
                                }
                            }
                            for (key, via) in &summaries[c].blocks {
                                if summaries[fi].blocks.contains_key(key)
                                    || via.chain.len() >= MAX_CHAIN
                                {
                                    continue;
                                }
                                let mut chain = vec![step.clone()];
                                chain.extend(via.chain.iter().cloned());
                                new_blocks.push((
                                    key.clone(),
                                    BlockVia {
                                        what: via.what.clone(),
                                        site: via.site,
                                        chain,
                                    },
                                ));
                            }
                        }
                    }
                }
            }
            for (k, v) in new_acquires {
                let vias = summaries[fi].acquires.entry(k).or_default();
                if !vias.iter().any(|w| w.site == v.site) {
                    vias.push(v);
                    changed = true;
                }
            }
            for (k, v) in new_blocks {
                if let std::collections::btree_map::Entry::Vacant(e) = summaries[fi].blocks.entry(k)
                {
                    e.insert(v);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- Pass 2: edges, site pairs, blocking findings. -----------------
    let mut nodes = BTreeSet::new();
    let mut pairs: BTreeSet<(Site, Site)> = BTreeSet::new();
    let mut sites: BTreeSet<Site> = BTreeSet::new();
    let mut edge_map: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut block_finding_keys: BTreeSet<(usize, u32, String)> = BTreeSet::new();

    let record_edge = |edge_map: &mut BTreeMap<(String, String), EdgeInfo>,
                       pairs: &mut BTreeSet<(Site, Site)>,
                       g: &HeldGuard,
                       to: &str,
                       file: usize,
                       acq_site: (usize, u32),
                       chain: &[String],
                       from_test: bool| {
        let acq = site_of(units, acq_site.0, acq_site.1);
        for &hline in &g.sites {
            pairs.insert((site_of(units, file, hline), acq.clone()));
        }
        let key = (g.lock.clone(), to.to_string());
        let info = EdgeInfo {
            from: g.lock.clone(),
            to: to.to_string(),
            holder: site_of(units, file, g.sites[0]),
            acq,
            chain: chain.to_vec(),
            from_test,
        };
        match edge_map.get_mut(&key) {
            Some(existing) => {
                // Prefer a non-test representative.
                if existing.from_test && !from_test {
                    *existing = info;
                }
            }
            None => {
                edge_map.insert(key, info);
            }
        }
    };

    let describe_held = |held: &[HeldGuard], units: &[SourceUnit], file: usize| -> String {
        held.iter()
            .map(|g| {
                format!(
                    "`{}` (acquired {}:{})",
                    g.lock,
                    units[file].ctx.path.display(),
                    g.sites[0]
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };

    for fi in 0..n {
        let f = &ir.fns[fi];
        let file = f.file;
        let scanned = &units[file].scanned;
        let is_test = f.is_test;
        for (ei, ev) in events[fi].iter().enumerate() {
            match &ev.kind {
                EventKind::Acquire {
                    lock,
                    line,
                    blocking,
                } => {
                    nodes.insert(lock.clone());
                    sites.insert(site_of(units, file, *line));
                    if *blocking {
                        for g in ev.held.iter().filter(|g| g.lock != *lock) {
                            record_edge(
                                &mut edge_map,
                                &mut pairs,
                                g,
                                lock,
                                file,
                                (file, *line),
                                &[],
                                is_test,
                            );
                        }
                    }
                }
                EventKind::Wait { lock, line } => {
                    nodes.insert(lock.clone());
                    sites.insert(site_of(units, file, *line));
                    for g in ev.held.iter().filter(|g| g.lock != *lock) {
                        record_edge(
                            &mut edge_map,
                            &mut pairs,
                            g,
                            lock,
                            file,
                            (file, *line),
                            &[],
                            is_test,
                        );
                    }
                    if !is_test
                        && !ev.held.is_empty()
                        && !scanned.suppressed(Rule::BlockingUnderLock.name(), *line)
                    {
                        findings.push(Finding {
                            rule: Rule::BlockingUnderLock,
                            path: units[file].ctx.path.clone(),
                            line: *line,
                            message: format!(
                                "condvar wait parks the thread while holding {}",
                                describe_held(&ev.held, units, file)
                            ),
                            witness: Vec::new(),
                        });
                    }
                }
                EventKind::Block { what, line } => {
                    if !is_test
                        && !ev.held.is_empty()
                        && !scanned.suppressed(Rule::BlockingUnderLock.name(), *line)
                    {
                        findings.push(Finding {
                            rule: Rule::BlockingUnderLock,
                            path: units[file].ctx.path.clone(),
                            line: *line,
                            message: format!(
                                "{} while holding {}",
                                what,
                                describe_held(&ev.held, units, file)
                            ),
                            witness: Vec::new(),
                        });
                    }
                }
                EventKind::Call(call) => {
                    if ev.held.is_empty() {
                        continue;
                    }
                    let Some(callees) = resolved[fi].get(&ei) else {
                        continue;
                    };
                    for &c in callees.iter() {
                        for (lock, vias) in &summaries[c].acquires {
                            for via in vias {
                                for g in ev.held.iter().filter(|g| g.lock != *lock) {
                                    let mut chain = vec![format!(
                                        "{}:{} → {}",
                                        units[file].ctx.path.display(),
                                        call.line,
                                        ir.fns[c].qual
                                    )];
                                    chain.extend(via.chain.iter().cloned());
                                    record_edge(
                                        &mut edge_map,
                                        &mut pairs,
                                        g,
                                        lock,
                                        file,
                                        via.site,
                                        &chain,
                                        is_test,
                                    );
                                }
                            }
                        }
                        if !is_test
                            && !summaries[c].blocks.is_empty()
                            && !scanned.suppressed(Rule::BlockingUnderLock.name(), call.line)
                            && block_finding_keys.insert((file, call.line, ir.fns[c].qual.clone()))
                        {
                            let (_, via) =
                                summaries[c].blocks.iter().next().expect("non-empty blocks");
                            let leaf = site_of(units, via.site.0, via.site.1);
                            let mut witness = vec![format!(
                                "{}:{} → {}",
                                units[file].ctx.path.display(),
                                call.line,
                                ir.fns[c].qual
                            )];
                            witness.extend(via.chain.iter().cloned());
                            witness.push(format!("{}:{}: {}", leaf.0, leaf.1, via.what));
                            findings.push(Finding {
                                rule: Rule::BlockingUnderLock,
                                path: units[file].ctx.path.clone(),
                                line: call.line,
                                message: format!(
                                    "call to `{}` reaches {} ({}:{}) while holding {}",
                                    ir.fns[c].qual,
                                    via.what,
                                    leaf.0,
                                    leaf.1,
                                    describe_held(&ev.held, units, file)
                                ),
                                witness,
                            });
                        }
                    }
                }
            }
        }
    }

    // --- Pass 3: DFS cycle detection over non-test edges. --------------
    let adjacency: BTreeMap<&String, BTreeSet<&String>> = {
        let mut adj: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
        for ((from, to), e) in &edge_map {
            if !e.from_test {
                adj.entry(from).or_default().insert(to);
            }
        }
        adj
    };
    for cycle in find_cycles(&adjacency) {
        // Witness: one line per edge of the cycle.
        let mut witness = Vec::new();
        let mut anchor: Option<(String, u32)> = None;
        for w in 0..cycle.len() {
            let from = &cycle[w];
            let to = &cycle[(w + 1) % cycle.len()];
            if let Some(e) = edge_map.get(&(from.clone(), to.clone())) {
                let via = if e.chain.is_empty() {
                    String::new()
                } else {
                    format!(" via {}", e.chain.join(" → "))
                };
                witness.push(format!(
                    "holding `{}` ({}:{}) acquires `{}` at {}:{}{}",
                    from, e.holder.0, e.holder.1, to, e.acq.0, e.acq.1, via
                ));
                if anchor.is_none() {
                    anchor = Some(e.acq.clone());
                }
            }
        }
        let Some((apath, aline)) = anchor else {
            continue;
        };
        let suppressed = units
            .iter()
            .find(|u| u.ctx.path.to_string_lossy() == apath)
            .is_some_and(|u| u.scanned.suppressed(Rule::LockCycle.name(), aline));
        if suppressed {
            continue;
        }
        let mut ring: Vec<&str> = cycle.iter().map(String::as_str).collect();
        ring.push(cycle[0].as_str());
        findings.push(Finding {
            rule: Rule::LockCycle,
            path: apath.clone().into(),
            line: aline,
            message: format!("static lock-order cycle: `{}`", ring.join("` → `")),
            witness,
        });
    }

    let stats = Stats {
        files: units.len(),
        functions: n,
        resolved_calls: graph.resolved_edges,
        unresolved_calls: graph.unresolved.len(),
        lock_nodes: nodes.len(),
        lock_edges: edge_map.len(),
        site_pairs: pairs.len(),
    };
    let graph = StaticLockGraph {
        nodes,
        edges: edge_map.into_values().collect(),
        pairs,
        sites,
        stats,
    };
    (findings, graph)
}

/// Enumerate simple cycles by DFS with white/gray/black colouring,
/// canonicalised (rotated to the minimum node) and deduplicated. Good for
/// the handful of lock nodes a workspace has; not a general Johnson's
/// algorithm.
fn find_cycles(adj: &BTreeMap<&String, BTreeSet<&String>>) -> Vec<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&String, Color> = adj.keys().map(|k| (*k, Color::White)).collect();
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut stack: Vec<&String> = Vec::new();

    fn dfs<'a>(
        node: &'a String,
        adj: &BTreeMap<&'a String, BTreeSet<&'a String>>,
        color: &mut BTreeMap<&'a String, Color>,
        stack: &mut Vec<&'a String>,
        found: &mut BTreeSet<Vec<String>>,
    ) {
        color.insert(node, Color::Gray);
        stack.push(node);
        if let Some(nexts) = adj.get(node) {
            for &next in nexts {
                match color.get(next).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        // Back edge: the cycle is the stack suffix from
                        // `next`.
                        if let Some(pos) = stack.iter().position(|&s| s == next) {
                            let mut cycle: Vec<String> =
                                stack[pos..].iter().map(|s| (*s).clone()).collect();
                            // Canonical rotation: minimum node first.
                            let min = cycle
                                .iter()
                                .enumerate()
                                .min_by_key(|&(_, v)| v)
                                .map(|(i, _)| i)
                                .unwrap_or(0);
                            cycle.rotate_left(min);
                            found.insert(cycle);
                        }
                    }
                    Color::White => dfs(next, adj, color, stack, found),
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
    }

    let keys: Vec<&String> = adj.keys().copied().collect();
    for k in keys {
        if color.get(k).copied().unwrap_or(Color::White) == Color::White {
            dfs(k, adj, &mut color, &mut stack, &mut found);
        }
    }
    found.into_iter().collect()
}
