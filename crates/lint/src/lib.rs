//! # svq-lint — workspace invariant linter for SVQ-ACT
//!
//! A token-level static analyzer enforcing the contracts the test suite
//! cannot: determinism (no wall-clock reads or hash-order iteration in
//! the algorithm crates), panic discipline (no `unwrap()` in library
//! code), float discipline (no `==` against float literals), print
//! discipline (stdout belongs to the binaries), and `#![forbid(unsafe_code)]`
//! at every crate root. See DESIGN.md "Static analysis".
//!
//! Findings ratchet against a committed baseline (`lint-baseline.txt`):
//! pre-existing violations are tracked, new ones fail `--check`. Inline
//! escape hatch: `// svq-lint: allow(<rule>)` on or above the line.
//!
//! The scanner is hand-rolled in the style of `svq-query`'s SQL lexer —
//! no syn, no rustc, no dependencies — because the container this repo
//! builds in is fully offline.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod regions;
pub mod rules;
pub mod scanner;
pub mod walk;

pub use baseline::{Baseline, CheckResult};
pub use rules::{FileContext, Finding, Rule};

use std::io;
use std::path::Path;

/// Lint a single source text under the given context (exposed for the
/// fixture self-tests).
pub fn lint_source(source: &str, ctx: &FileContext) -> Vec<Finding> {
    let scanned = scanner::scan(source);
    let mut findings = Vec::new();
    rules::lint_tokens(&scanned, ctx, &mut findings);
    findings
}

/// Lint the whole workspace rooted at `root`: every `.rs` file under
/// `crates/` and `tests/`, plus the crate-root `forbid-unsafe` check.
/// Findings are sorted by (path, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in walk::workspace_sources(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let ctx = FileContext::from_rel_path(&rel);
        let scanned = scanner::scan(&source);
        rules::lint_tokens(&scanned, &ctx, &mut findings);
    }
    for rel in walk::crate_roots(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let ctx = FileContext::from_rel_path(&rel);
        let scanned = scanner::scan(&source);
        rules::forbid_unsafe_rule(&scanned, &ctx, &mut findings);
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule)
            .cmp(&(&b.path, b.line, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(findings)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// containing a `Cargo.toml` with a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
