//! # svq-lint — workspace invariant linter for SVQ-ACT
//!
//! A multi-pass static analyzer enforcing the contracts the test suite
//! cannot. Per-file token rules: determinism (no wall-clock reads or
//! hash-order iteration in the algorithm crates), panic discipline (no
//! `unwrap()` in library code), float discipline (no `==` against float
//! literals), print discipline (stdout belongs to the binaries), and
//! `#![forbid(unsafe_code)]` at every crate root. Workspace-global
//! concurrency passes ([`ir`] → [`callgraph`] → [`guards`] →
//! [`lockgraph`]): static lock-order cycle detection (`lock-cycle`) and
//! blocking-operations-under-guard detection (`blocking-under-lock`),
//! the static complement to the runtime lockdep auditor in
//! `third_party/parking_lot`. See DESIGN.md "Static analysis &
//! concurrency auditing".
//!
//! Findings ratchet against a committed baseline (`lint-baseline.txt`):
//! pre-existing violations are tracked, new ones fail `--check`. Inline
//! escape hatch: `// svq-lint: allow(<rule>)` on or above the line.
//!
//! The scanner is hand-rolled in the style of `svq-query`'s SQL lexer —
//! no syn, no rustc, no dependencies — because the container this repo
//! builds in is fully offline.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod guards;
pub mod ir;
pub mod lockgraph;
pub mod regions;
pub mod rules;
pub mod scanner;
pub mod walk;

pub use baseline::{Baseline, CheckResult};
pub use lockgraph::StaticLockGraph;
pub use rules::{FileContext, Finding, Rule};

use std::io;
use std::path::Path;

/// Lint a single source text under the given context (exposed for the
/// fixture self-tests). Token rules only — the workspace-global
/// concurrency passes need every file at once.
pub fn lint_source(source: &str, ctx: &FileContext) -> Vec<Finding> {
    let scanned = scanner::scan(source);
    let mut findings = Vec::new();
    rules::lint_tokens(&scanned, ctx, &mut findings);
    findings
}

/// Lint the whole workspace rooted at `root`: the per-file token rules,
/// the crate-root `forbid-unsafe` check, and the workspace-global
/// concurrency passes (call graph → lock-order cycles,
/// blocking-under-lock). Findings are sorted by (path, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_full(root).map(|(findings, _)| findings)
}

/// [`lint_workspace`] plus the static lock graph it built (for `--format
/// json` statistics and the runtime cross-check).
pub fn lint_workspace_full(root: &Path) -> io::Result<(Vec<Finding>, StaticLockGraph)> {
    // Read and scan every source exactly once; both the token rules and
    // the concurrency passes consume the same scanned units.
    let mut units = Vec::new();
    for rel in walk::workspace_sources(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        units.push(ir::SourceUnit {
            ctx: FileContext::from_rel_path(&rel),
            scanned: scanner::scan(&source),
        });
    }

    let mut findings = Vec::new();
    for unit in &units {
        rules::lint_tokens(&unit.scanned, &unit.ctx, &mut findings);
    }
    for rel in walk::crate_roots(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let ctx = FileContext::from_rel_path(&rel);
        let scanned = scanner::scan(&source);
        rules::forbid_unsafe_rule(&scanned, &ctx, &mut findings);
    }

    let (concurrency, graph) = analyze_units(&units);
    findings.extend(concurrency);

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule)
            .cmp(&(&b.path, b.line, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok((findings, graph))
}

/// Build only the static lock graph of the workspace at `root` — the
/// entry point the runtime cross-check tests use.
pub fn lock_graph(root: &Path) -> io::Result<StaticLockGraph> {
    let mut units = Vec::new();
    for rel in walk::workspace_sources(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        units.push(ir::SourceUnit {
            ctx: FileContext::from_rel_path(&rel),
            scanned: scanner::scan(&source),
        });
    }
    Ok(analyze_units(&units).1)
}

/// Run the concurrency passes over pre-scanned units.
fn analyze_units(units: &[ir::SourceUnit]) -> (Vec<Finding>, StaticLockGraph) {
    let ws = ir::build(units);
    let events: Vec<Vec<guards::Event>> = ws
        .fns
        .iter()
        .map(|f| guards::function_events(&ws.files[f.file], f, &units[f.file].scanned.tokens))
        .collect();
    lockgraph::analyze(units, &ws, &events)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// containing a `Cargo.toml` with a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
