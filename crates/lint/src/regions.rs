//! Test-region tracking over a token stream.
//!
//! The rules exempt test code: `#[cfg(test)] mod tests { … }`, `#[test]`
//! functions, and whole files under a `tests/` directory. This pass walks
//! the token stream once, recognises test attributes, and marks every
//! token inside the brace-balanced item that follows one.

use crate::scanner::{Token, TokenKind};

/// `mask[i]` is true iff `tokens[i]` lies inside test-only code.
pub fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth = 0usize;
    // Depths at which an active test region began (nested regions stack).
    let mut region_starts: Vec<usize> = Vec::new();
    let mut pending_test_attr = false;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_op("#") {
            // Attribute: `#[…]` or `#![…]`. Collect its inner tokens.
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_op("!") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_op("[") {
                let mut attr_depth = 1usize;
                let attr_start = j + 1;
                j += 1;
                while j < tokens.len() && attr_depth > 0 {
                    if tokens[j].is_op("[") {
                        attr_depth += 1;
                    } else if tokens[j].is_op("]") {
                        attr_depth -= 1;
                    }
                    j += 1;
                }
                if is_test_attr(&tokens[attr_start..j.saturating_sub(1)]) {
                    pending_test_attr = true;
                }
                // The attribute's own tokens inherit the surrounding
                // region state.
                let in_region = !region_starts.is_empty();
                mask[i..j].fill(in_region);
                i = j;
                continue;
            }
        }

        match t.text.as_str() {
            "{" if t.kind == TokenKind::Op => {
                if pending_test_attr {
                    region_starts.push(depth);
                    pending_test_attr = false;
                }
                depth += 1;
            }
            "}" if t.kind == TokenKind::Op => {
                depth = depth.saturating_sub(1);
                mask[i] = !region_starts.is_empty();
                if region_starts.last() == Some(&depth) {
                    region_starts.pop();
                }
                i += 1;
                continue;
            }
            // `#[cfg(test)] mod tests;` / `#[cfg(test)] use …;` — the
            // item ends without a block; drop the pending marker.
            ";" if t.kind == TokenKind::Op && region_starts.is_empty() => {
                pending_test_attr = false;
            }
            _ => {}
        }
        mask[i] = !region_starts.is_empty() || pending_test_attr;
        i += 1;
    }
    mask
}

/// Does this attribute body mark test-only code? Matches `test`,
/// `cfg(test)` and the common composite forms, while rejecting
/// `cfg(not(test))`.
fn is_test_attr(inner: &[Token]) -> bool {
    let joined: String = inner.iter().map(|t| t.text.as_str()).collect();
    if joined == "test" {
        return true;
    }
    if !joined.starts_with("cfg(") {
        return false;
    }
    if joined.contains("not(test)") {
        return false;
    }
    joined.contains("(test)") || joined.contains("(test,") || joined.contains(",test)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn masked_idents(src: &str) -> Vec<(String, bool)> {
        let f = scan(src);
        let mask = test_region_mask(&f.tokens);
        f.tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.kind == TokenKind::Ident)
            .map(|(t, m)| (t.text.clone(), *m))
            .collect()
    }

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n fn fake() {}\n}\nfn after() {}";
        let ids = masked_idents(src);
        assert!(ids.contains(&("real".into(), false)));
        assert!(ids.contains(&("fake".into(), true)));
        assert!(ids.contains(&("after".into(), false)));
    }

    #[test]
    fn test_fn_attribute_is_a_region() {
        let src = "#[test]\nfn unit() { body(); }\nfn library() {}";
        let ids = masked_idents(src);
        assert!(ids.contains(&("body".into(), true)));
        assert!(ids.contains(&("library".into(), false)));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(not(test))]\nfn shipping() { code(); }";
        let ids = masked_idents(src);
        assert!(ids.contains(&("code".into(), false)));
    }

    #[test]
    fn external_test_mod_decl_does_not_leak() {
        let src = "#[cfg(test)]\nmod tests;\nfn library() { work(); }";
        let ids = masked_idents(src);
        assert!(ids.contains(&("work".into(), false)));
    }

    #[test]
    fn nested_braces_stay_inside_the_region() {
        let src = "#[cfg(test)]\nmod tests { fn a() { if x { y(); } } }\nfn out() {}";
        let ids = masked_idents(src);
        assert!(ids.contains(&("y".into(), true)));
        assert!(ids.contains(&("out".into(), false)));
    }
}
