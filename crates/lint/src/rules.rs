//! The five workspace invariants, as token-stream rules.
//!
//! Every rule is a deliberate approximation: the linter sees tokens, not
//! types. The approximations are chosen so that false negatives are
//! possible but false positives are rare — and the rare false positive is
//! silenced inline with `// svq-lint: allow(<rule>)`, which keeps the
//! exception visible at the site it excuses.

use crate::scanner::{ScannedFile, Token, TokenKind};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates (directory names under `crates/`) bound by the determinism
/// contract: identical inputs must produce byte-identical outputs, so no
/// wall-clock reads and no hash-order iteration. Timing goes through the
/// injected `svq_types::Clock`.
pub const DETERMINISM_CRATES: [&str; 3] = ["types", "scanstats", "core"];

/// Crates allowed to print to stdout/stderr (user-facing binaries).
pub const PRINT_CRATES: [&str; 3] = ["cli", "bench", "lint"];

/// Crates allowed to log to stderr but not stdout: long-lived daemons
/// whose stdout belongs to whoever launched them. `svq-serve` logs
/// operational events with `eprintln!`; a `println!` there would corrupt
/// any pipeline consuming the launcher's stdout (e.g. the CI smoke slice
/// reading the bound address).
pub const STDERR_CRATES: [&str; 1] = ["server"];

/// HashMap/HashSet methods whose results depend on hash-iteration order.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// A lint rule identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads or hash-order iteration in a determinism-bound
    /// crate.
    Determinism,
    /// `unwrap()`, message-less `expect("")`, `panic!`, `todo!`,
    /// `unimplemented!` in non-test code.
    PanicDiscipline,
    /// `==` / `!=` against a float literal in non-test code.
    FloatEq,
    /// `println!`-family output outside the binary crates.
    PrintDiscipline,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// A cycle in the static lock-order graph (potential ABBA deadlock
    /// over *all* paths, not just executed ones).
    LockCycle,
    /// A blocking operation (sleep, join, bounded-channel send/recv,
    /// condvar wait, file/socket I/O) reached — directly or through the
    /// call graph — while a guard region is live.
    BlockingUnderLock,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::Determinism,
        Rule::PanicDiscipline,
        Rule::FloatEq,
        Rule::PrintDiscipline,
        Rule::ForbidUnsafe,
        Rule::LockCycle,
        Rule::BlockingUnderLock,
    ];

    /// Stable name used in baselines and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicDiscipline => "panic",
            Rule::FloatEq => "float-eq",
            Rule::PrintDiscipline => "print",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::LockCycle => "lock-cycle",
            Rule::BlockingUnderLock => "blocking-under-lock",
        }
    }

    /// Parse a baseline/suppression name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Path relative to the workspace root.
    pub path: PathBuf,
    pub line: u32,
    pub message: String,
    /// Witness path for graph-derived findings (`lock-cycle`,
    /// transitive `blocking-under-lock`): one `file:line` step per hop.
    pub witness: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Per-file lint context derived from its workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path (used in findings).
    pub path: PathBuf,
    /// Directory name under `crates/`, if any (`core`, `cli`, …).
    pub crate_name: Option<String>,
    /// Whole file is test code (under a `tests/` directory).
    pub test_file: bool,
}

impl FileContext {
    /// Derive the context from a workspace-relative path.
    pub fn from_rel_path(rel: &Path) -> Self {
        let comps: Vec<String> = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        let crate_name = (comps.len() >= 2 && comps[0] == "crates").then(|| comps[1].clone());
        let test_file = comps.iter().any(|c| c == "tests");
        Self {
            path: rel.to_path_buf(),
            crate_name,
            test_file,
        }
    }

    fn in_determinism_crate(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| DETERMINISM_CRATES.contains(&c))
    }

    fn may_print(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| PRINT_CRATES.contains(&c))
    }

    fn may_log_stderr(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| STDERR_CRATES.contains(&c))
    }
}

/// Run every token-level rule over one scanned file.
pub fn lint_tokens(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    let mask = crate::regions::test_region_mask(&file.tokens);
    let non_test = |i: usize| -> bool { !ctx.test_file && !mask.get(i).copied().unwrap_or(false) };

    panic_rule(file, ctx, &non_test, out);
    float_rule(file, ctx, &non_test, out);
    print_rule(file, ctx, &non_test, out);
    if ctx.in_determinism_crate() {
        determinism_rule(file, ctx, &non_test, out);
    }
}

fn emit(
    out: &mut Vec<Finding>,
    file: &ScannedFile,
    ctx: &FileContext,
    rule: Rule,
    line: u32,
    message: String,
) {
    if !file.suppressed(rule.name(), line) {
        out.push(Finding {
            rule,
            path: ctx.path.clone(),
            line,
            message,
            witness: Vec::new(),
        });
    }
}

/// `unwrap()`, `expect("")`, `panic!`, `todo!`, `unimplemented!` outside
/// tests. `unreachable!` is allowed: it documents an invariant rather than
/// an unhandled error path, and the message is the proof obligation.
fn panic_rule(
    file: &ScannedFile,
    ctx: &FileContext,
    non_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    let t = &file.tokens;
    for i in 0..t.len() {
        if !non_test(i) || t[i].kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && t[i - 1].is_op(".");
        match t[i].text.as_str() {
            "unwrap" if prev_dot && is_call_no_args(t, i) => emit(
                out,
                file,
                ctx,
                Rule::PanicDiscipline,
                t[i].line,
                "`.unwrap()` in non-test code; handle the error or use \
                 `.expect(\"<invariant>\")` with the reason it cannot fail"
                    .into(),
            ),
            "expect" if prev_dot && is_call_empty_str(t, i) => emit(
                out,
                file,
                ctx,
                Rule::PanicDiscipline,
                t[i].line,
                "`.expect(\"\")` with an empty message; state the invariant that \
                 makes the failure impossible"
                    .into(),
            ),
            "panic" | "todo" | "unimplemented" if t.get(i + 1).is_some_and(|n| n.is_op("!")) => {
                emit(
                    out,
                    file,
                    ctx,
                    Rule::PanicDiscipline,
                    t[i].line,
                    format!(
                        "`{}!` in non-test code; return an error or use \
                         `unreachable!` with a proof of the invariant",
                        t[i].text
                    ),
                )
            }
            _ => {}
        }
    }
}

/// `==` / `!=` where one side is a float literal. Exact float comparison
/// is order- and optimisation-sensitive; compare against a tolerance, or
/// suppress at sites where exactness is the point (e.g. checking an
/// untouched sentinel).
fn float_rule(
    file: &ScannedFile,
    ctx: &FileContext,
    non_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    let t = &file.tokens;
    for i in 0..t.len() {
        if !non_test(i) || !(t[i].is_op("==") || t[i].is_op("!=")) {
            continue;
        }
        let float_neighbour = (i > 0 && t[i - 1].kind == TokenKind::Float)
            || t.get(i + 1).is_some_and(|n| n.kind == TokenKind::Float);
        if float_neighbour {
            emit(
                out,
                file,
                ctx,
                Rule::FloatEq,
                t[i].line,
                format!(
                    "`{}` against a float literal; use a tolerance \
                     (`(a - b).abs() < eps`) or justify exactness inline",
                    t[i].text
                ),
            );
        }
    }
}

/// `println!` / `print!` / `eprintln!` / `eprint!` / `dbg!` outside the
/// binary crates ({cli, bench, lint}); library crates report through
/// return values and metrics, not stdout. Daemon crates ({server}) may
/// log to stderr (`eprintln!`/`eprint!`) but never own stdout.
fn print_rule(
    file: &ScannedFile,
    ctx: &FileContext,
    non_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if ctx.may_print() {
        return;
    }
    let stderr_ok = ctx.may_log_stderr();
    let t = &file.tokens;
    for i in 0..t.len() {
        if !non_test(i) || t[i].kind != TokenKind::Ident {
            continue;
        }
        let name = t[i].text.as_str();
        let stdout_macro = matches!(name, "println" | "print" | "dbg");
        let stderr_macro = matches!(name, "eprintln" | "eprint");
        if !(stdout_macro || stderr_macro) || !t.get(i + 1).is_some_and(|n| n.is_op("!")) {
            continue;
        }
        if stderr_macro && stderr_ok {
            continue;
        }
        let message = if stderr_ok {
            format!(
                "`{name}!` in a stderr-only daemon crate; stdout belongs \
                 to the launcher — log with `eprintln!`"
            )
        } else {
            format!("`{name}!` in a library crate; only cli/bench/lint own stdout")
        };
        emit(out, file, ctx, Rule::PrintDiscipline, t[i].line, message);
    }
}

/// Wall-clock reads (`Instant`, `SystemTime`) and HashMap/HashSet
/// iteration in determinism-bound crates. Hash containers are fine for
/// lookup; *iterating* one feeds hash-order (randomised per process) into
/// results. Identifier→hash-type tracking is textual: a binding, field or
/// parameter whose declared type or initialiser mentions `HashMap`/`HashSet`
/// marks that name for the rest of the file.
fn determinism_rule(
    file: &ScannedFile,
    ctx: &FileContext,
    non_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    let t = &file.tokens;
    let hash_idents = collect_hash_idents(t);
    let mut i = 0;
    while i < t.len() {
        if !non_test(i) {
            i += 1;
            continue;
        }
        let tok = &t[i];
        // Wall-clock types, including `use` imports.
        if tok.is_ident("Instant") || tok.is_ident("SystemTime") {
            emit(
                out,
                file,
                ctx,
                Rule::Determinism,
                tok.line,
                format!(
                    "`{}` in a determinism-bound crate; inject `svq_types::Clock` \
                     and take `WallClock` only at the boundary",
                    tok.text
                ),
            );
            i += 1;
            continue;
        }
        // `<hash ident> . <iteration method> (`
        if tok.kind == TokenKind::Ident
            && hash_idents.contains(&tok.text)
            && t.get(i + 1).is_some_and(|n| n.is_op("."))
            && t.get(i + 2).is_some_and(|n| {
                n.kind == TokenKind::Ident && HASH_ITER_METHODS.contains(&n.text.as_str())
            })
            && t.get(i + 3).is_some_and(|n| n.is_op("("))
        {
            emit(
                out,
                file,
                ctx,
                Rule::Determinism,
                tok.line,
                format!(
                    "iterating hash-ordered `{}` (`.{}()`); use BTreeMap/BTreeSet \
                     or collect-and-sort first",
                    tok.text,
                    t[i + 2].text
                ),
            );
            i += 4;
            continue;
        }
        // `for … in <expr mentioning a hash ident> {`. A hash ident with a
        // method call after it is left to the method check above (resuming
        // at `in_idx + 1` re-scans the span), so each site is flagged once.
        if tok.is_ident("for") {
            if let Some(in_idx) = (i + 1..t.len().min(i + 12)).find(|&j| t[j].is_ident("in")) {
                let body = (in_idx + 1..t.len()).find(|&j| t[j].is_op("{"));
                if let Some(body_idx) = body {
                    for j in in_idx + 1..body_idx {
                        let direct_iteration = t[j].kind == TokenKind::Ident
                            && hash_idents.contains(&t[j].text)
                            && !t.get(j + 1).is_some_and(|n| n.is_op("."));
                        if direct_iteration {
                            emit(
                                out,
                                file,
                                ctx,
                                Rule::Determinism,
                                t[j].line,
                                format!(
                                    "`for` over hash-ordered `{}`; iteration order is \
                                     randomised per process",
                                    t[j].text
                                ),
                            );
                        }
                    }
                    i = in_idx + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Names declared with a HashMap/HashSet type or initialiser. Textual and
/// file-scoped — good enough for lint, suppressible where wrong.
fn collect_hash_idents(t: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident || !(t[i].text == "HashMap" || t[i].text == "HashSet") {
            continue;
        }
        // Walk backwards over the type/initialiser expression to the
        // introducing `name :` or `name =` (let binding, field, or param).
        let mut j = i;
        while j > 0 {
            j -= 1;
            let tok = &t[j];
            if tok.is_op(":") || tok.is_op("=") {
                if j > 0 && t[j - 1].kind == TokenKind::Ident {
                    names.insert(t[j - 1].text.clone());
                }
                break;
            }
            // Past a statement/item boundary: no binding to attribute.
            if tok.is_op(";") || tok.is_op("{") || tok.is_op("}") || tok.is_op(",") {
                break;
            }
        }
    }
    // Dataflow fixpoint: a binding whose initialiser is a bare move,
    // borrow, or clone of a known hash container is itself hash-ordered
    // (`let alias = scores;`), even though its own declaration never
    // mentions HashMap/HashSet. Iterate until no new names are learned —
    // aliases of aliases converge in a pass per link.
    loop {
        let mut grew = false;
        for i in 0..t.len() {
            if !t[i].is_op("=") || i == 0 || t[i - 1].kind != TokenKind::Ident {
                continue;
            }
            // Skip leading borrows: `= &map;` aliases like `= map;`.
            let mut j = i + 1;
            while t.get(j).is_some_and(|n| n.is_op("&") || n.is_ident("mut")) {
                j += 1;
            }
            let Some(src) = t.get(j) else { continue };
            if src.kind != TokenKind::Ident || !names.contains(&src.text) {
                continue;
            }
            // Optional `.clone()` — still the same hash-ordered contents.
            let mut end = j + 1;
            if t.get(end).is_some_and(|n| n.is_op("."))
                && t.get(end + 1).is_some_and(|n| n.is_ident("clone"))
                && t.get(end + 2).is_some_and(|n| n.is_op("("))
                && t.get(end + 3).is_some_and(|n| n.is_op(")"))
            {
                end += 4;
            }
            if !t.get(end).is_some_and(|n| n.is_op(";")) {
                continue;
            }
            if names.insert(t[i - 1].text.clone()) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    names
}

/// `t[i]` is a call with no arguments: `ident ( )`.
fn is_call_no_args(t: &[Token], i: usize) -> bool {
    t.get(i + 1).is_some_and(|a| a.is_op("(")) && t.get(i + 2).is_some_and(|b| b.is_op(")"))
}

/// `t[i]` is a call whose sole argument is the empty string literal.
fn is_call_empty_str(t: &[Token], i: usize) -> bool {
    t.get(i + 1).is_some_and(|a| a.is_op("("))
        && t.get(i + 2)
            .is_some_and(|s| s.kind == TokenKind::Str && s.text.is_empty())
        && t.get(i + 3).is_some_and(|c| c.is_op(")"))
}

/// Crate-root check: the root source of every workspace crate must carry
/// `#![forbid(unsafe_code)]`. Token-level so formatting cannot fool it.
pub fn forbid_unsafe_rule(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    let t = &file.tokens;
    let has = (0..t.len()).any(|i| {
        t[i].is_ident("forbid")
            && t.get(i + 1).is_some_and(|n| n.is_op("("))
            && t.get(i + 2).is_some_and(|n| n.is_ident("unsafe_code"))
    });
    if !has && !file.suppressed(Rule::ForbidUnsafe.name(), 1) {
        out.push(Finding {
            rule: Rule::ForbidUnsafe,
            path: ctx.path.clone(),
            line: 1,
            message: "crate root missing `#![forbid(unsafe_code)]`".into(),
            witness: Vec::new(),
        });
    }
}
