//! Workspace call graph: resolve the call expressions the guard walker
//! collected against the function index the IR built.
//!
//! Resolution is ranked, not exhaustive:
//!
//! 1. **Qualified paths** — `svq_query::execute_offline`, `crate::mux::feed`,
//!    `Baseline::parse`, `scenario::find` — matched as qualified-name
//!    suffixes, with crate aliases (`svq_exec` → `exec`, `svq_serve` →
//!    `server`, `crate` → the caller's crate) normalised first.
//! 2. **Method calls** — resolved through the receiver type when known
//!    (`self.m()` → the impl owner; `session.m()` → a local/param type
//!    hint), else accepted only when the method name is unique in the
//!    whole workspace.
//! 3. Everything else is **unresolved** and logged as such — the
//!    conservative fallback the summary statistics surface, so precision
//!    loss is visible rather than silent.

use crate::guards::{CallRef, Event, EventKind};
use crate::ir::{FnIr, WorkspaceIr};
use std::collections::{BTreeMap, BTreeSet};

/// Method names so common in std/core (atomics, collections, channels,
/// iterators) that an untyped receiver almost certainly names a std type,
/// not the one workspace method that happens to share the name. The
/// unique-in-workspace fallback is disabled for these; typed receivers
/// still resolve normally. Without this, `counter.load(Ordering::Relaxed)`
/// links to `storage::catalog::IngestedVideo::load` and every metrics
/// read appears to do file I/O.
const COMMON_STD_METHODS: &[&str] = &[
    "load", "store", "swap", "take", "get", "set", "push", "pop", "insert", "remove", "len",
    "clone", "iter", "next", "send", "recv", "clear", "drain", "contains", "flush", "new",
    "default", "fmt", "drop", "eq", "cmp", "hash", "is_empty", "as_ref", "get_mut", "entry",
];

/// One call that could not be linked to a workspace function.
#[derive(Debug, Clone)]
pub struct UnresolvedCall {
    pub caller: String,
    pub name: String,
    pub line: u32,
}

/// The resolved call graph.
pub struct CallGraph {
    /// Per caller function: `(event index, callee fn indices)`.
    pub calls: Vec<Vec<(usize, Vec<usize>)>>,
    pub resolved_edges: usize,
    pub unresolved: Vec<UnresolvedCall>,
}

/// Resolve every call event of every function.
pub fn resolve(ir: &WorkspaceIr, events: &[Vec<Event>]) -> CallGraph {
    let index = Index::build(ir);
    let mut graph = CallGraph {
        calls: Vec::with_capacity(ir.fns.len()),
        resolved_edges: 0,
        unresolved: Vec::new(),
    };
    for (fi, f) in ir.fns.iter().enumerate() {
        let mut per_fn = Vec::new();
        for (ei, ev) in events[fi].iter().enumerate() {
            let EventKind::Call(call) = &ev.kind else {
                continue;
            };
            let callees = index.resolve(call, f);
            if callees.is_empty() {
                // Names that exist nowhere in the workspace are std/dep
                // calls, not resolution failures worth logging; likewise
                // untyped methods with ubiquitous std names.
                let name = call.segments.last().map(String::as_str).unwrap_or("");
                if index.by_name.contains_key(name)
                    && !(call.method && COMMON_STD_METHODS.contains(&name))
                {
                    graph.unresolved.push(UnresolvedCall {
                        caller: f.qual.clone(),
                        name: call.segments.join("::"),
                        line: call.line,
                    });
                }
            } else {
                graph.resolved_edges += callees.len();
                per_fn.push((ei, callees));
            }
        }
        graph.calls.push(per_fn);
    }
    graph
}

struct Index<'a> {
    ir: &'a WorkspaceIr,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    crates: BTreeSet<&'a str>,
}

impl<'a> Index<'a> {
    fn build(ir: &'a WorkspaceIr) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut crates = BTreeSet::new();
        for (i, f) in ir.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
            crates.insert(f.krate.as_str());
        }
        Self {
            ir,
            by_name,
            crates,
        }
    }

    /// Normalise a leading path segment that names a crate: `crate` → the
    /// caller's crate, `svq_exec`/`svq_serve` → the crate directory name.
    fn crate_alias(&self, seg: &str, caller: &FnIr) -> Option<String> {
        if seg == "crate" {
            return Some(caller.krate.clone());
        }
        if self.crates.contains(seg) {
            return Some(seg.to_string());
        }
        if let Some(stripped) = seg.strip_prefix("svq_") {
            let dir = if stripped == "serve" {
                "server"
            } else {
                stripped
            };
            if self.crates.contains(dir) {
                return Some(dir.to_string());
            }
        }
        None
    }

    fn resolve(&self, call: &CallRef, caller: &FnIr) -> Vec<usize> {
        if call.method {
            self.resolve_method(call, caller)
        } else if call.segments.len() > 1 {
            self.resolve_path(call, caller)
        } else {
            self.resolve_free(call, caller)
        }
    }

    fn resolve_method(&self, call: &CallRef, caller: &FnIr) -> Vec<usize> {
        let name = call.segments.last().map(String::as_str).unwrap_or("");
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.ir.fns[i].owner.is_some())
            .collect();
        if let Some(ty) = &call.receiver_type {
            let typed: Vec<usize> = methods
                .iter()
                .copied()
                .filter(|&i| self.ir.fns[i].owner.as_deref() == Some(ty.as_str()))
                .collect();
            if !typed.is_empty() {
                return prefer_crate(self.ir, typed, caller);
            }
        }
        // Unique in the workspace: safe to link even without a type —
        // unless the name collides with a ubiquitous std method, where
        // the untyped receiver is far more likely a std type.
        if methods.len() == 1 && !COMMON_STD_METHODS.contains(&name) {
            return methods;
        }
        Vec::new()
    }

    fn resolve_path(&self, call: &CallRef, caller: &FnIr) -> Vec<usize> {
        let name = call.segments.last().map(String::as_str).unwrap_or("");
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        // Normalise the leading segment; `self::`/`super::` reduce to
        // plain suffix matching on the remaining segments, and `Self::`
        // names the caller's impl owner.
        let mut segs: Vec<String> = call
            .segments
            .iter()
            .filter(|s| *s != "self" && *s != "super")
            .map(|s| {
                if s == "Self" {
                    caller.owner.clone().unwrap_or_else(|| s.clone())
                } else {
                    s.clone()
                }
            })
            .collect();
        let crate_prefix = segs.first().and_then(|s| self.crate_alias(s, caller));
        if let (Some(alias), true) = (&crate_prefix, segs.len() > 1) {
            segs[0] = alias.clone();
        }
        let matches: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                let f = &self.ir.fns[i];
                let mut quals: Vec<&str> = vec![f.krate.as_str()];
                quals.extend(f.module.iter().map(String::as_str));
                if let Some(o) = &f.owner {
                    quals.push(o.as_str());
                }
                quals.push(f.name.as_str());
                if crate_prefix.is_some() {
                    // Crate-qualified: crate must match, the rest is a
                    // suffix of the in-crate path (re-exports flatten
                    // modules, so `svq_query::execute_offline` matches
                    // `query::exec::execute_offline`).
                    f.krate == segs[0] && ends_with(&quals[1..], &segs[1..])
                } else {
                    ends_with(&quals, &segs)
                }
            })
            .collect();
        prefer_crate(self.ir, matches, caller)
    }

    fn resolve_free(&self, call: &CallRef, caller: &FnIr) -> Vec<usize> {
        let name = call.segments.last().map(String::as_str).unwrap_or("");
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        let free: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.ir.fns[i].owner.is_none())
            .collect();
        // Same module beats same crate beats global uniqueness.
        let same_module: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&i| {
                self.ir.fns[i].krate == caller.krate && self.ir.fns[i].module == caller.module
            })
            .collect();
        if !same_module.is_empty() {
            return same_module;
        }
        let same_crate: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&i| self.ir.fns[i].krate == caller.krate)
            .collect();
        if same_crate.len() == 1 {
            return same_crate;
        }
        if free.len() == 1 {
            return free;
        }
        Vec::new()
    }
}

/// When several candidates match, prefer the caller's own crate; a
/// cross-crate tie keeps every candidate (conservative over-approximation
/// for the lock graph).
fn prefer_crate(ir: &WorkspaceIr, matches: Vec<usize>, caller: &FnIr) -> Vec<usize> {
    if matches.len() <= 1 {
        return matches;
    }
    let same: Vec<usize> = matches
        .iter()
        .copied()
        .filter(|&i| ir.fns[i].krate == caller.krate)
        .collect();
    if !same.is_empty() {
        return same;
    }
    matches
}

fn ends_with(quals: &[&str], segs: &[String]) -> bool {
    if segs.len() > quals.len() {
        return false;
    }
    quals[quals.len() - segs.len()..]
        .iter()
        .zip(segs)
        .all(|(q, s)| *q == s.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards;
    use crate::ir::{self, SourceUnit};
    use crate::rules::FileContext;
    use crate::scanner;

    fn workspace(files: &[(&str, &str)]) -> (Vec<SourceUnit>, WorkspaceIr) {
        let units: Vec<SourceUnit> = files
            .iter()
            .map(|(p, s)| SourceUnit {
                ctx: FileContext::from_rel_path(std::path::Path::new(p)),
                scanned: scanner::scan(s),
            })
            .collect();
        let ir = ir::build(&units);
        (units, ir)
    }

    fn resolve_all(units: &[SourceUnit], ir: &WorkspaceIr) -> CallGraph {
        let events: Vec<Vec<Event>> = ir
            .fns
            .iter()
            .map(|f| guards::function_events(&ir.files[f.file], f, &units[f.file].scanned.tokens))
            .collect();
        resolve(ir, &events)
    }

    fn callee_names(ir: &WorkspaceIr, graph: &CallGraph, caller: &str) -> Vec<String> {
        let fi = ir
            .fns
            .iter()
            .position(|f| f.qual == caller)
            .expect("caller");
        graph.calls[fi]
            .iter()
            .flat_map(|(_, cs)| cs.iter().map(|&c| ir.fns[c].qual.clone()))
            .collect()
    }

    #[test]
    fn self_methods_resolve_to_the_impl_owner() {
        let (units, ir) = workspace(&[(
            "crates/exec/src/mux.rs",
            r#"
            impl Mux {
                fn outer(&self) { self.inner(); }
                fn inner(&self) {}
            }
            "#,
        )]);
        let g = resolve_all(&units, &ir);
        assert_eq!(
            callee_names(&ir, &g, "exec::mux::Mux::outer"),
            ["exec::mux::Mux::inner"]
        );
    }

    #[test]
    fn typed_receivers_resolve_cross_file() {
        let (units, ir) = workspace(&[
            (
                "crates/exec/src/mux.rs",
                "fn drive(session: &Arc<Session>) { session.push(); }",
            ),
            (
                "crates/exec/src/session.rs",
                "impl Session { pub fn push(&self) {} } impl Other { pub fn push(&self) {} }",
            ),
        ]);
        let g = resolve_all(&units, &ir);
        assert_eq!(
            callee_names(&ir, &g, "exec::mux::drive"),
            ["exec::session::Session::push"]
        );
    }

    #[test]
    fn crate_qualified_paths_match_through_reexports() {
        let (units, ir) = workspace(&[
            (
                "crates/server/src/server.rs",
                "fn handle() { svq_query::execute_offline(); }",
            ),
            ("crates/query/src/exec.rs", "pub fn execute_offline() {}"),
        ]);
        let g = resolve_all(&units, &ir);
        assert_eq!(
            callee_names(&ir, &g, "server::server::handle"),
            ["query::exec::execute_offline"]
        );
    }

    #[test]
    fn ambiguous_untyped_methods_stay_unresolved() {
        let (units, ir) = workspace(&[
            (
                "crates/exec/src/a.rs",
                "fn f(x: &Unknowable) { x.run(); } impl A { fn run(&self) {} }",
            ),
            ("crates/exec/src/b.rs", "impl B { fn run(&self) {} }"),
        ]);
        let g = resolve_all(&units, &ir);
        assert!(callee_names(&ir, &g, "exec::a::f").is_empty());
        assert_eq!(g.unresolved.len(), 1);
        assert_eq!(g.unresolved[0].name, "run");
    }

    #[test]
    fn common_std_method_names_never_resolve_untyped() {
        // `counter.load(...)` is an atomic read, not the catalog loader,
        // even though `load` is unique in this workspace.
        let (units, ir) = workspace(&[
            (
                "crates/exec/src/metrics.rs",
                "fn observe(counter: &AtomicU64) { counter.load(Ordering::Relaxed); }",
            ),
            (
                "crates/storage/src/catalog.rs",
                "impl IngestedVideo { pub fn load(&self, x: u32) {} }",
            ),
        ]);
        let g = resolve_all(&units, &ir);
        assert!(callee_names(&ir, &g, "exec::metrics::observe").is_empty());
        // Not logged as unresolved either: it is a std call, not a miss.
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn free_functions_prefer_the_same_module() {
        let (units, ir) = workspace(&[
            (
                "crates/sim/src/runner.rs",
                "fn go() { mix(42); } fn mix(x: u64) {}",
            ),
            ("crates/sim/src/rng.rs", "pub fn mix(x: u64) {}"),
        ]);
        let g = resolve_all(&units, &ir);
        assert_eq!(
            callee_names(&ir, &g, "sim::runner::go"),
            ["sim::runner::mix"]
        );
    }
}
