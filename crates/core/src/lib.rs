//! # svq-core
//!
//! The paper's primary contribution: query processing over videos with
//! actions and objects as first-class predicates.
//!
//! * [`online`] — the streaming case (§3): [`online::Svaq`] (Algorithm 1,
//!   static critical values from an a-priori background probability) and
//!   [`online::Svaqd`] (Algorithm 3, dynamic background estimation via the
//!   kernel estimator of Eq. 6). Both convert noisy per-frame / per-shot
//!   model predictions into per-clip indicators through scan-statistic
//!   critical values (Eqs. 1-3) and merge positive clips into result
//!   sequences (Eq. 4).
//! * [`offline`] — the repository case (§4): ingestion-time metadata
//!   (moved to `svq-storage`) is consumed by [`offline::Rvaq`]
//!   (Algorithm 4), a top-k engine over user scoring functions driven by
//!   the [`offline::TbClip`] iterator (Algorithm 5), plus the comparison
//!   baselines `FaTopK`, `RvaqNoSkip` and `PqTraverse` of §5.1.
//! * [`scoring`] — the scoring-function algebra of §4.1 (`h`, `g`, `f`,
//!   `⊙`) with the paper's §5 instances.
//! * [`expr`] — the footnote 2-4 extensions: conjunctions of multiple
//!   actions, disjunctions in CNF, and spatial-relationship predicates.

#![forbid(unsafe_code)]

pub mod expr;
pub mod offline;
pub mod online;

/// The scoring-function algebra of §4.1 (re-exported from `svq-types`,
/// where it lives so the storage layer can consume it without a cycle).
pub use svq_types::scoring;

pub use offline::{FaTopK, PqTraverse, Rvaq, RvaqNoSkip, TopKResult};
pub use online::{OnlineConfig, OnlineResult, Svaq, Svaqd};
pub use scoring::{PaperScoring, ScoringFunctions};
