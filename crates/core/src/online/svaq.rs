//! SVAQ — Algorithm 1.
//!
//! The static online algorithm: critical values are derived once (Eq. 5)
//! from an a-priori background probability and never change. Its accuracy
//! therefore depends on how well `p0` matches the stream's true noise floor
//! — the sensitivity Figure 2 demonstrates and SVAQD removes.

use super::config::OnlineConfig;
use super::indicator::{evaluate_clip, ClipEvaluation, CriticalValues};
use super::merger::SequenceMerger;
use super::OnlineResult;
use std::time::Duration;
use svq_scanstats::critical_value;
use svq_types::{ActionQuery, ClipInterval, Clock, VideoGeometry};
use svq_vision::stream::ClipAccess;
use svq_vision::{VideoStream, WallClock};

/// Algorithm 1: streaming action-query processing with static critical
/// values.
#[derive(Debug)]
pub struct Svaq {
    query: ActionQuery,
    config: OnlineConfig,
    criticals: CriticalValues,
    merger: SequenceMerger,
    evaluations: Vec<ClipEvaluation>,
}

impl Svaq {
    /// Initialise from background probabilities: `p_obj` for every object
    /// predicate and `p_act` for the action (the paper's
    /// `k_crit_o_init` / `k_crit_a_init` derivation of §3.2).
    pub fn new(
        query: ActionQuery,
        geometry: VideoGeometry,
        config: OnlineConfig,
        p_obj: f64,
        p_act: f64,
    ) -> Self {
        let w_obj = geometry.frames_per_clip();
        let w_act = geometry.shots_per_clip;
        let k_obj = critical_value(p_obj, w_obj, config.horizon_windows, config.alpha);
        let k_act = critical_value(p_act, w_act, config.horizon_windows, config.alpha);
        let criticals = CriticalValues {
            objects: vec![k_obj; query.objects.len()],
            action: k_act,
        };
        Self::with_criticals(query, config, criticals)
    }

    /// Initialise with explicit critical values (each predicate may have its
    /// own, as the paper notes below Algorithm 1).
    pub fn with_criticals(
        query: ActionQuery,
        config: OnlineConfig,
        criticals: CriticalValues,
    ) -> Self {
        assert_eq!(
            criticals.objects.len(),
            query.objects.len(),
            "one critical value per object predicate"
        );
        Self {
            query,
            config,
            criticals,
            merger: SequenceMerger::new(),
            evaluations: Vec::new(),
        }
    }

    /// The critical values in force.
    pub fn criticals(&self) -> &CriticalValues {
        &self.criticals
    }

    /// Process the next clip; returns a result sequence if this clip closed
    /// one (results stream out with bounded delay).
    pub fn push_clip<C: ClipAccess>(&mut self, view: &mut C) -> Option<ClipInterval> {
        let eval = evaluate_clip(view, &self.query, &self.criticals, &self.config);
        let closed = self.merger.push(eval.clip, eval.positive);
        self.evaluations.push(eval);
        closed
    }

    /// End of stream: all result sequences plus the evaluation trace.
    pub fn finish(self) -> (Vec<ClipInterval>, Vec<ClipEvaluation>) {
        (self.merger.finish(), self.evaluations)
    }

    /// Convenience: run over a whole stream and collect the result,
    /// charging algorithm time from the platform clock.
    pub fn run(
        query: ActionQuery,
        stream: &mut VideoStream<'_>,
        config: OnlineConfig,
        p_obj: f64,
        p_act: f64,
    ) -> OnlineResult {
        Self::run_with_clock(query, stream, config, p_obj, p_act, &WallClock::new())
    }

    /// [`Svaq::run`] with an injected [`Clock`] — the only time source the
    /// algorithm reads, so a [`svq_types::ManualClock`] makes the full
    /// result (cost ledger included) byte-deterministic.
    pub fn run_with_clock(
        query: ActionQuery,
        stream: &mut VideoStream<'_>,
        config: OnlineConfig,
        p_obj: f64,
        p_act: f64,
        clock: &dyn Clock,
    ) -> OnlineResult {
        let mut svaq = Svaq::new(query, stream.geometry(), config, p_obj, p_act);
        let start = clock.now_nanos();
        while let Some(mut view) = stream.next_clip() {
            svaq.push_clip(&mut view);
        }
        stream
            .ledger_mut()
            .charge_algorithm(Duration::from_nanos(clock.nanos_since(start)));
        let (sequences, evaluations) = svaq.finish();
        OnlineResult {
            sequences,
            cost: *stream.ledger(),
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use svq_types::{ActionClass, BBox, FrameId, Interval, ObjectClass, TrackId, VideoId};
    use svq_vision::models::{DetectionOracle, ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};

    /// 20 clips; car & jumping together on clips 5..=9.
    fn oracle(suite: ModelSuite) -> DetectionOracle {
        oracle_seeded(suite, 21)
    }

    fn oracle_seeded(suite: ModelSuite, seed: u64) -> DetectionOracle {
        let mut gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 1_000);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(250), FrameId::new(499)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(250), FrameId::new(499)),
            salience: 1.0,
        });
        let confusion = SceneConfusion {
            objects: vec![(ObjectClass::named("car"), 1.0)],
            actions: vec![(ActionClass::named("jumping"), 1.0)],
        };
        DetectionOracle::new(Arc::new(gt), suite, &confusion, seed)
    }

    #[test]
    fn ideal_models_recover_exact_truth() {
        let oracle = oracle(ModelSuite::ideal());
        let mut stream = VideoStream::new(&oracle);
        let result = Svaq::run(
            ActionQuery::named("jumping", &["car"]),
            &mut stream,
            OnlineConfig::default(),
            1e-4,
            1e-4,
        );
        assert_eq!(
            result.sequences,
            vec![Interval::new(
                svq_types::ClipId::new(5),
                svq_types::ClipId::new(9)
            )]
        );
        assert_eq!(result.positive_clips(), 5);
    }

    #[test]
    fn realistic_models_find_the_episode_with_reasonable_p0() {
        let oracle = oracle(ModelSuite::accurate());
        let mut stream = VideoStream::new(&oracle);
        let result = Svaq::run(
            ActionQuery::named("jumping", &["car"]),
            &mut stream,
            OnlineConfig::default(),
            0.05,
            0.05,
        );
        // The episode (clips 5..=9) must be substantially covered, allowing
        // model-noise fragmentation.
        let truth = Interval::new(svq_types::ClipId::new(5), svq_types::ClipId::new(9));
        let covered: u64 = result.sequences.iter().map(|s| s.overlap_len(&truth)).sum();
        assert!(
            covered >= 3,
            "sequences {:?} miss the episode",
            result.sequences
        );
    }

    #[test]
    fn too_low_p0_floods_with_false_positives() {
        // With p0 = 1e-6 the object critical value is ~2 frames; the bursty
        // confusable noise (FPR ~0.2) then satisfies predicates everywhere.
        // Seed chosen so the noise realization produces clearly-extra
        // positives rather than sitting at the 5 genuine clips.
        let oracle = oracle_seeded(ModelSuite::accurate(), 4);
        let mut stream = VideoStream::new(&oracle);
        let result = Svaq::run(
            ActionQuery::named("jumping", &["car"]),
            &mut stream,
            OnlineConfig::default(),
            1e-6,
            1e-6,
        );
        // More positive clips than the 5 genuine ones.
        assert!(
            result.positive_clips() > 5,
            "expected noise-driven positives, got {}",
            result.positive_clips()
        );
    }

    #[test]
    fn streaming_emission_matches_batch_result() {
        let oracle = oracle(ModelSuite::accurate());
        let query = ActionQuery::named("jumping", &["car"]);
        let config = OnlineConfig::default();

        let mut s1 = VideoStream::new(&oracle);
        let batch = Svaq::run(query.clone(), &mut s1, config, 0.05, 0.05);

        let mut s2 = VideoStream::new(&oracle);
        let mut svaq = Svaq::new(query, s2.geometry(), config, 0.05, 0.05);
        let mut streamed = Vec::new();
        while let Some(mut view) = s2.next_clip() {
            if let Some(seq) = svaq.push_clip(&mut view) {
                streamed.push(seq);
            }
        }
        let (all, _) = svaq.finish();
        assert_eq!(all, batch.sequences);
        // Every streamed (early-emitted) sequence is a prefix of the final.
        assert_eq!(&all[..streamed.len()], &streamed[..]);
    }

    #[test]
    fn manual_clock_makes_algorithm_cost_deterministic() {
        let oracle = oracle(ModelSuite::accurate());
        let run = |step_ms: u64| {
            let mut stream = VideoStream::new(&oracle);
            let clock = svq_types::ManualClock::stepping(std::time::Duration::from_millis(step_ms));
            Svaq::run_with_clock(
                ActionQuery::named("jumping", &["car"]),
                &mut stream,
                OnlineConfig::default(),
                0.05,
                0.05,
                &clock,
            )
        };
        // The clock is read exactly twice (start and elapsed), so the
        // charged algorithm time is exactly one step — reproducibly.
        let a = run(2);
        let b = run(2);
        assert!(
            (a.cost.algorithm_ms - 2.0).abs() < 1e-9,
            "{}",
            a.cost.algorithm_ms
        );
        assert_eq!(a.cost.algorithm_ms.to_bits(), b.cost.algorithm_ms.to_bits());
        assert_eq!(a.sequences, b.sequences);
    }

    #[test]
    fn higher_p0_raises_critical_values() {
        let geometry = VideoGeometry::default();
        let q = ActionQuery::named("jumping", &["car"]);
        let low = Svaq::new(q.clone(), geometry, OnlineConfig::default(), 1e-5, 1e-5);
        let high = Svaq::new(q, geometry, OnlineConfig::default(), 0.2, 0.2);
        assert!(high.criticals().objects[0] > low.criticals().objects[0]);
        assert!(high.criticals().action >= low.criticals().action);
    }
}
