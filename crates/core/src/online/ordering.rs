//! Adaptive predicate ordering — the footnote 5 future work.
//!
//! Algorithm 2 evaluates predicates sequentially and short-circuits on the
//! first negative, so the *order* matters operationally: evaluating the
//! most selective predicate first minimises the expected number of
//! predicate evaluations per clip (and, in deployments where predicates
//! bind to separate specialised models, the inference those evaluations
//! trigger). The paper leaves the order "based on user expertise";
//! [`SelectivityOrderer`] learns it instead, tracking each object
//! predicate's observed pass rate with exponential decay and proposing the
//! ascending-pass-rate order.
//!
//! The expected evaluation count under independence is
//! `1 + p_(1) + p_(1)p_(2) + …` for pass rates in evaluation order —
//! minimised by sorting ascending, the classic result for short-circuit
//! conjunctions.

/// Exponentially decayed pass-rate tracker proposing an evaluation order.
#[derive(Debug, Clone)]
pub struct SelectivityOrderer {
    /// Decayed pass mass per predicate.
    passes: Vec<f64>,
    /// Decayed evaluation mass per predicate.
    evals: Vec<f64>,
    /// Per-observation decay (memory of ~1/(1-decay) clips).
    decay: f64,
    /// Current proposed order (indices into the original predicate list).
    order: Vec<usize>,
    /// Re-sort cadence, in observations.
    refresh_every: u32,
    seen: u32,
}

impl SelectivityOrderer {
    /// Track `n` predicates with a memory of roughly 200 clips.
    pub fn new(n: usize) -> Self {
        Self {
            passes: vec![0.0; n],
            evals: vec![0.0; n],
            decay: 1.0 - 1.0 / 200.0,
            order: (0..n).collect(),
            refresh_every: 10,
            seen: 0,
        }
    }

    /// The current evaluation order (most selective predicate first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Estimated pass rate of predicate `i` (0.5 before any evidence — the
    /// uninformative prior under which the original order is kept).
    pub fn pass_rate(&self, i: usize) -> f64 {
        if self.evals[i] <= 0.0 {
            0.5
        } else {
            self.passes[i] / self.evals[i]
        }
    }

    /// Record one clip's outcomes: `results[i] = Some(passed)` for
    /// evaluated predicates, `None` where evaluation short-circuited.
    pub fn record(&mut self, results: &[Option<bool>]) {
        debug_assert_eq!(results.len(), self.passes.len());
        for (i, r) in results.iter().enumerate() {
            self.passes[i] *= self.decay;
            self.evals[i] *= self.decay;
            if let Some(passed) = r {
                self.evals[i] += 1.0;
                self.passes[i] += *passed as u32 as f64;
            }
        }
        self.seen += 1;
        if self.seen.is_multiple_of(self.refresh_every) {
            self.refresh();
        }
    }

    /// Re-sort the proposed order by pass rate ascending (stable, so ties
    /// keep the user's order — their expertise remains the tiebreak).
    fn refresh(&mut self) {
        let rates: Vec<f64> = (0..self.passes.len()).map(|i| self.pass_rate(i)).collect();
        self.order.sort_by(|&a, &b| rates[a].total_cmp(&rates[b]));
    }

    /// Expected predicate evaluations per clip under the current order and
    /// estimated rates (the quantity the ordering minimises).
    pub fn expected_evaluations(&self) -> f64 {
        let mut total = 0.0;
        let mut reach = 1.0;
        for &i in &self.order {
            total += reach;
            reach *= self.pass_rate(i);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_to_put_selective_predicate_first() {
        let mut orderer = SelectivityOrderer::new(3);
        assert_eq!(orderer.order(), &[0, 1, 2]);
        // Predicate 2 almost never passes; 0 always; 1 half the time.
        for i in 0..200u32 {
            orderer.record(&[Some(true), Some(i % 2 == 0), Some(i % 50 == 0)]);
        }
        assert_eq!(orderer.order(), &[2, 1, 0]);
        assert!(orderer.pass_rate(2) < 0.1);
        assert!(orderer.pass_rate(0) > 0.9);
    }

    #[test]
    fn short_circuited_predicates_keep_their_estimates() {
        let mut orderer = SelectivityOrderer::new(2);
        for _ in 0..50 {
            orderer.record(&[Some(false), None]); // predicate 1 never seen
        }
        assert!((orderer.pass_rate(1) - 0.5).abs() < 1e-9); // prior retained
        assert!(orderer.pass_rate(0) < 0.05);
        assert_eq!(orderer.order(), &[0, 1]);
    }

    #[test]
    fn expected_evaluations_shrink_with_better_order() {
        let mut learned = SelectivityOrderer::new(2);
        for _ in 0..100 {
            learned.record(&[Some(true), Some(false)]);
        }
        // Learned order evaluates the failing predicate first: ~1 eval.
        assert!(learned.expected_evaluations() < 1.2);
        // The naive order would pay 1 + p0 ≈ 2.
        let mut naive = SelectivityOrderer::new(2);
        for _ in 0..100 {
            naive.record(&[Some(true), Some(false)]);
        }
        naive.order = vec![0, 1];
        assert!(naive.expected_evaluations() > 1.8);
    }

    #[test]
    fn adapts_when_selectivities_drift() {
        let mut orderer = SelectivityOrderer::new(2);
        for _ in 0..300 {
            orderer.record(&[Some(false), Some(true)]);
        }
        assert_eq!(orderer.order(), &[0, 1]);
        // Drift: predicate 0 becomes common, 1 becomes rare.
        for _ in 0..600 {
            orderer.record(&[Some(true), Some(false)]);
        }
        assert_eq!(orderer.order(), &[1, 0]);
    }
}
