//! Streaming sequence merging — Eq. 4.
//!
//! Positive clips that are contiguous form one result sequence
//! `(c_l, c_r)`; a negative clip closes the open sequence. The merger is
//! incremental so results are emitted *as the stream plays* — a closed
//! sequence is final the moment the first negative clip after it arrives.

use svq_types::{ClipId, ClipInterval, Interval};

/// Incremental merger of per-clip indicators into maximal sequences.
#[derive(Debug, Clone, Default)]
pub struct SequenceMerger {
    open: Option<ClipInterval>,
    closed: Vec<ClipInterval>,
}

impl SequenceMerger {
    /// Create an empty merger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the indicator of the next clip (clips must arrive in stream
    /// order). Returns the sequence that this clip *closed*, if any.
    pub fn push(&mut self, clip: ClipId, positive: bool) -> Option<ClipInterval> {
        if let Some(open) = &mut self.open {
            debug_assert!(clip > open.end, "clips must arrive in order");
        }
        if positive {
            match &mut self.open {
                Some(open) if open.end.next() == clip => {
                    open.end = clip;
                    None
                }
                Some(open) => {
                    // A gap in clip ids (clip skipped as negative elsewhere)
                    // closes the open run and starts a new one.
                    let closed = *open;
                    *open = Interval::point(clip);
                    self.closed.push(closed);
                    Some(closed)
                }
                None => {
                    self.open = Some(Interval::point(clip));
                    None
                }
            }
        } else {
            let closed = self.open.take();
            if let Some(c) = closed {
                self.closed.push(c);
            }
            closed
        }
    }

    /// Sequences closed so far (stream order).
    pub fn closed(&self) -> &[ClipInterval] {
        &self.closed
    }

    /// The currently open sequence, if the last clip was positive.
    pub fn open(&self) -> Option<ClipInterval> {
        self.open
    }

    /// End of stream: close any open sequence and return all results.
    pub fn finish(mut self) -> Vec<ClipInterval> {
        if let Some(open) = self.open.take() {
            self.closed.push(open);
        }
        self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u64) -> ClipId {
        ClipId::new(i)
    }

    fn iv(s: u64, e: u64) -> ClipInterval {
        Interval::new(c(s), c(e))
    }

    #[test]
    fn merges_contiguous_positives() {
        let mut m = SequenceMerger::new();
        assert_eq!(m.push(c(0), false), None);
        assert_eq!(m.push(c(1), true), None);
        assert_eq!(m.push(c(2), true), None);
        assert_eq!(m.open(), Some(iv(1, 2)));
        assert_eq!(m.push(c(3), false), Some(iv(1, 2)));
        assert_eq!(m.push(c(4), true), None);
        let all = m.finish();
        assert_eq!(all, vec![iv(1, 2), iv(4, 4)]);
    }

    #[test]
    fn all_negative_yields_nothing() {
        let mut m = SequenceMerger::new();
        for i in 0..10 {
            assert_eq!(m.push(c(i), false), None);
        }
        assert!(m.finish().is_empty());
    }

    #[test]
    fn all_positive_yields_single_sequence() {
        let mut m = SequenceMerger::new();
        for i in 0..10 {
            m.push(c(i), true);
        }
        assert_eq!(m.finish(), vec![iv(0, 9)]);
    }

    #[test]
    fn open_sequence_closed_at_finish() {
        let mut m = SequenceMerger::new();
        m.push(c(0), true);
        m.push(c(1), false);
        m.push(c(2), true);
        m.push(c(3), true);
        assert_eq!(m.closed(), &[iv(0, 0)]);
        assert_eq!(m.finish(), vec![iv(0, 0), iv(2, 3)]);
    }

    #[test]
    fn gap_in_clip_ids_splits_sequences() {
        let mut m = SequenceMerger::new();
        m.push(c(0), true);
        // Clip 1 never pushed (e.g. filtered upstream); clip 2 arrives.
        let closed = m.push(c(2), true);
        assert_eq!(closed, Some(iv(0, 0)));
        assert_eq!(m.finish(), vec![iv(0, 0), iv(2, 2)]);
    }
}
