//! Configuration shared by the online algorithms.

use serde::{Deserialize, Serialize};

/// Which clips feed the SVAQD background estimators.
///
/// [`BackgroundUpdate::NegativeClips`] — the default — implements §3.2's
/// framing of the background as the prediction distribution "when the
/// query predicates are **not** satisfied": a predicate's estimator
/// observes only clips where that predicate was not significant (plus the
/// vicinity guard and count censoring documented on [`super::Svaqd`]), so
/// genuine signal stays out of the noise floor. The ablation bench shows
/// this dominating the alternatives. [`BackgroundUpdate::AllClips`] is the
/// literal smoothing of Eq. 6 — episodes inflate the background and
/// fragment their own detection, badly at ActivityNet-like occupancy.
/// [`BackgroundUpdate::PositiveClips`] is the literal reading of
/// Algorithm 3 lines 7-9 and is included for the ablation only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BackgroundUpdate {
    /// Update a predicate's estimator only from clips where the predicate
    /// was *not* significant (the §3.2 semantics; default).
    #[default]
    NegativeClips,
    /// Update from every evaluated clip (the literal Eq. 6 smoothing).
    AllClips,
    /// Update only from clips where the whole query held (the literal
    /// reading of Algorithm 3, lines 7-9).
    PositiveClips,
}

/// Knobs of the online algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Object-detection score threshold `T_obj` (§2).
    pub t_obj: f64,
    /// Action-recognition score threshold `T_act` (§2).
    pub t_act: f64,
    /// Significance level `α` of Eq. 5.
    pub alpha: f64,
    /// Reference horizon `L = N/w` used when deriving critical values. The
    /// scan-statistic tail grows with the number of windows scanned; a
    /// fixed reference horizon (default: 200 clips ≈ 7 minutes at the
    /// default geometry) keeps the test calibrated for "bursts an operator
    /// would flag within minutes" rather than drifting with stream length.
    pub horizon_windows: f64,
    /// SVAQD background-update policy.
    pub update: BackgroundUpdate,
    /// SVAQD kernel bandwidth for object estimators, in frames.
    pub bandwidth_frames: f64,
    /// SVAQD kernel bandwidth for the action estimator, in shots.
    pub bandwidth_shots: f64,
    /// Optional burn-in: for the first this-many clips, SVAQD estimators
    /// observe every evaluated clip regardless of the update policy.
    /// Default 0 — the critical-value floor and censored feeding make the
    /// estimate↔threshold ratchet self-starting — but a burn-in can
    /// accelerate convergence on streams whose opening is known to be
    /// signal-free.
    pub warmup_clips: u32,
    /// Learn the object-predicate evaluation order from observed
    /// selectivities (footnote 5) instead of using the query's order.
    /// Off by default — the paper leaves ordering to "user expertise".
    pub adaptive_order: bool,
    /// Executor knob: clip tickets a multiplexer worker pulls from a
    /// session mailbox per state-lock acquisition (`svq-exec` drain
    /// batching). Batching amortises mailbox and metrics overhead when
    /// clips are short; it never changes results — each session still
    /// consumes its clips in feed order. `1` (the default) evaluates
    /// ticket-at-a-time.
    pub drain_batch: u32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            t_obj: 0.5,
            t_act: 0.45,
            alpha: 0.05,
            horizon_windows: 200.0,
            update: BackgroundUpdate::default(),
            bandwidth_frames: 20_000.0,
            bandwidth_shots: 3_000.0,
            warmup_clips: 0,
            adaptive_order: false,
            drain_batch: 1,
        }
    }
}

impl OnlineConfig {
    /// Builder-style override of the significance level.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0);
        self.alpha = alpha;
        self
    }

    /// Builder-style override of the update policy.
    pub fn with_update(mut self, update: BackgroundUpdate) -> Self {
        self.update = update;
        self
    }

    /// Builder-style toggle for adaptive predicate ordering.
    pub fn with_adaptive_order(mut self) -> Self {
        self.adaptive_order = true;
        self
    }

    /// Builder-style override of the score thresholds.
    pub fn with_thresholds(mut self, t_obj: f64, t_act: f64) -> Self {
        self.t_obj = t_obj;
        self.t_act = t_act;
        self
    }

    /// Builder-style override of the executor drain batch size (min 1).
    pub fn with_drain_batch(mut self, drain_batch: u32) -> Self {
        self.drain_batch = drain_batch.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = OnlineConfig::default();
        assert!(c.t_obj > 0.0 && c.t_obj < 1.0);
        assert!(c.alpha > 0.0 && c.alpha < 1.0);
        assert_eq!(c.update, BackgroundUpdate::NegativeClips);
        assert_eq!(c.drain_batch, 1, "batching must be opt-in");
    }

    #[test]
    fn builders_override() {
        let c = OnlineConfig::default()
            .with_alpha(0.01)
            .with_update(BackgroundUpdate::AllClips)
            .with_thresholds(0.6, 0.55)
            .with_drain_batch(16);
        assert_eq!(c.alpha, 0.01);
        assert_eq!(c.update, BackgroundUpdate::AllClips);
        assert_eq!((c.t_obj, c.t_act), (0.6, 0.55));
        assert_eq!(c.drain_batch, 16);
        assert_eq!(OnlineConfig::default().with_drain_batch(0).drain_batch, 1);
    }
}
