//! Configuration shared by the online algorithms.

use serde::{Deserialize, Serialize};
use svq_types::{SvqError, SvqResult};

/// Which clips feed the SVAQD background estimators.
///
/// [`BackgroundUpdate::NegativeClips`] — the default — implements §3.2's
/// framing of the background as the prediction distribution "when the
/// query predicates are **not** satisfied": a predicate's estimator
/// observes only clips where that predicate was not significant (plus the
/// vicinity guard and count censoring documented on [`super::Svaqd`]), so
/// genuine signal stays out of the noise floor. The ablation bench shows
/// this dominating the alternatives. [`BackgroundUpdate::AllClips`] is the
/// literal smoothing of Eq. 6 — episodes inflate the background and
/// fragment their own detection, badly at ActivityNet-like occupancy.
/// [`BackgroundUpdate::PositiveClips`] is the literal reading of
/// Algorithm 3 lines 7-9 and is included for the ablation only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BackgroundUpdate {
    /// Update a predicate's estimator only from clips where the predicate
    /// was *not* significant (the §3.2 semantics; default).
    #[default]
    NegativeClips,
    /// Update from every evaluated clip (the literal Eq. 6 smoothing).
    AllClips,
    /// Update only from clips where the whole query held (the literal
    /// reading of Algorithm 3, lines 7-9).
    PositiveClips,
}

/// Knobs of the online algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Object-detection score threshold `T_obj` (§2).
    pub t_obj: f64,
    /// Action-recognition score threshold `T_act` (§2).
    pub t_act: f64,
    /// Significance level `α` of Eq. 5.
    pub alpha: f64,
    /// Reference horizon `L = N/w` used when deriving critical values. The
    /// scan-statistic tail grows with the number of windows scanned; a
    /// fixed reference horizon (default: 200 clips ≈ 7 minutes at the
    /// default geometry) keeps the test calibrated for "bursts an operator
    /// would flag within minutes" rather than drifting with stream length.
    pub horizon_windows: f64,
    /// SVAQD background-update policy.
    pub update: BackgroundUpdate,
    /// SVAQD kernel bandwidth for object estimators, in frames.
    pub bandwidth_frames: f64,
    /// SVAQD kernel bandwidth for the action estimator, in shots.
    pub bandwidth_shots: f64,
    /// Optional burn-in: for the first this-many clips, SVAQD estimators
    /// observe every evaluated clip regardless of the update policy.
    /// Default 0 — the critical-value floor and censored feeding make the
    /// estimate↔threshold ratchet self-starting — but a burn-in can
    /// accelerate convergence on streams whose opening is known to be
    /// signal-free.
    pub warmup_clips: u32,
    /// Learn the object-predicate evaluation order from observed
    /// selectivities (footnote 5) instead of using the query's order.
    /// Off by default — the paper leaves ordering to "user expertise".
    pub adaptive_order: bool,
    /// Executor knob: clip tickets a multiplexer worker pulls from a
    /// session mailbox per state-lock acquisition (`svq-exec` drain
    /// batching). Batching amortises mailbox and metrics overhead when
    /// clips are short; it never changes results — each session still
    /// consumes its clips in feed order. `1` (the default) evaluates
    /// ticket-at-a-time.
    pub drain_batch: u32,
    /// Executor knob: ingress shards the multiplexer hashes streams
    /// across (one feeder thread each); a full blocking mailbox stalls
    /// only its own shard. `1` (the default) is the single-feeder
    /// topology. Like `drain_batch`, never changes results.
    pub shards: u32,
    /// Executor knob: wall seconds slept per simulated inference second
    /// (`0.0`, the default, disables pacing). Makes executor throughput
    /// numbers reflect the inference-bound regime of deployment.
    pub pacing: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            t_obj: 0.5,
            t_act: 0.45,
            alpha: 0.05,
            horizon_windows: 200.0,
            update: BackgroundUpdate::default(),
            bandwidth_frames: 20_000.0,
            bandwidth_shots: 3_000.0,
            warmup_clips: 0,
            adaptive_order: false,
            drain_batch: 1,
            shards: 1,
            pacing: 0.0,
        }
    }
}

impl OnlineConfig {
    /// Start a validating [`OnlineConfigBuilder`] seeded with the defaults.
    ///
    /// The `with_*` methods below stay for quick in-code overrides (they
    /// assert or clamp); the builder is the boundary API — every field has
    /// a setter and [`OnlineConfigBuilder::build`] returns
    /// [`SvqError::InvalidConfig`] with the offending field named instead
    /// of panicking, so CLI flags and config files get real diagnostics:
    ///
    /// ```
    /// use svq_core::online::OnlineConfig;
    /// let config = OnlineConfig::builder().shards(4).drain_batch(16).build()?;
    /// assert_eq!((config.shards, config.drain_batch), (4, 16));
    /// # Ok::<(), svq_types::SvqError>(())
    /// ```
    pub fn builder() -> OnlineConfigBuilder {
        OnlineConfigBuilder::default()
    }

    /// Builder-style override of the significance level.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0);
        self.alpha = alpha;
        self
    }

    /// Builder-style override of the update policy.
    pub fn with_update(mut self, update: BackgroundUpdate) -> Self {
        self.update = update;
        self
    }

    /// Builder-style toggle for adaptive predicate ordering.
    pub fn with_adaptive_order(mut self) -> Self {
        self.adaptive_order = true;
        self
    }

    /// Builder-style override of the score thresholds.
    pub fn with_thresholds(mut self, t_obj: f64, t_act: f64) -> Self {
        self.t_obj = t_obj;
        self.t_act = t_act;
        self
    }

    /// Builder-style override of the executor drain batch size (min 1).
    pub fn with_drain_batch(mut self, drain_batch: u32) -> Self {
        self.drain_batch = drain_batch.max(1);
        self
    }
}

/// Validating builder for [`OnlineConfig`], started via
/// [`OnlineConfig::builder`].
///
/// Setters only record values; all checking happens in [`Self::build`] so a
/// caller can set fields in any order (including temporarily inconsistent
/// ones sourced from flags) and get one error naming the first offending
/// field.
#[derive(Debug, Clone, Default)]
pub struct OnlineConfigBuilder {
    config: OnlineConfig,
}

impl OnlineConfigBuilder {
    /// Object-detection score threshold `T_obj`; must lie in `(0, 1)`.
    pub fn t_obj(mut self, t_obj: f64) -> Self {
        self.config.t_obj = t_obj;
        self
    }

    /// Action-recognition score threshold `T_act`; must lie in `(0, 1)`.
    pub fn t_act(mut self, t_act: f64) -> Self {
        self.config.t_act = t_act;
        self
    }

    /// Significance level `α`; must lie in `(0, 1)`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Reference horizon in windows; must be finite and positive.
    pub fn horizon_windows(mut self, horizon_windows: f64) -> Self {
        self.config.horizon_windows = horizon_windows;
        self
    }

    /// SVAQD background-update policy.
    pub fn update(mut self, update: BackgroundUpdate) -> Self {
        self.config.update = update;
        self
    }

    /// Object-estimator kernel bandwidth in frames; finite and positive.
    pub fn bandwidth_frames(mut self, bandwidth_frames: f64) -> Self {
        self.config.bandwidth_frames = bandwidth_frames;
        self
    }

    /// Action-estimator kernel bandwidth in shots; finite and positive.
    pub fn bandwidth_shots(mut self, bandwidth_shots: f64) -> Self {
        self.config.bandwidth_shots = bandwidth_shots;
        self
    }

    /// Estimator burn-in length in clips (any value is valid).
    pub fn warmup_clips(mut self, warmup_clips: u32) -> Self {
        self.config.warmup_clips = warmup_clips;
        self
    }

    /// Learn predicate evaluation order from observed selectivities.
    pub fn adaptive_order(mut self, adaptive_order: bool) -> Self {
        self.config.adaptive_order = adaptive_order;
        self
    }

    /// Executor mailbox drain batch; must be at least 1.
    pub fn drain_batch(mut self, drain_batch: u32) -> Self {
        self.config.drain_batch = drain_batch;
        self
    }

    /// Executor ingress shard count; must be at least 1.
    pub fn shards(mut self, shards: u32) -> Self {
        self.config.shards = shards;
        self
    }

    /// Pacing factor in wall seconds per simulated second; finite, `>= 0`.
    pub fn pacing(mut self, pacing: f64) -> Self {
        self.config.pacing = pacing;
        self
    }

    /// Validate every field and return the finished config, or
    /// [`SvqError::InvalidConfig`] naming the first invalid field.
    pub fn build(self) -> SvqResult<OnlineConfig> {
        let c = self.config;
        fn unit_open(name: &str, v: f64) -> SvqResult<()> {
            if v > 0.0 && v < 1.0 {
                Ok(())
            } else {
                Err(SvqError::InvalidConfig(format!(
                    "{name} must lie in (0, 1), got {v}"
                )))
            }
        }
        fn finite_positive(name: &str, v: f64) -> SvqResult<()> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(SvqError::InvalidConfig(format!(
                    "{name} must be finite and positive, got {v}"
                )))
            }
        }
        unit_open("t_obj", c.t_obj)?;
        unit_open("t_act", c.t_act)?;
        unit_open("alpha", c.alpha)?;
        finite_positive("horizon_windows", c.horizon_windows)?;
        finite_positive("bandwidth_frames", c.bandwidth_frames)?;
        finite_positive("bandwidth_shots", c.bandwidth_shots)?;
        if c.drain_batch < 1 {
            return Err(SvqError::InvalidConfig(
                "drain_batch must be at least 1".into(),
            ));
        }
        if c.shards < 1 {
            return Err(SvqError::InvalidConfig("shards must be at least 1".into()));
        }
        if !c.pacing.is_finite() || c.pacing < 0.0 {
            return Err(SvqError::InvalidConfig(format!(
                "pacing must be finite and non-negative, got {}",
                c.pacing
            )));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = OnlineConfig::default();
        assert!(c.t_obj > 0.0 && c.t_obj < 1.0);
        assert!(c.alpha > 0.0 && c.alpha < 1.0);
        assert_eq!(c.update, BackgroundUpdate::NegativeClips);
        assert_eq!(c.drain_batch, 1, "batching must be opt-in");
    }

    #[test]
    fn builders_override() {
        let c = OnlineConfig::default()
            .with_alpha(0.01)
            .with_update(BackgroundUpdate::AllClips)
            .with_thresholds(0.6, 0.55)
            .with_drain_batch(16);
        assert_eq!(c.alpha, 0.01);
        assert_eq!(c.update, BackgroundUpdate::AllClips);
        assert_eq!((c.t_obj, c.t_act), (0.6, 0.55));
        assert_eq!(c.drain_batch, 16);
        assert_eq!(OnlineConfig::default().with_drain_batch(0).drain_batch, 1);
    }

    #[test]
    fn builder_accepts_defaults_and_overrides() {
        let c = OnlineConfig::builder().build().unwrap();
        assert_eq!(c, OnlineConfig::default());

        let c = OnlineConfig::builder()
            .t_obj(0.6)
            .t_act(0.55)
            .alpha(0.01)
            .horizon_windows(500.0)
            .update(BackgroundUpdate::AllClips)
            .bandwidth_frames(10_000.0)
            .bandwidth_shots(1_500.0)
            .warmup_clips(8)
            .adaptive_order(true)
            .drain_batch(16)
            .shards(4)
            .pacing(0.25)
            .build()
            .unwrap();
        assert_eq!((c.t_obj, c.t_act, c.alpha), (0.6, 0.55, 0.01));
        assert_eq!(c.horizon_windows, 500.0);
        assert_eq!(c.update, BackgroundUpdate::AllClips);
        assert_eq!(c.warmup_clips, 8);
        assert!(c.adaptive_order);
        assert_eq!((c.drain_batch, c.shards), (16, 4));
        assert_eq!(c.pacing, 0.25);
    }

    #[test]
    fn builder_rejects_out_of_range_fields_by_name() {
        let cases: Vec<(&str, SvqResult<OnlineConfig>)> = vec![
            ("t_obj", OnlineConfig::builder().t_obj(0.0).build()),
            ("t_act", OnlineConfig::builder().t_act(1.0).build()),
            ("alpha", OnlineConfig::builder().alpha(-0.1).build()),
            (
                "horizon_windows",
                OnlineConfig::builder().horizon_windows(f64::NAN).build(),
            ),
            (
                "bandwidth_frames",
                OnlineConfig::builder().bandwidth_frames(0.0).build(),
            ),
            (
                "bandwidth_shots",
                OnlineConfig::builder()
                    .bandwidth_shots(f64::INFINITY)
                    .build(),
            ),
            (
                "drain_batch",
                OnlineConfig::builder().drain_batch(0).build(),
            ),
            ("shards", OnlineConfig::builder().shards(0).build()),
            ("pacing", OnlineConfig::builder().pacing(-1.0).build()),
        ];
        for (field, result) in cases {
            let err = result.expect_err(field).to_string();
            assert!(err.contains("invalid config"), "{field}: {err}");
            assert!(err.contains(field), "{field} not named in: {err}");
        }
    }
}
