//! SVAQD — Algorithm 3.
//!
//! SVAQ with dynamic parameter adjustment: each predicate carries an
//! exponential-kernel background estimator (Eq. 6). After a clip is
//! evaluated, the estimators observe the clip's occurrence units (per the
//! configured [`BackgroundUpdate`] policy) and the critical values are
//! re-derived from the updated estimates through the memoised
//! critical-value table. The initial probabilities `p_obj_0` / `p_act_0`
//! only matter until roughly one kernel bandwidth of stream has been
//! observed — the insensitivity Figure 2 demonstrates.

use super::config::{BackgroundUpdate, OnlineConfig};
use super::indicator::{evaluate_clip_ordered, ClipEvaluation, CriticalValues};
use super::merger::SequenceMerger;
use super::ordering::SelectivityOrderer;
use super::OnlineResult;
use std::time::Duration;
use svq_scanstats::{CriticalValueTable, KernelEstimator, ScanConfig};
use svq_types::{ActionQuery, ClipInterval, Clock, VideoGeometry};
use svq_vision::stream::ClipAccess;
use svq_vision::{VideoStream, WallClock};

/// Algorithm 3: streaming action-query processing with dynamic background
/// estimation.
#[derive(Debug)]
pub struct Svaqd {
    query: ActionQuery,
    config: OnlineConfig,
    geometry: VideoGeometry,
    object_estimators: Vec<KernelEstimator>,
    action_estimator: KernelEstimator,
    object_table: CriticalValueTable,
    action_table: CriticalValueTable,
    criticals: CriticalValues,
    merger: SequenceMerger,
    evaluations: Vec<ClipEvaluation>,
    /// Previous clip's per-predicate indicators (objects…, then action).
    /// Under [`BackgroundUpdate::NegativeClips`], a clip immediately
    /// following a predicate-positive clip is excluded from that predicate's
    /// background update: such clips sit in the vicinity of genuine events
    /// (episode-interior recognition dropouts, episode tails) and would
    /// otherwise leak near-signal rates into the noise floor — the standard
    /// guard in scan-statistics-based online anomaly detection.
    ///
    /// Two further safeguards keep the estimate↔critical-value feedback
    /// loop well-behaved. Critical values are clamped to `[2, w−1]`: a
    /// single positive occurrence unit is never a statistically meaningful
    /// burst (and `k_crit = 1` would leave the negative-clip diet with only
    /// empty clips, stalling adaptation), while `k_crit = w` — demanding
    /// *every* occurrence unit positive — makes the clip indicator
    /// non-robust to a single recognition dropout, fragmenting genuine
    /// episodes; the action window (`w` = shots per clip, 5 by default) is
    /// coarse enough that this matters. And every fed count is *censored at
    /// `k_crit − 1`*: the background is by definition the event rate outside
    /// significant bursts, so occurrence units beyond the significance
    /// threshold are replaced by the threshold (rank-truncated estimation).
    /// Censoring bounds the damage when genuine signal leaks past the
    /// negative-clip gate (e.g. two consecutive recognition dropouts inside
    /// an episode defeat the one-clip vicinity guard) — without it a single
    /// leak can start a death spiral: signal inflates the background, the
    /// critical value rises, more episode clips turn negative and feed more
    /// signal, until the whole stream is rejected.
    prev_indicators: Vec<Option<bool>>,
    clips_seen: u32,
    /// Learned object-predicate evaluation order (footnote 5), active when
    /// [`OnlineConfig::adaptive_order`] is set.
    orderer: SelectivityOrderer,
}

impl Svaqd {
    /// Initialise with background priors `p_obj_0` (shared by all object
    /// predicates) and `p_act_0`.
    pub fn new(
        query: ActionQuery,
        geometry: VideoGeometry,
        config: OnlineConfig,
        p_obj_0: f64,
        p_act_0: f64,
    ) -> Self {
        let w_obj = geometry.frames_per_clip();
        let w_act = geometry.shots_per_clip;
        let mut object_table =
            CriticalValueTable::new(ScanConfig::new(w_obj, config.horizon_windows, config.alpha));
        let mut action_table =
            CriticalValueTable::new(ScanConfig::new(w_act, config.horizon_windows, config.alpha));
        let object_estimators: Vec<KernelEstimator> = query
            .objects
            .iter()
            .map(|_| KernelEstimator::new(config.bandwidth_frames, p_obj_0))
            .collect();
        let action_estimator = KernelEstimator::new(config.bandwidth_shots, p_act_0);
        let clamp = |k: u32, w: u32| k.clamp(2, (w - 1).max(2));
        let criticals = CriticalValues {
            objects: object_estimators
                .iter()
                .map(|e| clamp(object_table.critical_value(e.estimate()), w_obj))
                .collect(),
            action: clamp(
                action_table.critical_value(action_estimator.estimate()),
                w_act,
            ),
        };
        let n_predicates = query.objects.len() + 1;
        Self {
            query,
            config,
            geometry,
            object_estimators,
            action_estimator,
            object_table,
            action_table,
            criticals,
            merger: SequenceMerger::new(),
            evaluations: Vec::new(),
            prev_indicators: vec![None; n_predicates],
            clips_seen: 0,
            orderer: SelectivityOrderer::new(n_predicates - 1),
        }
    }

    /// The critical values currently in force.
    pub fn criticals(&self) -> &CriticalValues {
        &self.criticals
    }

    /// The learned predicate-ordering state (footnote 5).
    pub fn orderer(&self) -> &SelectivityOrderer {
        &self.orderer
    }

    /// Current background estimates (objects in query order, then action).
    pub fn backgrounds(&self) -> Vec<f64> {
        self.object_estimators
            .iter()
            .map(|e| e.estimate())
            .chain(std::iter::once(self.action_estimator.estimate()))
            .collect()
    }

    /// Process the next clip; returns a result sequence if this clip closed
    /// one.
    pub fn push_clip<C: ClipAccess>(&mut self, view: &mut C) -> Option<ClipInterval> {
        let identity: Vec<usize> = (0..self.query.objects.len()).collect();
        let order: &[usize] = if self.config.adaptive_order {
            self.orderer.order()
        } else {
            &identity
        };
        let order = order.to_vec();
        let eval = evaluate_clip_ordered(view, &self.query, &self.criticals, &self.config, &order);
        if self.config.adaptive_order {
            let outcomes: Vec<Option<bool>> = eval
                .object_counts
                .iter()
                .enumerate()
                .map(|(i, c)| c.map(|n| n >= self.criticals.objects[i]))
                .collect();
            self.orderer.record(&outcomes);
        }

        // Update background estimators with this clip's observations.
        let w_obj = self.geometry.frames_per_clip() as u64;
        let w_act = self.geometry.shots_per_clip as u64;
        let mut changed = false;
        let n_obj = self.query.objects.len();
        let in_warmup = self.clips_seen < self.config.warmup_clips;
        self.clips_seen += 1;
        for (i, est) in self.object_estimators.iter_mut().enumerate() {
            if let Some(count) = eval.object_counts[i] {
                let positive = count >= self.criticals.objects[i];
                let after_positive = self.prev_indicators[i] == Some(true);
                let update = in_warmup
                    || match self.config.update {
                        BackgroundUpdate::NegativeClips => !positive && !after_positive,
                        BackgroundUpdate::AllClips => true,
                        BackgroundUpdate::PositiveClips => eval.positive,
                    };
                if update {
                    let cap = (2 * svq_scanstats::binomial::quantile(0.99, w_obj, est.estimate()))
                        .max(1) as u32;
                    est.observe_run(w_obj, count.min(cap) as u64);
                    changed = true;
                }
                self.prev_indicators[i] = Some(positive);
            } else {
                self.prev_indicators[i] = None;
            }
        }
        if let Some(count) = eval.action_count {
            let positive = count >= self.criticals.action;
            let after_positive = self.prev_indicators[n_obj] == Some(true);
            let update = in_warmup
                || match self.config.update {
                    BackgroundUpdate::NegativeClips => !positive && !after_positive,
                    BackgroundUpdate::AllClips => true,
                    BackgroundUpdate::PositiveClips => eval.positive,
                };
            if update {
                let cap = (2 * svq_scanstats::binomial::quantile(
                    0.99,
                    w_act,
                    self.action_estimator.estimate(),
                ))
                .max(1) as u32;
                self.action_estimator
                    .observe_run(w_act, count.min(cap) as u64);
                changed = true;
            }
            self.prev_indicators[n_obj] = Some(positive);
        } else {
            self.prev_indicators[n_obj] = None;
        }
        // Re-derive critical values from the moved estimates (Algorithm 3
        // line 9). The memoised table makes this cheap when estimates are
        // stable.
        if changed {
            let w_obj_u = self.geometry.frames_per_clip();
            let w_act_u = self.geometry.shots_per_clip;
            let clamp = |k: u32, w: u32| k.clamp(2, (w - 1).max(2));
            for (i, est) in self.object_estimators.iter().enumerate() {
                self.criticals.objects[i] =
                    clamp(self.object_table.critical_value(est.estimate()), w_obj_u);
            }
            self.criticals.action = clamp(
                self.action_table
                    .critical_value(self.action_estimator.estimate()),
                w_act_u,
            );
        }

        let closed = self.merger.push(eval.clip, eval.positive);
        self.evaluations.push(eval);
        closed
    }

    /// End of stream.
    pub fn finish(self) -> (Vec<ClipInterval>, Vec<ClipEvaluation>) {
        (self.merger.finish(), self.evaluations)
    }

    /// Advance to the next video of a multi-video stream (e.g. a query
    /// set): per-video state — open sequences, the evaluation trace, clip
    /// numbering, the vicinity guard — resets, while the background
    /// estimators and critical values persist: the noise floor of a
    /// detector is a property of the model and the scene distribution, not
    /// of one file, so a set-long stream should not re-learn it per video.
    /// Returns the finished video's sequences and evaluations.
    pub fn next_video(&mut self) -> (Vec<ClipInterval>, Vec<ClipEvaluation>) {
        let merger = std::mem::take(&mut self.merger);
        let evaluations = std::mem::take(&mut self.evaluations);
        for p in &mut self.prev_indicators {
            *p = None;
        }
        (merger.finish(), evaluations)
    }

    /// Convenience: run over a whole stream, charging algorithm time from
    /// the platform clock.
    pub fn run(
        query: ActionQuery,
        stream: &mut VideoStream<'_>,
        config: OnlineConfig,
        p_obj_0: f64,
        p_act_0: f64,
    ) -> OnlineResult {
        Self::run_with_clock(query, stream, config, p_obj_0, p_act_0, &WallClock::new())
    }

    /// [`Svaqd::run`] with an injected [`Clock`] — the only time source the
    /// algorithm reads, so a [`svq_types::ManualClock`] makes the full
    /// result (cost ledger included) byte-deterministic.
    pub fn run_with_clock(
        query: ActionQuery,
        stream: &mut VideoStream<'_>,
        config: OnlineConfig,
        p_obj_0: f64,
        p_act_0: f64,
        clock: &dyn Clock,
    ) -> OnlineResult {
        let mut svaqd = Svaqd::new(query, stream.geometry(), config, p_obj_0, p_act_0);
        let start = clock.now_nanos();
        while let Some(mut view) = stream.next_clip() {
            svaqd.push_clip(&mut view);
        }
        stream
            .ledger_mut()
            .charge_algorithm(Duration::from_nanos(clock.nanos_since(start)));
        let (sequences, evaluations) = svaqd.finish();
        OnlineResult {
            sequences,
            cost: *stream.ledger(),
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use svq_types::{ActionClass, BBox, ClipId, FrameId, Interval, ObjectClass, TrackId, VideoId};
    use svq_vision::models::{DetectionOracle, ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};

    /// 100 clips (5000 frames); the query holds on clips 60..=79.
    fn oracle(suite: ModelSuite, seed: u64) -> DetectionOracle {
        let mut gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 5_000);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(3_000), FrameId::new(3_999)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(3_000), FrameId::new(3_999)),
            salience: 1.0,
        });
        let confusion = SceneConfusion {
            objects: vec![(ObjectClass::named("car"), 1.0)],
            actions: vec![(ActionClass::named("jumping"), 1.0)],
        };
        DetectionOracle::new(Arc::new(gt), suite, &confusion, seed)
    }

    fn truth_interval() -> Interval<ClipId> {
        Interval::new(ClipId::new(60), ClipId::new(79))
    }

    /// Fraction of truth clips covered by found sequences.
    fn coverage(sequences: &[Interval<ClipId>]) -> f64 {
        let truth = truth_interval();
        let covered: u64 = sequences.iter().map(|s| s.overlap_len(&truth)).sum();
        covered as f64 / truth.len() as f64
    }

    /// Clips claimed outside the truth.
    fn spurious_clips(sequences: &[Interval<ClipId>]) -> u64 {
        let truth = truth_interval();
        sequences
            .iter()
            .map(|s| s.len() - s.overlap_len(&truth))
            .sum()
    }

    fn f1_proxy(sequences: &[Interval<ClipId>]) -> bool {
        // Episode substantially recovered (model-noise fragmentation is
        // expected — it is why the paper's F1 sits at 0.8-0.9, not 1.0)
        // and little is claimed outside it.
        coverage(sequences) >= 0.6 && spurious_clips(sequences) <= 4
    }

    #[test]
    fn recovers_episode_regardless_of_initial_p0() {
        // The Figure 2 property: SVAQD's accuracy is insensitive to p0.
        for &p0 in &[1e-6, 1e-4, 1e-2, 0.3] {
            let oracle = oracle(ModelSuite::accurate(), 5);
            let mut stream = VideoStream::new(&oracle);
            let result = Svaqd::run(
                ActionQuery::named("jumping", &["car"]),
                &mut stream,
                OnlineConfig::default(),
                p0,
                p0,
            );
            assert!(
                f1_proxy(&result.sequences),
                "p0={p0}: sequences {:?} miss the episode",
                result.sequences
            );
        }
    }

    #[test]
    fn adapts_critical_values_to_observed_noise() {
        let oracle = oracle(ModelSuite::accurate(), 7);
        let mut stream = VideoStream::new(&oracle);
        let query = ActionQuery::named("jumping", &["car"]);
        let mut svaqd = Svaqd::new(
            query,
            stream.geometry(),
            OnlineConfig::default(),
            1e-6,
            1e-6,
        );
        let k0 = svaqd.criticals().objects[0];
        while let Some(mut view) = stream.next_clip() {
            svaqd.push_clip(&mut view);
        }
        // The confusable FP rate (~0.2/frame) must have pushed the object
        // critical value well above its near-zero-background initial value.
        let k_end = svaqd.criticals().objects[0];
        assert!(
            k_end > k0 + 3,
            "critical value failed to adapt: {k0} -> {k_end}"
        );
        // And the background estimate reflects the noise floor.
        let p_obj = svaqd.backgrounds()[0];
        assert!((0.01..0.3).contains(&p_obj), "estimated background {p_obj}");
    }

    #[test]
    fn fewer_false_positive_clips_than_svaq_with_bad_p0() {
        let query = ActionQuery::named("jumping", &["car"]);
        let oracle = oracle(ModelSuite::accurate(), 11);

        let mut s1 = VideoStream::new(&oracle);
        let svaq =
            super::super::Svaq::run(query.clone(), &mut s1, OnlineConfig::default(), 1e-6, 1e-6);
        let mut s2 = VideoStream::new(&oracle);
        let svaqd = Svaqd::run(query, &mut s2, OnlineConfig::default(), 1e-6, 1e-6);

        let spurious = |r: &OnlineResult| {
            r.evaluations
                .iter()
                .filter(|e| e.positive && !truth_interval().contains(e.clip))
                .count()
        };
        assert!(
            spurious(&svaqd) < spurious(&svaq),
            "svaqd {} vs svaq {}",
            spurious(&svaqd),
            spurious(&svaq)
        );
        assert!(f1_proxy(&svaqd.sequences));
    }

    #[test]
    fn ideal_models_still_exact() {
        let oracle = oracle(ModelSuite::ideal(), 3);
        let mut stream = VideoStream::new(&oracle);
        let result = Svaqd::run(
            ActionQuery::named("jumping", &["car"]),
            &mut stream,
            OnlineConfig::default(),
            1e-4,
            1e-4,
        );
        assert_eq!(result.sequences, vec![truth_interval()]);
    }

    #[test]
    fn update_policies_differ_in_adaptation() {
        let query = ActionQuery::named("jumping", &["car"]);
        let run_with = |policy| {
            let oracle = oracle(ModelSuite::accurate(), 13);
            let mut stream = VideoStream::new(&oracle);
            Svaqd::run(
                query.clone(),
                &mut stream,
                OnlineConfig::default().with_update(policy),
                1e-4,
                1e-4,
            )
        };
        let neg = run_with(BackgroundUpdate::NegativeClips);
        let all = run_with(BackgroundUpdate::AllClips);
        // Both should substantially recover the episode; AllClips inflates
        // the background during the episode so it may fragment more, but it
        // must stay functional.
        assert!(f1_proxy(&neg.sequences), "neg: {:?}", neg.sequences);
        assert!(
            coverage(&all.sequences) >= 0.4 && spurious_clips(&all.sequences) <= 6,
            "all: {:?}",
            all.sequences
        );
    }

    #[test]
    fn backgrounds_reports_one_entry_per_predicate_plus_action() {
        let q = ActionQuery::named("jumping", &["car", "person"]);
        let svaqd = Svaqd::new(
            q,
            VideoGeometry::default(),
            OnlineConfig::default(),
            0.01,
            0.02,
        );
        let b = svaqd.backgrounds();
        assert_eq!(b.len(), 3);
        assert!((b[0] - 0.01).abs() < 1e-9);
        assert!((b[2] - 0.02).abs() < 1e-9);
    }
}
