//! Clip indicator evaluation — Algorithm 2.
//!
//! For each object predicate, count the clip's frames with a positive
//! thresholded detection (`Σ 𝟙_{o_i}^{(v)}`) and compare against
//! `k_crit_{o_i}` (Eq. 1); for the action predicate, count positive shots
//! against `k_crit_a` (Eq. 2); conjoin (Eq. 3). Predicates are evaluated in
//! query order and evaluation short-circuits on the first negative
//! predicate (Algorithm 2 lines 6-8), skipping the remaining predicates'
//! inference — which is where the online algorithms save model cost.

use super::config::OnlineConfig;
use svq_types::{ActionQuery, ClipId};
use svq_vision::stream::ClipAccess;

/// Per-predicate critical values for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalValues {
    /// `k_crit_{o_i}` per object predicate, in query order (units: frames).
    pub objects: Vec<u32>,
    /// `k_crit_a` (units: shots).
    pub action: u32,
}

/// The trace of one clip's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipEvaluation {
    pub clip: ClipId,
    /// `𝟙_q^(c)` — Eq. 3.
    pub positive: bool,
    /// Positive-frame count per object predicate; `None` where evaluation
    /// short-circuited before reaching the predicate.
    pub object_counts: Vec<Option<u32>>,
    /// Positive-shot count for the action; `None` if short-circuited.
    pub action_count: Option<u32>,
    /// Critical values used for this clip (SVAQD varies them over time).
    pub criticals: CriticalValues,
}

impl ClipEvaluation {
    /// Indicator of object predicate `i` on this clip, if evaluated.
    pub fn object_indicator(&self, i: usize) -> Option<bool> {
        self.object_counts[i].map(|c| c >= self.criticals.objects[i])
    }

    /// Indicator of the action predicate, if evaluated.
    pub fn action_indicator(&self) -> Option<bool> {
        self.action_count.map(|c| c >= self.criticals.action)
    }
}

/// Evaluate Algorithm 2 on one clip (predicates in query order).
///
/// Object predicates are evaluated first, in query order, then the action —
/// matching the listing. Each object predicate charges one detector pass
/// over the clip's frames only on the *first* object predicate (real
/// detectors emit all classes in one pass; subsequent predicates reuse the
/// same detections at zero extra inference). The action predicate charges
/// the recognizer over the clip's shots only if every object predicate
/// held.
pub fn evaluate_clip<C: ClipAccess>(
    view: &mut C,
    query: &ActionQuery,
    criticals: &CriticalValues,
    config: &OnlineConfig,
) -> ClipEvaluation {
    let identity: Vec<usize> = (0..query.objects.len()).collect();
    evaluate_clip_ordered(view, query, criticals, config, &identity)
}

/// Evaluate Algorithm 2 with an explicit object-predicate evaluation order
/// (indices into `query.objects`) — the footnote 5 knob, driven adaptively
/// by [`super::ordering::SelectivityOrderer`]. Counts land at their
/// *original* indices regardless of the order.
pub fn evaluate_clip_ordered<C: ClipAccess>(
    view: &mut C,
    query: &ActionQuery,
    criticals: &CriticalValues,
    config: &OnlineConfig,
    order: &[usize],
) -> ClipEvaluation {
    debug_assert_eq!(criticals.objects.len(), query.objects.len());
    debug_assert_eq!(order.len(), query.objects.len());
    let clip = view.clip();
    let mut object_counts: Vec<Option<u32>> = vec![None; query.objects.len()];

    // One detector pass yields every class's detections for the clip.
    let frames = if query.objects.is_empty() {
        Vec::new()
    } else {
        view.object_frames()
    };

    for &i in order {
        let class = query.objects[i];
        // Σ_{v ∈ V(c)} 𝟙_{o_i}^{(v)} with 𝟙 = [maxS ≥ T_obj].
        let count = frames
            .iter()
            .filter(|f| {
                f.detections
                    .iter()
                    .any(|d| d.detection.class == class && d.detection.score >= config.t_obj)
            })
            .count() as u32;
        object_counts[i] = Some(count);
        if count < criticals.objects[i] {
            // Short-circuit: remaining predicates unevaluated.
            return ClipEvaluation {
                clip,
                positive: false,
                object_counts,
                action_count: None,
                criticals: criticals.clone(),
            };
        }
    }

    // All object predicates held — run the action recognizer.
    let shots = view.action_shots();
    let action_count = shots
        .iter()
        .filter(|s| {
            s.actions
                .iter()
                .any(|a| a.class == query.action && a.score >= config.t_act)
        })
        .count() as u32;
    let positive = action_count >= criticals.action;
    ClipEvaluation {
        clip,
        positive,
        object_counts,
        action_count: Some(action_count),
        criticals: criticals.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use svq_types::{ActionClass, FrameId, Interval, ObjectClass, TrackId, VideoGeometry, VideoId};
    use svq_vision::models::{DetectionOracle, ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};
    use svq_vision::VideoStream;

    /// 4 clips (200 frames): car on clip 1-2, jumping on clip 2 only.
    fn oracle() -> DetectionOracle {
        let mut gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 200);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(50), FrameId::new(149)),
            visibility: 1.0,
            bbox: svq_types::BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(100), FrameId::new(149)),
            salience: 1.0,
        });
        DetectionOracle::new(
            Arc::new(gt),
            ModelSuite::ideal(),
            &SceneConfusion::default(),
            0,
        )
    }

    fn crits(obj: u32, act: u32, n_obj: usize) -> CriticalValues {
        CriticalValues {
            objects: vec![obj; n_obj],
            action: act,
        }
    }

    #[test]
    fn indicator_conjunction_with_ideal_models() {
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let query = ActionQuery::named("jumping", &["car"]);
        let config = OnlineConfig::default();
        let criticals = crits(5, 2, 1);
        let mut outcomes = Vec::new();
        while let Some(mut view) = stream.next_clip() {
            outcomes.push(evaluate_clip(&mut view, &query, &criticals, &config));
        }
        assert_eq!(outcomes.len(), 4);
        // Clip 0: no car — negative, action never evaluated.
        assert!(!outcomes[0].positive);
        assert_eq!(outcomes[0].object_counts[0], Some(0));
        assert_eq!(outcomes[0].action_count, None);
        // Clip 1: car but no action.
        assert!(!outcomes[1].positive);
        assert_eq!(outcomes[1].object_counts[0], Some(50));
        assert_eq!(outcomes[1].action_count, Some(0));
        // Clip 2: car + jumping.
        assert!(outcomes[2].positive);
        assert_eq!(outcomes[2].action_count, Some(5));
        // Clip 3: nothing.
        assert!(!outcomes[3].positive);
    }

    #[test]
    fn short_circuit_saves_action_inference() {
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let query = ActionQuery::named("jumping", &["car"]);
        let config = OnlineConfig::default();
        let criticals = crits(5, 2, 1);
        while let Some(mut view) = stream.next_clip() {
            evaluate_clip(&mut view, &query, &criticals, &config);
        }
        // Object inference on all 4 clips (200 frames); action only on the
        // two clips whose object predicate held (clips 1 and 2 -> 10 shots).
        assert_eq!(stream.ledger().object_frames, 200);
        assert_eq!(stream.ledger().action_shots, 10);
    }

    #[test]
    fn action_only_query_skips_object_detection() {
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let query = ActionQuery::named("jumping", &[]);
        let config = OnlineConfig::default();
        let criticals = crits(0, 2, 0);
        let mut positives = 0;
        while let Some(mut view) = stream.next_clip() {
            positives += evaluate_clip(&mut view, &query, &criticals, &config).positive as u32;
        }
        assert_eq!(positives, 1);
        assert_eq!(stream.ledger().object_frames, 0);
        assert_eq!(stream.ledger().action_shots, 20);
    }

    #[test]
    fn critical_value_gates_the_count() {
        let oracle = oracle();
        let query = ActionQuery::named("jumping", &["car"]);
        let config = OnlineConfig::default();
        // Demand more positive frames than the clip holds: clip 2 has 50.
        let strict = crits(51, 1, 1);
        let mut stream = VideoStream::new(&oracle);
        let mut any_positive = false;
        while let Some(mut view) = stream.next_clip() {
            any_positive |= evaluate_clip(&mut view, &query, &strict, &config).positive;
        }
        assert!(!any_positive);
    }

    #[test]
    fn indicators_reflect_criticals() {
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let query = ActionQuery::named("jumping", &["car"]);
        let config = OnlineConfig::default();
        let criticals = crits(5, 2, 1);
        let mut v = stream.next_clip().unwrap();
        let e0 = evaluate_clip(&mut v, &query, &criticals, &config);
        assert_eq!(e0.object_indicator(0), Some(false));
        assert_eq!(e0.action_indicator(), None);
        let _ = stream.next_clip().unwrap();
        let mut v2 = stream.next_clip().unwrap();
        let e2 = evaluate_clip(&mut v2, &query, &criticals, &config);
        assert_eq!(e2.object_indicator(0), Some(true));
        assert_eq!(e2.action_indicator(), Some(true));
    }
}
