//! The online (streaming) case — §3 of the paper.
//!
//! A query `q : {o_1 … o_I; a}` is processed one clip at a time as the
//! stream arrives. For each clip, Algorithm 2 ([`evaluate_clip`]) counts
//! positive per-frame object predictions and per-shot action predictions,
//! compares each count against its scan-statistic critical value, and
//! conjoins the per-predicate indicators (Eq. 3). Positive clips are merged
//! into maximal result sequences (Eq. 4, [`SequenceMerger`]).
//!
//! [`Svaq`] derives the critical values once from an a-priori background
//! probability `p0`; [`Svaqd`] estimates each predicate's background
//! dynamically with the exponential-kernel estimator and re-derives the
//! critical values as the estimate moves, which removes the `p0`
//! sensitivity Figure 2 demonstrates.

mod config;
mod indicator;
mod merger;
pub mod ordering;
mod svaq;
mod svaqd;

pub use config::{BackgroundUpdate, OnlineConfig, OnlineConfigBuilder};
pub use indicator::{evaluate_clip, evaluate_clip_ordered, ClipEvaluation, CriticalValues};
pub use merger::SequenceMerger;
pub use ordering::SelectivityOrderer;
pub use svaq::Svaq;
pub use svaqd::Svaqd;

use svq_types::ClipInterval;
use svq_vision::CostLedger;

/// Outcome of running an online algorithm over a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineResult {
    /// Result sequences `P_q` in stream order.
    pub sequences: Vec<ClipInterval>,
    /// Inference + algorithm cost.
    pub cost: CostLedger,
    /// Per-clip evaluation trace (used by the evaluation metrics and the
    /// FPR analysis of Table 5).
    pub evaluations: Vec<ClipEvaluation>,
}

impl OnlineResult {
    /// Number of clips that satisfied the query.
    pub fn positive_clips(&self) -> usize {
        self.evaluations.iter().filter(|e| e.positive).count()
    }
}
