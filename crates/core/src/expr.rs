//! Extended query expressions — the footnote 2-4 generalisations.
//!
//! The canonical query is a conjunction of object predicates and one action.
//! The paper sketches three extensions, all of which reduce to per-clip
//! binary indicators combined with boolean structure:
//!
//! * **multiple actions** (footnote 3): each action predicate gets its own
//!   per-shot indicator and critical value; indicators conjoin;
//! * **disjunction** (footnote 4): transform to conjunctive normal form and
//!   evaluate clause indicators per clip;
//! * **object relationships** (footnote 2): a binary per-frame indicator
//!   derived from detector boxes (here: `leftOf`), thresholded by a
//!   frame-window critical value exactly like an object-presence predicate.
//!
//! [`CnfQuery`] is a conjunction of clauses, each a disjunction of
//! [`Predicate`]s; [`ExprSvaqd`] runs SVAQD-style dynamic background
//! estimation per distinct predicate.

use crate::online::{OnlineConfig, SequenceMerger};
use svq_scanstats::{CriticalValueTable, KernelEstimator, ScanConfig};
use svq_types::{ActionQuery, ClipInterval, Predicate, VideoGeometry};
use svq_vision::stream::ClipAccess;
use svq_vision::VideoStream;

/// A query in conjunctive normal form: every clause must hold on a clip;
/// a clause holds when at least one of its predicates does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfQuery {
    pub clauses: Vec<Vec<Predicate>>,
}

impl CnfQuery {
    /// Build a CNF query; empty clauses are rejected (they are vacuously
    /// false and almost certainly a caller bug).
    pub fn new(clauses: Vec<Vec<Predicate>>) -> Self {
        assert!(!clauses.is_empty(), "query needs at least one clause");
        assert!(
            clauses.iter().all(|c| !c.is_empty()),
            "clauses must not be empty"
        );
        Self { clauses }
    }

    /// The canonical conjunctive query as CNF (one singleton clause per
    /// predicate).
    pub fn from_action_query(q: &ActionQuery) -> Self {
        let mut clauses: Vec<Vec<Predicate>> = q
            .objects
            .iter()
            .map(|&o| vec![Predicate::Object(o)])
            .collect();
        clauses.push(vec![Predicate::Action(q.action)]);
        Self::new(clauses)
    }

    /// All distinct predicates, in first-appearance order.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut out: Vec<Predicate> = Vec::new();
        for clause in &self.clauses {
            for p in clause {
                if !out.contains(p) {
                    out.push(*p);
                }
            }
        }
        out
    }
}

/// Whether a predicate counts positive occurrence units on frames (true)
/// or shots (false).
fn is_frame_level(p: &Predicate) -> bool {
    !matches!(p, Predicate::Action(_))
}

/// SVAQD generalised to CNF queries: one background estimator and critical
/// value per distinct predicate.
#[derive(Debug)]
pub struct ExprSvaqd {
    query: CnfQuery,
    predicates: Vec<Predicate>,
    config: OnlineConfig,
    geometry: VideoGeometry,
    estimators: Vec<KernelEstimator>,
    frame_table: CriticalValueTable,
    shot_table: CriticalValueTable,
    criticals: Vec<u32>,
    merger: SequenceMerger,
}

impl ExprSvaqd {
    /// Initialise with one shared prior per OU kind.
    pub fn new(
        query: CnfQuery,
        geometry: VideoGeometry,
        config: OnlineConfig,
        p_frame_0: f64,
        p_shot_0: f64,
    ) -> Self {
        let predicates = query.predicates();
        let mut frame_table = CriticalValueTable::new(ScanConfig::new(
            geometry.frames_per_clip(),
            config.horizon_windows,
            config.alpha,
        ));
        let mut shot_table = CriticalValueTable::new(ScanConfig::new(
            geometry.shots_per_clip,
            config.horizon_windows,
            config.alpha,
        ));
        let estimators: Vec<KernelEstimator> = predicates
            .iter()
            .map(|p| {
                if is_frame_level(p) {
                    KernelEstimator::new(config.bandwidth_frames, p_frame_0)
                } else {
                    KernelEstimator::new(config.bandwidth_shots, p_shot_0)
                }
            })
            .collect();
        let criticals = predicates
            .iter()
            .zip(&estimators)
            .map(|(p, e)| {
                if is_frame_level(p) {
                    frame_table.critical_value(e.estimate())
                } else {
                    shot_table.critical_value(e.estimate())
                }
            })
            .collect();
        Self {
            query,
            predicates,
            config,
            geometry,
            estimators,
            frame_table,
            shot_table,
            criticals,
            merger: SequenceMerger::new(),
        }
    }

    /// Count positive occurrence units for one predicate on one clip.
    fn count(
        p: &Predicate,
        frames: &[svq_vision::stream::FrameData],
        shots: &[svq_vision::stream::ShotData],
        config: &OnlineConfig,
    ) -> u32 {
        match p {
            Predicate::Object(class) => frames
                .iter()
                .filter(|f| {
                    f.detections
                        .iter()
                        .any(|d| d.detection.class == *class && d.detection.score >= config.t_obj)
                })
                .count() as u32,
            Predicate::Action(class) => shots
                .iter()
                .filter(|s| {
                    s.actions
                        .iter()
                        .any(|a| a.class == *class && a.score >= config.t_act)
                })
                .count() as u32,
            Predicate::LeftOf(left, right) => frames
                .iter()
                .filter(|f| {
                    f.detections.iter().any(|l| {
                        l.detection.class == *left
                            && l.detection.score >= config.t_obj
                            && f.detections.iter().any(|r| {
                                r.detection.class == *right
                                    && r.detection.score >= config.t_obj
                                    && l.detection.bbox.left_of(&r.detection.bbox)
                            })
                    })
                })
                .count() as u32,
        }
    }

    /// Process the next clip; returns a closed sequence if any.
    pub fn push_clip<C: ClipAccess>(&mut self, view: &mut C) -> Option<ClipInterval> {
        let clip = view.clip();
        let needs_frames = self.predicates.iter().any(is_frame_level);
        let needs_shots = self.predicates.iter().any(|p| !is_frame_level(p));
        let frames = if needs_frames {
            view.object_frames()
        } else {
            Vec::new()
        };
        let shots = if needs_shots {
            view.action_shots()
        } else {
            Vec::new()
        };

        // Per-predicate counts and indicators.
        let counts: Vec<u32> = self
            .predicates
            .iter()
            .map(|p| Self::count(p, &frames, &shots, &self.config))
            .collect();
        let indicators: Vec<bool> = counts
            .iter()
            .zip(&self.criticals)
            .map(|(&c, &k)| c >= k)
            .collect();

        // CNF evaluation.
        let positive = self.query.clauses.iter().all(|clause| {
            clause.iter().any(|p| {
                self.predicates
                    .iter()
                    .position(|q| q == p)
                    .is_some_and(|idx| indicators[idx])
            })
        });

        // Background updates (NegativeClips semantics per predicate).
        for ((p, est), (&count, &ind)) in self
            .predicates
            .iter()
            .zip(self.estimators.iter_mut())
            .zip(counts.iter().zip(indicators.iter()))
        {
            let update = match self.config.update {
                crate::online::BackgroundUpdate::NegativeClips => !ind,
                crate::online::BackgroundUpdate::AllClips => true,
                crate::online::BackgroundUpdate::PositiveClips => positive,
            };
            if update {
                let units = if is_frame_level(p) {
                    self.geometry.frames_per_clip() as u64
                } else {
                    self.geometry.shots_per_clip as u64
                };
                est.observe_run(units, count as u64);
            }
        }
        for (i, p) in self.predicates.iter().enumerate() {
            let est = self.estimators[i].estimate();
            self.criticals[i] = if is_frame_level(p) {
                self.frame_table.critical_value(est)
            } else {
                self.shot_table.critical_value(est)
            };
        }

        self.merger.push(clip, positive)
    }

    /// Current per-predicate background activation estimates, in the
    /// engine's distinct-predicate order (the drift surface a standing
    /// query snapshots).
    pub fn backgrounds(&self) -> Vec<f64> {
        self.estimators.iter().map(|e| e.estimate()).collect()
    }

    /// Current per-predicate critical run lengths, matching
    /// [`ExprSvaqd::backgrounds`] positionally.
    pub fn criticals(&self) -> Vec<u32> {
        self.criticals.clone()
    }

    /// End of stream.
    pub fn finish(self) -> Vec<ClipInterval> {
        self.merger.finish()
    }

    /// Convenience: run over a whole stream.
    pub fn run(
        query: CnfQuery,
        stream: &mut VideoStream<'_>,
        config: OnlineConfig,
        p_frame_0: f64,
        p_shot_0: f64,
    ) -> Vec<ClipInterval> {
        let mut engine = ExprSvaqd::new(query, stream.geometry(), config, p_frame_0, p_shot_0);
        while let Some(mut view) = stream.next_clip() {
            engine.push_clip(&mut view);
        }
        engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use svq_types::{ActionClass, BBox, ClipId, FrameId, Interval, ObjectClass, TrackId, VideoId};
    use svq_vision::models::{DetectionOracle, ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};

    /// Clips 0..19. car left (x<0.3) on clips 4..=9; person right on 4..=14;
    /// jumping on 6..=9; kissing on 12..=13.
    fn oracle() -> DetectionOracle {
        let mut gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 1_000);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(200), FrameId::new(499)),
            visibility: 1.0,
            bbox: BBox::new(0.05, 0.3, 0.25, 0.7),
        });
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("person"),
            track: TrackId::new(2),
            frames: Interval::new(FrameId::new(200), FrameId::new(749)),
            visibility: 1.0,
            bbox: BBox::new(0.6, 0.2, 0.9, 0.9),
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(300), FrameId::new(499)),
            salience: 1.0,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("kissing"),
            frames: Interval::new(FrameId::new(600), FrameId::new(699)),
            salience: 1.0,
        });
        DetectionOracle::new(
            Arc::new(gt),
            ModelSuite::ideal(),
            &SceneConfusion::default(),
            0,
        )
    }

    fn iv(s: u64, e: u64) -> ClipInterval {
        Interval::new(ClipId::new(s), ClipId::new(e))
    }

    #[test]
    fn cnf_from_action_query_matches_svaqd_semantics() {
        let q = ActionQuery::named("jumping", &["car", "person"]);
        let cnf = CnfQuery::from_action_query(&q);
        assert_eq!(cnf.clauses.len(), 3);
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let seqs = ExprSvaqd::run(cnf, &mut stream, OnlineConfig::default(), 1e-4, 1e-4);
        assert_eq!(seqs, vec![iv(6, 9)]);
    }

    #[test]
    fn disjunction_of_actions() {
        // jumping OR kissing, with person present.
        let cnf = CnfQuery::new(vec![
            vec![
                Predicate::Action(ActionClass::named("jumping")),
                Predicate::Action(ActionClass::named("kissing")),
            ],
            vec![Predicate::Object(ObjectClass::named("person"))],
        ]);
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let seqs = ExprSvaqd::run(cnf, &mut stream, OnlineConfig::default(), 1e-4, 1e-4);
        assert_eq!(seqs, vec![iv(6, 9), iv(12, 13)]);
    }

    #[test]
    fn conjunction_of_multiple_actions() {
        // jumping AND kissing never co-occur here.
        let cnf = CnfQuery::new(vec![
            vec![Predicate::Action(ActionClass::named("jumping"))],
            vec![Predicate::Action(ActionClass::named("kissing"))],
        ]);
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let seqs = ExprSvaqd::run(cnf, &mut stream, OnlineConfig::default(), 1e-4, 1e-4);
        assert!(seqs.is_empty());
    }

    #[test]
    fn left_of_relationship_predicate() {
        // car (x ~0.05-0.25) is left of person (x ~0.6-0.9) on clips 4..=9.
        let cnf = CnfQuery::new(vec![vec![Predicate::LeftOf(
            ObjectClass::named("car"),
            ObjectClass::named("person"),
        )]]);
        let oracle = oracle();
        let mut stream = VideoStream::new(&oracle);
        let seqs = ExprSvaqd::run(cnf, &mut stream, OnlineConfig::default(), 1e-4, 1e-4);
        assert_eq!(seqs, vec![iv(4, 9)]);
        // The reverse relation never holds.
        let cnf = CnfQuery::new(vec![vec![Predicate::LeftOf(
            ObjectClass::named("person"),
            ObjectClass::named("car"),
        )]]);
        let oracle2 = self::tests::oracle();
        let mut stream = VideoStream::new(&oracle2);
        let seqs = ExprSvaqd::run(cnf, &mut stream, OnlineConfig::default(), 1e-4, 1e-4);
        assert!(seqs.is_empty());
    }

    #[test]
    fn duplicate_predicates_share_one_estimator() {
        let cnf = CnfQuery::new(vec![
            vec![Predicate::Object(ObjectClass::named("car"))],
            vec![
                Predicate::Object(ObjectClass::named("car")),
                Predicate::Action(ActionClass::named("jumping")),
            ],
        ]);
        assert_eq!(cnf.predicates().len(), 2);
    }

    #[test]
    #[should_panic(expected = "clauses must not be empty")]
    fn empty_clause_rejected() {
        CnfQuery::new(vec![vec![]]);
    }
}
