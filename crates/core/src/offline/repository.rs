//! Top-K over a multi-video repository.
//!
//! The paper's `inputVideo` "can refer to one or more videos suitably
//! pre-processed" (§2). Global ranking reduces cleanly to per-video
//! ranking: the global top-K is contained in the union of the per-video
//! top-Ks (scores are per-sequence and videos are disjoint), so
//! [`RepositoryRvaq`] runs RVAQ with exact scores per video and merges —
//! correct, embarrassingly parallel across videos, and each video still
//! benefits from RVAQ's bound pruning internally.

use super::rvaq::{Rvaq, RvaqOptions};
use svq_storage::{DiskStats, VideoRepository};
use svq_types::{ActionQuery, ClipInterval, ScoringFunctions, SvqResult, VideoId};

/// One globally ranked result.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalRankedSequence {
    pub video: VideoId,
    pub interval: ClipInterval,
    pub score: f64,
}

/// Outcome of a repository-wide top-K query.
#[derive(Debug, Clone, PartialEq)]
pub struct RepositoryTopK {
    /// Best-first global ranking.
    pub ranked: Vec<GlobalRankedSequence>,
    /// Accesses summed across all per-video executions.
    pub disk: DiskStats,
    /// Total result sequences across the repository (before ranking).
    pub total_sequences: usize,
}

/// RVAQ lifted to repositories.
pub struct RepositoryRvaq;

impl RepositoryRvaq {
    /// Global top-K across every video in the repository. Catalogs stream
    /// through in `VideoId` order, loading lazily if the repository was
    /// opened with [`VideoRepository::open_dir`] — a read error on any
    /// catalog file surfaces as `Err`.
    pub fn run(
        repo: &VideoRepository,
        query: &ActionQuery,
        scoring: &dyn ScoringFunctions,
        k: usize,
    ) -> SvqResult<RepositoryTopK> {
        let mut ranked: Vec<GlobalRankedSequence> = Vec::new();
        let mut disk = DiskStats::default();
        let mut total_sequences = 0usize;
        for catalog in repo.catalogs() {
            let catalog = catalog?;
            let local = Rvaq::run(
                &catalog,
                query,
                scoring,
                RvaqOptions::new(k).with_exact_scores(),
            );
            total_sequences += local.total_sequences;
            disk.sorted_accesses += local.disk.sorted_accesses;
            disk.random_accesses += local.disk.random_accesses;
            ranked.extend(local.ranked.into_iter().map(|r| GlobalRankedSequence {
                video: catalog.video,
                interval: r.interval,
                score: r.exact.unwrap_or(r.lower),
            }));
        }
        ranked.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.video.cmp(&b.video))
                .then(a.interval.start.cmp(&b.interval.start))
        });
        ranked.truncate(k);
        Ok(RepositoryTopK {
            ranked,
            disk,
            total_sequences,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::ingest;
    use crate::online::OnlineConfig;
    use svq_types::{ActionClass, ObjectClass, PaperScoring, VideoGeometry};
    use svq_vision::models::ModelSuite;
    use svq_vision::synth::{ObjectSpec, ScenarioSpec};

    fn repo() -> (VideoRepository, ActionQuery) {
        let query = ActionQuery::named("kneeling", &["tree"]);
        let mut repo = VideoRepository::new();
        for v in 0..3u64 {
            let video = ScenarioSpec::activitynet(
                VideoId::new(v),
                4_000,
                ActionClass::named("kneeling"),
                vec![ObjectSpec::scene(ObjectClass::named("tree"))],
                31 + v,
            )
            .generate();
            let oracle = video.oracle(ModelSuite::accurate());
            repo.add(ingest(&oracle, &PaperScoring, &OnlineConfig::default()));
        }
        (repo, query)
    }

    #[test]
    fn global_topk_merges_per_video_winners() {
        let (repo, query) = repo();
        let top = RepositoryRvaq::run(&repo, &query, &PaperScoring, 5).unwrap();
        assert!(top.ranked.len() <= 5);
        assert!(!top.ranked.is_empty());
        // Best-first ordering.
        for w in top.ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // The global winner equals the best per-video winner.
        let mut best_local = None::<GlobalRankedSequence>;
        for catalog in repo.catalogs() {
            let catalog = catalog.unwrap();
            let local = Rvaq::run(
                &catalog,
                &query,
                &PaperScoring,
                super::RvaqOptions::new(1).with_exact_scores(),
            );
            if let Some(r) = local.ranked.first() {
                let g = GlobalRankedSequence {
                    video: catalog.video,
                    interval: r.interval,
                    score: r.exact.unwrap(),
                };
                if best_local.as_ref().is_none_or(|b| g.score > b.score) {
                    best_local = Some(g);
                }
            }
        }
        // Scores are accumulated in different orders by the two paths, so
        // compare them with a relative tolerance instead of bit equality.
        let best = best_local.unwrap();
        assert_eq!(top.ranked[0].video, best.video);
        assert_eq!(top.ranked[0].interval, best.interval);
        let rel = (top.ranked[0].score - best.score).abs() / best.score.abs().max(1.0);
        assert!(
            rel < 1e-9,
            "scores diverge: {} vs {}",
            top.ranked[0].score,
            best.score
        );
    }

    #[test]
    fn k_spanning_all_videos() {
        let (repo, query) = repo();
        let huge = RepositoryRvaq::run(&repo, &query, &PaperScoring, 1_000).unwrap();
        // Capped by per-video truncation at k each: here k >= everything,
        // so the count equals the total sequence count.
        assert_eq!(huge.ranked.len(), huge.total_sequences);
        // Results come from more than one video.
        let videos: std::collections::HashSet<VideoId> =
            huge.ranked.iter().map(|r| r.video).collect();
        assert!(videos.len() > 1);
        let _ = VideoGeometry::default();
    }
}
