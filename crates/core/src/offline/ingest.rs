//! The ingestion phase — §4.2.
//!
//! Runs once per video, query-independently, over *every* class the
//! deployed models support:
//!
//! 1. **Clip score tables.** For each clip and each class, the per-class
//!    clip score (`h` over the model scores inside the clip, Eqs. 7-8) is
//!    computed and stored into the class's `(cid, Score)` table.
//! 2. **Individual sequences.** For each class, a per-class SVAQD instance
//!    (dynamic background estimation + scan-statistic critical values)
//!    converts the per-clip positive-prediction counts into positive clips
//!    (Eqs. 1-2) and merges them into the class's sequence set `P_{o_i}` /
//!    `P_{a_j}`.
//!
//! The output [`IngestedVideo`] is all the offline engine ever touches at
//! query time.

use crate::online::{BackgroundUpdate, OnlineConfig, SequenceMerger};
use svq_scanstats::{CriticalValueTable, KernelEstimator, ScanConfig};
use svq_storage::{ClipScoreTable, IngestedVideo, SequenceSet, SimulatedDisk};
use svq_types::{ActionClass, ClipId, ObjectClass, ScoringFunctions, Vocabulary};
use svq_vision::models::DetectionOracle;

/// Per-class SVAQD-lite used during ingestion: estimator + critical value +
/// merger, fed with per-clip counts.
struct ClassTracker {
    estimator: KernelEstimator,
    critical: u32,
    window: u32,
    merger: SequenceMerger,
    prev_positive: bool,
    clips_seen: u32,
}

/// Clamp a critical value to `[2, w−1]` (see `Svaqd`).
fn clamp_critical(k: u32, window: u32) -> u32 {
    k.clamp(2, (window - 1).max(2))
}

impl ClassTracker {
    fn new(bandwidth: f64, prior: f64, window: u32, table: &mut CriticalValueTable) -> Self {
        let estimator = KernelEstimator::new(bandwidth, prior);
        let critical = clamp_critical(table.critical_value(estimator.estimate()), window);
        Self {
            estimator,
            critical,
            window,
            merger: SequenceMerger::new(),
            prev_positive: false,
            clips_seen: 0,
        }
    }

    /// Feed one clip's positive-OU count; returns nothing — sequences are
    /// collected at the end.
    fn push(
        &mut self,
        clip: ClipId,
        units: u64,
        count: u32,
        config: &OnlineConfig,
        table: &mut CriticalValueTable,
    ) {
        let positive = count >= self.critical;
        let in_warmup = self.clips_seen < config.warmup_clips;
        self.clips_seen += 1;
        let update = in_warmup
            || match config.update {
                BackgroundUpdate::NegativeClips => !positive && !self.prev_positive,
                BackgroundUpdate::AllClips => true,
                BackgroundUpdate::PositiveClips => positive,
            };
        if update {
            // Censored at twice the binomial 99 % noise quantile, as in
            // the online engine (see `Svaqd`).
            let cap =
                (2 * svq_scanstats::binomial::quantile(0.99, units, self.estimator.estimate()))
                    .max(1) as u32;
            self.estimator.observe_run(units, count.min(cap) as u64);
            self.critical =
                clamp_critical(table.critical_value(self.estimator.estimate()), self.window);
        }
        self.prev_positive = positive;
        self.merger.push(clip, positive);
    }

    fn finish(self) -> SequenceSet {
        SequenceSet::from_sorted(self.merger.finish())
    }
}

/// Run the ingestion phase over one simulated video.
///
/// `scoring` supplies the `h` functions used for the clip score tables;
/// `config` supplies thresholds and the scan-statistic parameters used for
/// the per-class individual sequences (the same knobs the online engine
/// uses, per §4.2's "utilizing algorithm SVAQD").
pub fn ingest(
    oracle: &DetectionOracle,
    scoring: &dyn ScoringFunctions,
    config: &OnlineConfig,
) -> IngestedVideo {
    let truth = oracle.truth();
    let geometry = truth.geometry;
    let clip_count = geometry.clip_count(truth.total_frames);
    let n_obj = ObjectClass::cardinality();
    let n_act = ActionClass::cardinality();
    let disk = SimulatedDisk::new();

    let mut object_table_sweep = CriticalValueTable::new(ScanConfig::new(
        geometry.frames_per_clip(),
        config.horizon_windows,
        config.alpha,
    ));
    let mut action_table_sweep = CriticalValueTable::new(ScanConfig::new(
        geometry.shots_per_clip,
        config.horizon_windows,
        config.alpha,
    ));

    // Ingestion is query-independent: no prior knowledge of any class's
    // noise rate, so every class starts from the same uninformative prior.
    let prior = 0.01;
    let mut obj_trackers: Vec<ClassTracker> = (0..n_obj)
        .map(|_| {
            ClassTracker::new(
                config.bandwidth_frames,
                prior,
                geometry.frames_per_clip(),
                &mut object_table_sweep,
            )
        })
        .collect();
    let mut act_trackers: Vec<ClassTracker> = (0..n_act)
        .map(|_| {
            ClassTracker::new(
                config.bandwidth_shots,
                prior,
                geometry.shots_per_clip,
                &mut action_table_sweep,
            )
        })
        .collect();

    let mut obj_rows: Vec<Vec<(ClipId, f64)>> = vec![Vec::new(); n_obj];
    let mut act_rows: Vec<Vec<(ClipId, f64)>> = vec![Vec::new(); n_act];

    // Reused per-clip scratch.
    let mut obj_counts = vec![0u32; n_obj];
    let mut obj_scores: Vec<Vec<f64>> = vec![Vec::new(); n_obj];
    let mut act_counts = vec![0u32; n_act];
    let mut act_scores: Vec<Vec<f64>> = vec![Vec::new(); n_act];
    let mut seen_this_frame = vec![u64::MAX; n_obj];
    let mut seen_this_shot = vec![u64::MAX; n_act];

    use svq_vision::models::{ActionRecognizer, ObjectDetector};
    for c in 0..clip_count {
        let clip = ClipId::new(c);
        obj_counts.iter_mut().for_each(|x| *x = 0);
        act_counts.iter_mut().for_each(|x| *x = 0);
        // --- frames: object detections.
        for f in geometry.frames_of_clip(clip) {
            for det in oracle.detect(svq_types::FrameId::new(f)) {
                let idx = det.detection.class.index();
                obj_scores[idx].push(det.detection.score);
                // One positive indicator per frame per class (Eq. 1 counts
                // frames, not detections), thresholded like the online path.
                if det.detection.score >= config.t_obj && seen_this_frame[idx] != f {
                    obj_counts[idx] += 1;
                    seen_this_frame[idx] = f;
                }
            }
        }
        // --- shots: action scores.
        for s in geometry.shots_of_clip(clip) {
            for act in oracle.recognize(svq_types::ShotId::new(s)) {
                let idx = act.class.index();
                act_scores[idx].push(act.score);
                if act.score >= config.t_act && seen_this_shot[idx] != s {
                    act_counts[idx] += 1;
                    seen_this_shot[idx] = s;
                }
            }
        }
        // --- fold into tables and trackers.
        let frames_per_clip = geometry.frames_per_clip() as u64;
        let shots_per_clip = geometry.shots_per_clip as u64;
        for i in 0..n_obj {
            if !obj_scores[i].is_empty() {
                let score = scoring.h_object(&obj_scores[i]);
                if score > 0.0 {
                    obj_rows[i].push((clip, score));
                }
                obj_scores[i].clear();
            }
            obj_trackers[i].push(
                clip,
                frames_per_clip,
                obj_counts[i],
                config,
                &mut object_table_sweep,
            );
        }
        for j in 0..n_act {
            if !act_scores[j].is_empty() {
                let score = scoring.h_action(&act_scores[j]);
                if score > 0.0 {
                    act_rows[j].push((clip, score));
                }
                act_scores[j].clear();
            }
            act_trackers[j].push(
                clip,
                shots_per_clip,
                act_counts[j],
                config,
                &mut action_table_sweep,
            );
        }
    }

    let object_tables: Vec<ClipScoreTable> = obj_rows
        .into_iter()
        .map(|rows| ClipScoreTable::new(rows, disk.clone()))
        .collect();
    let action_tables: Vec<ClipScoreTable> = act_rows
        .into_iter()
        .map(|rows| ClipScoreTable::new(rows, disk.clone()))
        .collect();
    let object_sequences: Vec<SequenceSet> =
        obj_trackers.into_iter().map(ClassTracker::finish).collect();
    let action_sequences: Vec<SequenceSet> =
        act_trackers.into_iter().map(ClassTracker::finish).collect();

    IngestedVideo::new(
        truth.video,
        geometry,
        clip_count,
        object_tables,
        action_tables,
        object_sequences,
        action_sequences,
        disk,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use svq_types::{
        ActionQuery, BBox, FrameId, Interval, PaperScoring, TrackId, VideoGeometry, VideoId,
    };
    use svq_vision::models::{ModelSuite, SceneConfusion};
    use svq_vision::truth::{ActionSpan, GroundTruth, ObjectTrack};

    fn oracle(suite: ModelSuite) -> DetectionOracle {
        let mut gt = GroundTruth::new(VideoId::new(0), VideoGeometry::default(), 3_000);
        gt.tracks.push(ObjectTrack {
            class: ObjectClass::named("car"),
            track: TrackId::new(1),
            frames: Interval::new(FrameId::new(1_000), FrameId::new(1_999)),
            visibility: 1.0,
            bbox: BBox::FULL,
        });
        gt.actions.push(ActionSpan {
            class: ActionClass::named("jumping"),
            frames: Interval::new(FrameId::new(1_200), FrameId::new(1_799)),
            salience: 1.0,
        });
        let confusion = SceneConfusion {
            objects: vec![(ObjectClass::named("car"), 1.0)],
            actions: vec![(ActionClass::named("jumping"), 1.0)],
        };
        DetectionOracle::new(Arc::new(gt), suite, &confusion, 17)
    }

    #[test]
    fn ideal_ingestion_matches_truth_exactly() {
        let oracle = oracle(ModelSuite::ideal());
        let cat = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let car = ObjectClass::named("car");
        let jumping = ActionClass::named("jumping");
        // Car visible frames 1000-1999 = clips 20..=39.
        assert_eq!(
            cat.object_sequences(car).intervals(),
            &[Interval::new(ClipId::new(20), ClipId::new(39))]
        );
        // Jumping frames 1200-1799 = clips 24..=35.
        assert_eq!(
            cat.action_sequences(jumping).intervals(),
            &[Interval::new(ClipId::new(24), ClipId::new(35))]
        );
        // Eq. 12 intersection at query time.
        let q = ActionQuery::named("jumping", &["car"]);
        assert_eq!(
            cat.result_sequences(&q).intervals(),
            &[Interval::new(ClipId::new(24), ClipId::new(35))]
        );
        // Tables hold scores exactly on the clips where the class appears.
        assert_eq!(cat.object_table(car).len(), 20);
        assert_eq!(cat.action_table(jumping).len(), 12);
        // Unrelated classes are empty.
        assert!(cat.object_sequences(ObjectClass::named("dog")).is_empty());
        assert_eq!(cat.object_table(ObjectClass::named("dog")).len(), 0);
    }

    #[test]
    fn table_scores_are_h_sums() {
        let oracle = oracle(ModelSuite::ideal());
        let cat = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let car = ObjectClass::named("car");
        // Ideal detector: one detection per frame, score >= 0.99; h = sum
        // over 50 frames -> table scores in [49.5, 50.0+].
        for (_, score) in cat.object_table(car).iter_sorted() {
            assert!((45.0..=51.0).contains(&score), "clip score {score}");
        }
    }

    #[test]
    fn realistic_ingestion_recovers_sequences_approximately() {
        let oracle = oracle(ModelSuite::accurate());
        let cat = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let car = ObjectClass::named("car");
        let truth = Interval::new(ClipId::new(20), ClipId::new(39));
        let covered: u64 = cat
            .object_sequences(car)
            .intervals()
            .iter()
            .map(|iv| iv.overlap_len(&truth))
            .sum();
        assert!(covered >= 14, "covered only {covered}/20 clips");
        // Noise does not flood the catalog: claimed clips outside truth are
        // bounded.
        let spurious = cat.object_sequences(car).clip_count() - covered;
        assert!(spurious <= 8, "spurious {spurious}");
    }

    #[test]
    fn ingestion_is_deterministic() {
        let oracle = oracle(ModelSuite::accurate());
        let a = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let b = ingest(&oracle, &PaperScoring, &OnlineConfig::default());
        let car = ObjectClass::named("car");
        assert_eq!(a.object_sequences(car), b.object_sequences(car));
        assert_eq!(
            a.object_table(car).iter_sorted().collect::<Vec<_>>(),
            b.object_table(car).iter_sorted().collect::<Vec<_>>()
        );
    }
}
