//! The offline (repository) case — §4 of the paper.
//!
//! Queries run against videos that were pre-processed during the ingestion
//! phase (`svq-storage`): per-class clip score tables and per-class
//! individual sequences. At query time `P_q` is formed by interval-sweep
//! intersection (Eq. 12) and the top-K sequences under the user's scoring
//! algebra are produced by [`Rvaq`] (Algorithm 4), which drives the
//! [`TbClip`] iterator (Algorithm 5) and refines per-sequence score bounds
//! until the stopping condition `B_lo^K ≥ B_up^¬K` (Eq. 15).
//!
//! Baselines used in the paper's §5.1 comparison live here too: [`FaTopK`]
//! (Fagin's algorithm adapted), [`RvaqNoSkip`] (RVAQ without the skip set),
//! and [`PqTraverse`] (score every clip of every sequence in `P_q`).

mod baselines;
mod bounds;
pub mod ingest;
pub mod repository;
pub mod rvaq;
mod skip;
pub mod tbclip;

pub use baselines::{FaTopK, PqTraverse, RvaqNoSkip};
pub use bounds::SequenceBounds;
pub use ingest::ingest;
pub use repository::{GlobalRankedSequence, RepositoryRvaq, RepositoryTopK};
pub use rvaq::{RankedSequence, Rvaq, RvaqOptions, TopKResult};
pub use skip::SkipSet;
pub use tbclip::{TbClip, TbClipStep};
