//! RVAQ — Algorithm 4.
//!
//! Top-K result sequences for a query over an ingested video:
//!
//! 1. `P_q = P_a ⊗ P_{o_1} ⊗ … ⊗ P_{o_I}` (Eq. 12, interval sweep).
//! 2. Drive the [`TbClip`] iterator; each delivered clip tightens every
//!    active sequence's score bounds (Eqs. 13-14).
//! 3. Maintain the `PQ_lo^K` / `PQ_up^¬K` split: the K sequences with the
//!    highest lower bounds versus the rest. Stop when
//!    `B_lo^K ≥ B_up^¬K` (Eq. 15).
//! 4. Sequences whose upper bound falls below `B_lo^K` are conclusively
//!    out; sequences whose lower bound exceeds `B_up^¬K` are conclusively
//!    in. Either way their clips join `C_skip` and stop costing accesses
//!    (the *skip mechanism* — disabled in the `RVAQ-noSkip` baseline).
//!
//! Implementation note on the priority queues: Eq. 13 re-estimates the
//! upper bound of *every* sequence whenever `c_top` advances, so incremental
//! heaps would be rebuilt wholesale each iteration anyway; we keep the PQ
//! *semantics* (top-K by lower bound, max of the rest by upper bound) with
//! a selection scan per iteration, which is `O(|P_q|)` — result-sequence
//! counts are tens, not millions.

use super::bounds::SequenceBounds;
use super::skip::SkipSet;
use super::tbclip::TbClip;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use svq_storage::{DiskStats, IngestedVideo};
use svq_types::{ActionQuery, ClipId, ClipInterval, Clock, ScoringFunctions};
use svq_vision::WallClock;

/// Options for one RVAQ execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RvaqOptions {
    /// Number of results requested.
    pub k: usize,
    /// Compute exact scores for the top-K (costs the accesses the paper
    /// describes for large K; off by default, as in §4.3's skip rule).
    pub exact_scores: bool,
    /// Enable the skip mechanism (`false` reproduces the RVAQ-noSkip
    /// baseline).
    pub use_skip: bool,
}

impl RvaqOptions {
    /// Standard options for `k` results.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            exact_scores: false,
            use_skip: true,
        }
    }

    /// Request exact scores.
    pub fn with_exact_scores(mut self) -> Self {
        self.exact_scores = true;
        self
    }

    /// Disable the skip mechanism.
    pub fn without_skip(mut self) -> Self {
        self.use_skip = false;
        self
    }
}

/// One ranked result sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSequence {
    pub interval: ClipInterval,
    /// Lower bound on the sequence score at stopping time.
    pub lower: f64,
    /// Upper bound at stopping time.
    pub upper: f64,
    /// Exact score, when requested or when bounds met.
    pub exact: Option<f64>,
}

/// Outcome of a top-K query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKResult {
    /// The top-K sequences, best first.
    pub ranked: Vec<RankedSequence>,
    /// Disk accesses attributable to this query.
    pub disk: DiskStats,
    /// Wall-clock of the algorithm itself, milliseconds.
    pub wall_ms: f64,
    /// Simulated I/O latency of the accesses, milliseconds.
    pub io_ms: f64,
    /// Iterator invocations performed.
    pub iterations: u64,
    /// Total result sequences `|P_q|` before ranking.
    pub total_sequences: usize,
}

impl TopKResult {
    /// Simulated end-to-end latency (algorithm + I/O), milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.wall_ms + self.io_ms
    }
}

/// Algorithm 4.
pub struct Rvaq;

impl Rvaq {
    /// Run a top-K query against one ingested video.
    pub fn run(
        catalog: &IngestedVideo,
        query: &ActionQuery,
        scoring: &dyn ScoringFunctions,
        options: RvaqOptions,
    ) -> TopKResult {
        Self::run_with_clock(catalog, query, scoring, options, &WallClock::new())
    }

    /// [`Rvaq::run`] with an injected [`Clock`] charging `wall_ms`.
    pub fn run_with_clock(
        catalog: &IngestedVideo,
        query: &ActionQuery,
        scoring: &dyn ScoringFunctions,
        options: RvaqOptions,
        clock: &dyn Clock,
    ) -> TopKResult {
        let start = clock.now_nanos();
        let disk_before = catalog.disk().stats();

        let pq = catalog.result_sequences(query);
        let total_sequences = pq.len();
        let k = options.k.min(total_sequences);
        let mut skip = if options.use_skip {
            SkipSet::new(pq.clone())
        } else {
            SkipSet::disabled(pq.clone())
        };
        let mut bounds: Vec<SequenceBounds> = pq
            .intervals()
            .iter()
            .map(|iv| SequenceBounds::new(*iv, scoring))
            .collect();
        let mut tb = TbClip::new(catalog, query, scoring);
        let mut absorbed: BTreeSet<ClipId> = BTreeSet::new();
        let mut iterations = 0u64;

        if k > 0 {
            loop {
                iterations += 1;
                let step = tb.next(&skip);
                let exhausted = step.top.is_none() && step.bottom.is_none();

                // Absorb delivered clips into their sequences.
                for delivered in [step.top, step.bottom].into_iter().flatten() {
                    let (clip, score) = delivered;
                    if absorbed.insert(clip) {
                        if let Some(i) = pq.find_index(clip) {
                            bounds[i].absorb(score, scoring);
                        }
                    }
                }
                // Refresh bounds of active sequences (Eqs. 13-14). A `None`
                // side is exhausted: every non-skipped clip is absorbed, so
                // the refreshed bound is exact regardless of the bound
                // score used.
                let top_score = step.top.map_or(0.0, |(_, s)| s);
                let btm_score = step.bottom.map_or(0.0, |(_, s)| s);
                for b in bounds.iter_mut().filter(|b| b.active()) {
                    b.refresh_upper(top_score, scoring);
                    b.refresh_lower(btm_score, scoring);
                }

                // PQ_lo^K / PQ_up^¬K: split non-excluded sequences by lower
                // bound.
                let mut order: Vec<usize> = (0..bounds.len())
                    .filter(|&i| !bounds[i].resolved_out)
                    .collect();
                order.sort_by(|&a, &b| bounds[b].b_lo.total_cmp(&bounds[a].b_lo).then(a.cmp(&b)));
                let in_k: BTreeSet<usize> = order.iter().take(k).copied().collect();
                let b_lo_k = order
                    .get(k - 1)
                    .map_or(f64::NEG_INFINITY, |&i| bounds[i].b_lo);
                let b_up_not_k = order
                    .iter()
                    .skip(k)
                    .map(|&i| bounds[i].b_up)
                    .fold(f64::NEG_INFINITY, f64::max);

                // Conclusive exclusion (Algorithm 4 lines 13-14).
                for (i, bound) in bounds.iter_mut().enumerate() {
                    if bound.active() && bound.b_up < b_lo_k {
                        bound.resolved_out = true;
                        if options.use_skip {
                            skip.skip_sequence(i);
                        }
                    }
                }
                // Conclusive inclusion (lines 19-20).
                for &i in &in_k {
                    if bounds[i].active() && bounds[i].b_lo > b_up_not_k {
                        bounds[i].resolved_in = true;
                        if options.use_skip && !options.exact_scores {
                            skip.skip_sequence(i);
                        }
                    }
                }

                // Stopping condition (Eq. 15), or nothing left to refine.
                if b_lo_k >= b_up_not_k || exhausted {
                    break;
                }
            }
        }

        // Select the final top-K by lower bound.
        let mut order: Vec<usize> = (0..bounds.len())
            .filter(|&i| !bounds[i].resolved_out)
            .collect();
        order.sort_by(|&a, &b| bounds[b].b_lo.total_cmp(&bounds[a].b_lo).then(a.cmp(&b)));
        order.truncate(k);

        // Optional exact-score pass over the winners.
        if options.exact_scores {
            for &i in &order {
                let interval = bounds[i].interval;
                for clip in interval.iter() {
                    if absorbed.insert(clip) {
                        let s = tb.score_of(clip);
                        bounds[i].absorb(s, scoring);
                    }
                }
                debug_assert_eq!(bounds[i].remaining, 0);
                bounds[i].b_up = bounds[i].s_known;
                bounds[i].b_lo = bounds[i].s_known;
            }
            order.sort_by(|&a, &b| {
                bounds[b]
                    .s_known
                    .total_cmp(&bounds[a].s_known)
                    .then(a.cmp(&b))
            });
        }

        let ranked = order
            .iter()
            .map(|&i| RankedSequence {
                interval: bounds[i].interval,
                lower: bounds[i].b_lo,
                upper: bounds[i].b_up,
                exact: bounds[i].exact(),
            })
            .collect();

        let disk = catalog.disk().since(disk_before);
        TopKResult {
            ranked,
            disk,
            wall_ms: clock.nanos_since(start) as f64 / 1e6,
            io_ms: catalog.disk().simulated_ms_of(disk),
            iterations,
            total_sequences,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::offline::tbclip::tests::catalog;
    use svq_types::{Interval, PaperScoring};

    fn iv(s: u64, e: u64) -> ClipInterval {
        Interval::new(ClipId::new(s), ClipId::new(e))
    }

    /// Exact sequence score under the toy catalog of `tbclip::tests`:
    /// clip i scores (i+1)(10-i); additive f.
    fn exact(interval: ClipInterval) -> f64 {
        interval
            .iter()
            .map(|c| (c.raw() as f64 + 1.0) * (10.0 - c.raw() as f64))
            .sum()
    }

    /// Shared with the baselines tests.
    pub(crate) fn split_catalog_for_baselines() -> IngestedVideo {
        split_catalog()
    }

    /// A catalog whose P_q splits into several sequences, by restricting
    /// the car sequences.
    fn split_catalog() -> IngestedVideo {
        use svq_storage::{SequenceSet, SimulatedDisk};
        use svq_types::{ObjectClass, VideoGeometry, VideoId, Vocabulary};
        let base = catalog();
        // Rebuild with fragmented car sequences: [0,1], [3,5], [7,9].
        let disk = SimulatedDisk::new();
        let car = ObjectClass::named("car");
        let jumping = svq_types::ActionClass::named("jumping");
        let mut object_tables: Vec<_> = (0..ObjectClass::cardinality())
            .map(|_| svq_storage::ClipScoreTable::new(vec![], disk.clone()))
            .collect();
        let mut action_tables: Vec<_> = (0..svq_types::ActionClass::cardinality())
            .map(|_| svq_storage::ClipScoreTable::new(vec![], disk.clone()))
            .collect();
        object_tables[car.index()] = svq_storage::ClipScoreTable::new(
            base.object_table(car).iter_sorted().collect(),
            disk.clone(),
        );
        action_tables[jumping.index()] = svq_storage::ClipScoreTable::new(
            base.action_table(jumping).iter_sorted().collect(),
            disk.clone(),
        );
        let mut object_sequences = vec![SequenceSet::empty(); ObjectClass::cardinality()];
        let mut action_sequences =
            vec![SequenceSet::empty(); svq_types::ActionClass::cardinality()];
        object_sequences[car.index()] = SequenceSet::new(vec![iv(0, 1), iv(3, 5), iv(7, 9)]);
        action_sequences[jumping.index()] = SequenceSet::new(vec![iv(0, 9)]);
        IngestedVideo::new(
            VideoId::new(0),
            VideoGeometry::default(),
            10,
            object_tables,
            action_tables,
            object_sequences,
            action_sequences,
            disk,
        )
    }

    #[test]
    fn top1_is_the_best_sequence() {
        let cat = split_catalog();
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        // P_q = [0,1], [3,5], [7,9]; exact scores: 10+18=28, 28+30+30=88,
        // 24+18+10=52. Top-1 = [3,5].
        let result = Rvaq::run(&cat, &q, &PaperScoring, RvaqOptions::new(1));
        assert_eq!(result.total_sequences, 3);
        assert_eq!(result.ranked.len(), 1);
        assert_eq!(result.ranked[0].interval, iv(3, 5));
        assert!(result.ranked[0].lower <= exact(iv(3, 5)) + 1e-9);
        assert!(result.ranked[0].upper + 1e-9 >= exact(iv(3, 5)));
    }

    #[test]
    fn top2_in_exact_order_with_exact_scores() {
        let cat = split_catalog();
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        let result = Rvaq::run(
            &cat,
            &q,
            &PaperScoring,
            RvaqOptions::new(2).with_exact_scores(),
        );
        assert_eq!(result.ranked.len(), 2);
        assert_eq!(result.ranked[0].interval, iv(3, 5));
        assert_eq!(result.ranked[0].exact, Some(exact(iv(3, 5))));
        assert_eq!(result.ranked[1].interval, iv(7, 9));
        assert_eq!(result.ranked[1].exact, Some(exact(iv(7, 9))));
    }

    #[test]
    fn k_larger_than_sequences_returns_all() {
        let cat = split_catalog();
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        let result = Rvaq::run(
            &cat,
            &q,
            &PaperScoring,
            RvaqOptions::new(10).with_exact_scores(),
        );
        assert_eq!(result.ranked.len(), 3);
        let scores: Vec<f64> = result.ranked.iter().map(|r| r.exact.unwrap()).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn empty_pq_yields_empty_result() {
        let cat = split_catalog();
        let q = svq_types::ActionQuery::named("jumping", &["dog"]);
        let result = Rvaq::run(&cat, &q, &PaperScoring, RvaqOptions::new(3));
        assert!(result.ranked.is_empty());
        assert_eq!(result.total_sequences, 0);
    }

    #[test]
    fn skip_reduces_random_accesses() {
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        let cat_a = split_catalog();
        let with_skip = Rvaq::run(&cat_a, &q, &PaperScoring, RvaqOptions::new(1));
        let cat_b = split_catalog();
        let no_skip = Rvaq::run(
            &cat_b,
            &q,
            &PaperScoring,
            RvaqOptions::new(1).without_skip(),
        );
        assert_eq!(with_skip.ranked[0].interval, no_skip.ranked[0].interval);
        assert!(
            with_skip.disk.random_accesses <= no_skip.disk.random_accesses,
            "skip {} vs noskip {}",
            with_skip.disk.random_accesses,
            no_skip.disk.random_accesses
        );
    }

    #[test]
    fn single_sequence_query_short_circuits() {
        let cat = catalog(); // P_q = [0,9], one sequence
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        let result = Rvaq::run(&cat, &q, &PaperScoring, RvaqOptions::new(1));
        assert_eq!(result.ranked.len(), 1);
        assert_eq!(result.ranked[0].interval, iv(0, 9));
        // With K = |P_q| = 1 the stopping condition fires immediately
        // (B_up^¬K over the empty set): one iteration.
        assert_eq!(result.iterations, 1);
    }
}
