//! The skip set `C_skip` of §4.3.
//!
//! Clips the TBClip iterator may safely ignore: everything outside `P_q`
//! (initialised at query start), plus the clips of sequences that become
//! conclusively ranked as RVAQ's bounds tighten. Because skips always
//! arrive as whole sequences of `P_q`, membership is tracked per sequence —
//! a bitmap over `P_q`'s intervals — rather than per clip.

use svq_storage::SequenceSet;
use svq_types::ClipId;

/// Dynamic skip set over the result sequences of one query.
#[derive(Debug, Clone)]
pub struct SkipSet {
    /// The query's result sequences `P_q` (sorted, disjoint).
    pq: SequenceSet,
    /// Per-sequence skip flags, indexed like `pq.intervals()`.
    skipped: Vec<bool>,
    /// When set, nothing is skipped (the noSkip baseline).
    disabled: bool,
}

impl SkipSet {
    /// Initialise from `P_q`: every clip outside `P_q` is already skipped
    /// (Algorithm 4 line 2, `C_skip = C(X) \ C(P_q)`).
    pub fn new(pq: SequenceSet) -> Self {
        let skipped = vec![false; pq.len()];
        Self {
            pq,
            skipped,
            disabled: false,
        }
    }

    /// A skip set with the whole mechanism disabled — nothing is ever
    /// skipped, not even clips outside `P_q` (the RVAQ-noSkip baseline:
    /// "without activating the skip mechanism").
    pub fn disabled(pq: SequenceSet) -> Self {
        let skipped = vec![false; pq.len()];
        Self {
            pq,
            skipped,
            disabled: true,
        }
    }

    /// The result sequences this skip set is defined over.
    pub fn pq(&self) -> &SequenceSet {
        &self.pq
    }

    /// Mark one sequence (by index into `P_q`) as skippable.
    pub fn skip_sequence(&mut self, index: usize) {
        self.skipped[index] = true;
    }

    /// Whether a sequence is skipped.
    pub fn sequence_skipped(&self, index: usize) -> bool {
        self.skipped[index]
    }

    /// Whether the iterator should skip this clip: outside `P_q`, or inside
    /// a conclusively ranked sequence.
    pub fn contains(&self, clip: ClipId) -> bool {
        if self.disabled {
            return false;
        }
        match self.pq.find_index(clip) {
            None => true,
            Some(i) => self.skipped[i],
        }
    }

    /// Index of the sequence holding `clip`, if it is an active member.
    pub fn active_sequence(&self, clip: ClipId) -> Option<usize> {
        self.pq.find_index(clip).filter(|&i| !self.skipped[i])
    }

    /// Number of sequences not yet skipped.
    pub fn active_count(&self) -> usize {
        self.skipped.iter().filter(|s| !**s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svq_types::{ClipInterval, Interval};

    fn iv(s: u64, e: u64) -> ClipInterval {
        Interval::new(ClipId::new(s), ClipId::new(e))
    }

    #[test]
    fn outside_pq_is_always_skipped() {
        let skip = SkipSet::new(SequenceSet::new(vec![iv(2, 4), iv(8, 9)]));
        assert!(skip.contains(ClipId::new(0)));
        assert!(!skip.contains(ClipId::new(3)));
        assert!(skip.contains(ClipId::new(5)));
        assert!(!skip.contains(ClipId::new(8)));
        assert!(skip.contains(ClipId::new(10)));
    }

    #[test]
    fn skipping_a_sequence_removes_its_clips() {
        let mut skip = SkipSet::new(SequenceSet::new(vec![iv(2, 4), iv(8, 9)]));
        assert_eq!(skip.active_count(), 2);
        skip.skip_sequence(0);
        assert!(skip.contains(ClipId::new(3)));
        assert!(!skip.contains(ClipId::new(9)));
        assert!(skip.sequence_skipped(0));
        assert_eq!(skip.active_count(), 1);
        assert_eq!(skip.active_sequence(ClipId::new(3)), None);
        assert_eq!(skip.active_sequence(ClipId::new(9)), Some(1));
    }

    #[test]
    fn empty_pq_skips_everything() {
        let skip = SkipSet::new(SequenceSet::empty());
        assert!(skip.contains(ClipId::new(0)));
        assert_eq!(skip.active_count(), 0);
    }
}
