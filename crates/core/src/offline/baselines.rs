//! The offline comparison baselines of §5.1.
//!
//! * [`PqTraverse`] — fetch the scores of *every* clip of every sequence in
//!   `P_q`, compute all sequence scores, return the best K. Its cost is a
//!   constant in K: proportional to the total number of clips in the result
//!   sequences.
//! * [`FaTopK`] — Fagin's Algorithm adapted as the paper describes: clips
//!   are produced in descending clip-score order over the *whole* tables
//!   (no skip set, no knowledge of `P_q` during access), each produced clip
//!   is discarded if it lies outside `P_q`, and the algorithm stops only
//!   when every sequence's score is complete — i.e. when the
//!   lowest-scoring clip of `P_q` has been produced, which typically means
//!   scanning deep into the tables. Each production round re-fetches the
//!   scores of the clips still in play by random access (the naive FA the
//!   paper measures — "no lower bounds can be obtained as well as there is
//!   no way to skip unnecessary clips"), which is what drives its access
//!   counts an order of magnitude past RVAQ's.
//! * `RVAQ-noSkip` is [`super::Rvaq`] with
//!   [`super::rvaq::RvaqOptions::without_skip`]; [`RvaqNoSkip::run`] is a
//!   convenience wrapper.

use super::rvaq::{RankedSequence, RvaqOptions, TopKResult};
use super::Rvaq;
use std::collections::{BTreeMap, BTreeSet};
use svq_storage::IngestedVideo;
use svq_types::{ActionQuery, ClipId, Clock, ScoringFunctions};
use svq_vision::WallClock;

/// The `P_q`-Traverse baseline.
pub struct PqTraverse;

impl PqTraverse {
    /// Score every clip of every result sequence; return the top K.
    pub fn run(
        catalog: &IngestedVideo,
        query: &ActionQuery,
        scoring: &dyn ScoringFunctions,
        k: usize,
    ) -> TopKResult {
        Self::run_with_clock(catalog, query, scoring, k, &WallClock::new())
    }

    /// [`PqTraverse::run`] with an injected [`Clock`] charging `wall_ms`.
    pub fn run_with_clock(
        catalog: &IngestedVideo,
        query: &ActionQuery,
        scoring: &dyn ScoringFunctions,
        k: usize,
        clock: &dyn Clock,
    ) -> TopKResult {
        let start = clock.now_nanos();
        let disk_before = catalog.disk().stats();
        let pq = catalog.result_sequences(query);

        let object_tables: Vec<_> = query
            .objects
            .iter()
            .map(|&o| catalog.object_table(o))
            .collect();
        let action_table = catalog.action_table(query.action);

        let mut scored: Vec<RankedSequence> = pq
            .intervals()
            .iter()
            .map(|iv| {
                let mut acc = scoring.f_identity();
                for clip in iv.iter() {
                    let object_scores: Vec<f64> =
                        object_tables.iter().map(|t| t.random_score(clip)).collect();
                    let action_score = action_table.random_score(clip);
                    acc = scoring.f_combine(acc, scoring.g(&object_scores, action_score));
                }
                RankedSequence {
                    interval: *iv,
                    lower: acc,
                    upper: acc,
                    exact: Some(acc),
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.exact
                .unwrap_or(f64::NEG_INFINITY)
                .total_cmp(&a.exact.unwrap_or(f64::NEG_INFINITY))
                .then(a.interval.start.cmp(&b.interval.start))
        });
        let total_sequences = scored.len();
        scored.truncate(k.min(total_sequences));

        let disk = catalog.disk().since(disk_before);
        TopKResult {
            ranked: scored,
            disk,
            wall_ms: clock.nanos_since(start) as f64 / 1e6,
            io_ms: catalog.disk().simulated_ms_of(disk),
            iterations: 0,
            total_sequences,
        }
    }
}

/// The Fagin's-Algorithm baseline.
pub struct FaTopK;

impl FaTopK {
    /// Produce top-ranked clips FA-style until every `P_q` sequence's score
    /// is complete; return the top-K sequences.
    pub fn run(
        catalog: &IngestedVideo,
        query: &ActionQuery,
        scoring: &dyn ScoringFunctions,
        k: usize,
    ) -> TopKResult {
        Self::run_with_clock(catalog, query, scoring, k, &WallClock::new())
    }

    /// [`FaTopK::run`] with an injected [`Clock`] charging `wall_ms`.
    pub fn run_with_clock(
        catalog: &IngestedVideo,
        query: &ActionQuery,
        scoring: &dyn ScoringFunctions,
        k: usize,
        clock: &dyn Clock,
    ) -> TopKResult {
        let start = clock.now_nanos();
        let disk_before = catalog.disk().stats();
        let pq = catalog.result_sequences(query);

        let mut tables: Vec<_> = query
            .objects
            .iter()
            .map(|&o| catalog.object_table(o))
            .collect();
        tables.push(catalog.action_table(query.action));
        let n_objects = query.objects.len();

        // Remaining P_q clips to produce, and per-sequence accumulators.
        let mut remaining: u64 = pq.clip_count();
        let mut seq_scores: Vec<f64> = vec![scoring.f_identity(); pq.len()];

        // BTree collections: FA's candidate scan iterates these, and the
        // winner among score ties falls to iteration order — which must be
        // stable for byte-identical results.
        let mut seen: Vec<BTreeSet<ClipId>> = vec![BTreeSet::new(); tables.len()];
        let mut produced: BTreeSet<ClipId> = BTreeSet::new();
        let mut stamp = 0usize;
        let mut iterations = 0u64;

        while remaining > 0 {
            iterations += 1;
            // Sorted access in parallel until a fresh fully-seen clip
            // exists.
            let mut any_row = true;
            loop {
                let has_candidate = seen[0]
                    .iter()
                    .any(|c| seen[1..].iter().all(|s| s.contains(c)) && !produced.contains(c));
                if has_candidate {
                    break;
                }
                any_row = false;
                for (i, t) in tables.iter().enumerate() {
                    if let Some((cid, _)) = t.sorted_row(stamp) {
                        seen[i].insert(cid);
                        any_row = true;
                    }
                }
                stamp += 1;
                if !any_row {
                    break;
                }
            }
            if !any_row {
                break; // tables exhausted — every produceable clip produced
            }
            // FA phase 2: random access completes the scores of the
            // fully-seen, unproduced clips — re-fetched each production
            // round (no memoisation across rounds: the baseline has no
            // bound state to justify caching against).
            let mut scores: BTreeMap<ClipId, f64> = BTreeMap::new();
            let mut candidate: Option<(ClipId, f64)> = None;
            for c in seen[0].iter() {
                if produced.contains(c)
                    || scores.contains_key(c)
                    || !seen[1..].iter().all(|s| s.contains(c))
                {
                    continue;
                }
                let object_scores: Vec<f64> = tables[..n_objects]
                    .iter()
                    .map(|t| t.random_score(*c))
                    .collect();
                let action_score = tables[n_objects].random_score(*c);
                let s = scoring.g(&object_scores, action_score);
                scores.insert(*c, s);
                if candidate.is_none_or(|(_, best)| s > best) {
                    candidate = Some((*c, s));
                }
            }
            let Some((c, s)) = candidate else { break };
            produced.insert(c);
            if let Some(i) = pq.find_index(c) {
                seq_scores[i] = scoring.f_combine(seq_scores[i], s);
                remaining -= 1;
            }
        }

        let mut ranked: Vec<RankedSequence> = pq
            .intervals()
            .iter()
            .zip(seq_scores)
            .map(|(iv, s)| RankedSequence {
                interval: *iv,
                lower: s,
                upper: s,
                exact: Some(s),
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.exact
                .unwrap_or(f64::NEG_INFINITY)
                .total_cmp(&a.exact.unwrap_or(f64::NEG_INFINITY))
                .then(a.interval.start.cmp(&b.interval.start))
        });
        let total_sequences = ranked.len();
        ranked.truncate(k.min(total_sequences));

        let disk = catalog.disk().since(disk_before);
        TopKResult {
            ranked,
            disk,
            wall_ms: clock.nanos_since(start) as f64 / 1e6,
            io_ms: catalog.disk().simulated_ms_of(disk),
            iterations,
            total_sequences,
        }
    }
}

/// Convenience wrapper: RVAQ with the skip mechanism disabled.
pub struct RvaqNoSkip;

impl RvaqNoSkip {
    /// Run RVAQ without skipping.
    pub fn run(
        catalog: &IngestedVideo,
        query: &ActionQuery,
        scoring: &dyn ScoringFunctions,
        k: usize,
    ) -> TopKResult {
        Rvaq::run(catalog, query, scoring, RvaqOptions::new(k).without_skip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::rvaq::RvaqOptions;
    use svq_types::{ClipInterval, Interval, PaperScoring};

    fn iv(s: u64, e: u64) -> ClipInterval {
        Interval::new(ClipId::new(s), ClipId::new(e))
    }

    fn split_catalog() -> IngestedVideo {
        // Reuse the fragmented catalog of the RVAQ tests via its builder.
        crate::offline::rvaq::tests::split_catalog_for_baselines()
    }

    #[test]
    fn all_methods_agree_on_the_top_sequence() {
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        let cat = split_catalog();
        let rvaq = Rvaq::run(&cat, &q, &PaperScoring, RvaqOptions::new(1));
        let cat = split_catalog();
        let noskip = RvaqNoSkip::run(&cat, &q, &PaperScoring, 1);
        let cat = split_catalog();
        let trav = PqTraverse::run(&cat, &q, &PaperScoring, 1);
        let cat = split_catalog();
        let fa = FaTopK::run(&cat, &q, &PaperScoring, 1);
        assert_eq!(rvaq.ranked[0].interval, iv(3, 5));
        assert_eq!(noskip.ranked[0].interval, iv(3, 5));
        assert_eq!(trav.ranked[0].interval, iv(3, 5));
        assert_eq!(fa.ranked[0].interval, iv(3, 5));
        // Baselines compute exact scores; they must agree.
        assert_eq!(trav.ranked[0].exact, fa.ranked[0].exact);
    }

    #[test]
    fn pq_traverse_cost_is_constant_in_k() {
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        let cat = split_catalog();
        let k1 = PqTraverse::run(&cat, &q, &PaperScoring, 1);
        let cat = split_catalog();
        let k3 = PqTraverse::run(&cat, &q, &PaperScoring, 3);
        assert_eq!(k1.disk, k3.disk);
        // 8 clips in P_q x 2 tables = 16 random accesses.
        assert_eq!(k1.disk.random_accesses, 16);
        assert_eq!(k1.disk.sorted_accesses, 0);
    }

    #[test]
    fn fa_is_more_expensive_than_rvaq() {
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        let cat = split_catalog();
        let rvaq = Rvaq::run(&cat, &q, &PaperScoring, RvaqOptions::new(1));
        let cat = split_catalog();
        let fa = FaTopK::run(&cat, &q, &PaperScoring, 1);
        assert!(
            fa.disk.total() >= rvaq.disk.total(),
            "fa {:?} vs rvaq {:?}",
            fa.disk,
            rvaq.disk
        );
    }

    #[test]
    fn fa_ranks_all_sequences_exactly() {
        let q = svq_types::ActionQuery::named("jumping", &["car"]);
        let cat = split_catalog();
        let fa = FaTopK::run(&cat, &q, &PaperScoring, 3);
        let scores: Vec<f64> = fa.ranked.iter().map(|r| r.exact.unwrap()).collect();
        assert_eq!(scores, vec![88.0, 52.0, 28.0]);
    }
}
