//! Per-sequence score bounds — Eqs. 13-14.
//!
//! For each result sequence RVAQ tracks the clips whose exact scores are
//! already known (delivered by either side of the TBClip iterator) and
//! bounds the rest:
//!
//! ```text
//! B_up = f(S(c_top), …, S(c_top))  ⊙  S_known     (`remaining` copies — Eq. 13)
//! B_lo = f(S(c_btm), …, S(c_btm))  ⊙  S_known     (`remaining` copies — Eq. 14)
//! ```
//!
//! The iterator delivers top clips in non-increasing and bottom clips in
//! non-decreasing score order, so every still-unprocessed clip's score lies
//! in `[S(c_btm), S(c_top)]`; with `f` monotone the expressions above bound
//! the exact sequence score from both sides.
//!
//! *Deviation from the listing, for tightness:* Algorithm 4 books top- and
//! bottom-processed clips separately (`L_up`/`S_up` vs `L_lo`/`S_lo`). A
//! clip delivered by one side has a fully *known* score, which is valid —
//! and tighter — inside both bounds; it also removes the corner case of a
//! clip delivered by both sides being double-counted. We therefore keep a
//! single `remaining`/`s_known` pair (the caller guarantees each clip is
//! absorbed once). Both bounds remain exactly Eqs. 13-14 with
//! `L_up = L_lo = remaining`.

use svq_types::{ClipInterval, ScoringFunctions};

/// Bound state of one result sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceBounds {
    /// The sequence `(c_l, c_r)`.
    pub interval: ClipInterval,
    /// Clips whose exact scores are not yet known.
    pub remaining: u64,
    /// `f`-aggregate of the known clip scores.
    pub s_known: f64,
    /// Current bounds.
    pub b_up: f64,
    pub b_lo: f64,
    /// Conclusively inside / outside the top-K.
    pub resolved_in: bool,
    pub resolved_out: bool,
}

impl SequenceBounds {
    /// Fresh bounds for a sequence (Algorithm 4 lines 5-6).
    pub fn new(interval: ClipInterval, scoring: &dyn ScoringFunctions) -> Self {
        Self {
            interval,
            remaining: interval.len(),
            s_known: scoring.f_identity(),
            b_up: f64::INFINITY,
            b_lo: 0.0,
            resolved_in: false,
            resolved_out: false,
        }
    }

    /// Whether the sequence still participates in bound refinement.
    pub fn active(&self) -> bool {
        !self.resolved_in && !self.resolved_out
    }

    /// Absorb a clip whose exact score became known.
    pub fn absorb(&mut self, score: f64, scoring: &dyn ScoringFunctions) {
        debug_assert!(
            self.remaining > 0,
            "absorbed more clips than the sequence holds"
        );
        self.remaining -= 1;
        self.s_known = scoring.f_combine(self.s_known, score);
    }

    /// Re-estimate the upper bound against the current `c_top` score
    /// (Eq. 13). Pass `0.0` once the top side is exhausted (then
    /// `remaining == 0` for active sequences and the bound is exact).
    pub fn refresh_upper(&mut self, top_score: f64, scoring: &dyn ScoringFunctions) {
        self.b_up = scoring.f_combine(scoring.f_repeat(top_score, self.remaining), self.s_known);
    }

    /// Re-estimate the lower bound against the current `c_btm` score
    /// (Eq. 14).
    pub fn refresh_lower(&mut self, btm_score: f64, scoring: &dyn ScoringFunctions) {
        self.b_lo = scoring.f_combine(scoring.f_repeat(btm_score, self.remaining), self.s_known);
    }

    /// The exact score, once every clip is known.
    pub fn exact(&self) -> Option<f64> {
        (self.remaining == 0).then_some(self.s_known)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svq_types::{ClipId, Interval, MaxScoring, PaperScoring};

    fn iv(s: u64, e: u64) -> ClipInterval {
        Interval::new(ClipId::new(s), ClipId::new(e))
    }

    #[test]
    fn initial_state() {
        let b = SequenceBounds::new(iv(2, 5), &PaperScoring);
        assert_eq!(b.remaining, 4);
        assert_eq!(b.b_up, f64::INFINITY);
        assert_eq!(b.b_lo, 0.0);
        assert!(b.active());
        assert!(b.exact().is_none());
    }

    #[test]
    fn bounds_tighten_and_converge_additive() {
        // Sequence of 3 clips with true scores [5, 3, 2]; exact f = 10.
        let s = PaperScoring;
        let mut b = SequenceBounds::new(iv(0, 2), &s);

        // Iterator delivers top=5 (ours) and bottom=2 (ours).
        b.absorb(5.0, &s);
        b.absorb(2.0, &s);
        b.refresh_upper(5.0, &s); // 1 unknown clip ≤ 5: B_up = 5 + 7 = 12
        b.refresh_lower(2.0, &s); // 1 unknown clip ≥ 2: B_lo = 2 + 7 = 9
        assert_eq!(b.b_up, 12.0);
        assert_eq!(b.b_lo, 9.0);
        assert!(b.exact().is_none());

        // Last clip (3) arrives.
        b.absorb(3.0, &s);
        b.refresh_upper(3.0, &s);
        b.refresh_lower(3.0, &s);
        assert_eq!(b.b_up, 10.0);
        assert_eq!(b.b_lo, 10.0);
        assert_eq!(b.exact(), Some(10.0));
    }

    #[test]
    fn bounds_always_bracket_the_exact_score() {
        // Property: at every refinement step, b_lo <= exact <= b_up, for
        // both scoring algebras, under the true delivery order.
        for scoring in [&PaperScoring as &dyn ScoringFunctions, &MaxScoring] {
            let clip_scores = [7.0, 1.0, 4.0, 4.0, 9.0];
            let exact = scoring.f(&clip_scores);
            let mut desc = clip_scores.to_vec();
            desc.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let mut asc = desc.clone();
            asc.reverse();
            let mut b = SequenceBounds::new(iv(0, 4), scoring);
            let mut known = std::collections::HashSet::new();
            for i in 0..clip_scores.len() {
                // Top delivers desc[i], bottom delivers asc[i]; absorb each
                // value once (they collide mid-way).
                for (idx, v) in [(i, desc[i]), (clip_scores.len() - 1 - i, asc[i])] {
                    let _ = v;
                    if known.insert(idx) {
                        b.absorb(desc[idx], scoring);
                    }
                }
                b.refresh_upper(desc[i], scoring);
                b.refresh_lower(asc[i], scoring);
                assert!(
                    b.b_up + 1e-9 >= exact && b.b_lo <= exact + 1e-9,
                    "step {i}: [{}, {}] misses {exact}",
                    b.b_lo,
                    b.b_up
                );
            }
            assert_eq!(b.exact(), Some(exact));
        }
    }
}
