//! The TBClip iterator — Algorithm 5.
//!
//! Each invocation delivers the next *top* clip (highest-scoring clip of
//! `P_q` not yet processed from the top) and the next *bottom* clip
//! (lowest-scoring not yet processed from the bottom), with scores computed
//! by the clip scoring function `g` over random accesses to the per-class
//! tables.
//!
//! The top side is Fagin's algorithm: sorted access in parallel over the
//! query's tables until at least one *new* clip has been seen in all of
//! them (step 1); then the scores of seen candidate clips are completed by
//! random access and the maximum is returned (step 2). By FA's classic
//! guarantee, once a clip has appeared in every list under sorted access,
//! the highest-scoring fully-scored candidate is the global maximum of the
//! remaining clips — `g` is monotone. The bottom side mirrors this with
//! reverse sorted access (steps 3-4).
//!
//! Differences from a textbook FA, per §4.4: clips in `C_skip` — outside
//! `P_q`, or in conclusively ranked sequences — are touched at most once by
//! sorted access and never random-accessed; completed clip scores are
//! memoised, so no clip's tables are random-accessed twice; and candidate
//! scoring applies the threshold-algorithm refinement — a seen clip is
//! random-accessed only when its optimistic bound (its seen table scores,
//! with unseen coordinates replaced by the table's current sorted-access
//! frontier) can beat the best fully-scored candidate of the call. `g` is
//! monotone, so the bound is sound and the delivered clip is still the true
//! maximum.

use super::skip::SkipSet;
use std::collections::{BTreeMap, BTreeSet};
use svq_storage::{ClipScoreTable, IngestedVideo};
use svq_types::{ActionQuery, ClipId, ScoringFunctions};

/// One delivery of the iterator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TbClipStep {
    /// Highest-scoring unprocessed clip, if the top side is not exhausted.
    pub top: Option<(ClipId, f64)>,
    /// Lowest-scoring unprocessed clip, if the bottom side is not exhausted.
    pub bottom: Option<(ClipId, f64)>,
}

/// Algorithm 5, operating over the tables of one query.
pub struct TbClip<'a> {
    tables: Vec<&'a ClipScoreTable>,
    scoring: &'a dyn ScoringFunctions,
    /// How many object tables precede the action table in `tables`.
    n_objects: usize,
    // --- top-side state. BTree collections throughout: the candidate
    // scans iterate them, and stable iteration order is part of the
    // byte-identical-results contract enforced by svq-lint.
    stamp_top: usize,
    seen_top: Vec<BTreeMap<ClipId, f64>>,
    frontier_top: Vec<f64>,
    processed_top: BTreeSet<ClipId>,
    // --- bottom-side state.
    stamp_btm: usize,
    seen_btm: Vec<BTreeMap<ClipId, f64>>,
    frontier_btm: Vec<f64>,
    processed_btm: BTreeSet<ClipId>,
    /// Memoised complete clip scores (g over all queried tables).
    scores: BTreeMap<ClipId, f64>,
}

impl<'a> TbClip<'a> {
    /// Open the iterator over a catalog for one query.
    pub fn new(
        catalog: &'a IngestedVideo,
        query: &ActionQuery,
        scoring: &'a dyn ScoringFunctions,
    ) -> Self {
        let mut tables: Vec<&'a ClipScoreTable> = query
            .objects
            .iter()
            .map(|&o| catalog.object_table(o))
            .collect();
        tables.push(catalog.action_table(query.action));
        let n = tables.len();
        Self {
            tables,
            scoring,
            n_objects: query.objects.len(),
            stamp_top: 0,
            seen_top: vec![BTreeMap::new(); n],
            frontier_top: vec![f64::INFINITY; n],
            processed_top: BTreeSet::new(),
            stamp_btm: 0,
            seen_btm: vec![BTreeMap::new(); n],
            frontier_btm: vec![0.0; n],
            processed_btm: BTreeSet::new(),
            scores: BTreeMap::new(),
        }
    }

    /// The memoised complete score of a clip: random-accesses each queried
    /// table once, ever.
    pub fn score_of(&mut self, clip: ClipId) -> f64 {
        if let Some(&s) = self.scores.get(&clip) {
            return s;
        }
        let mut object_scores = Vec::with_capacity(self.n_objects);
        for t in &self.tables[..self.n_objects] {
            object_scores.push(t.random_score(clip));
        }
        let action_score = self.tables[self.n_objects].random_score(clip);
        let s = self.scoring.g(&object_scores, action_score);
        self.scores.insert(clip, s);
        s
    }

    /// Whether a clip's score has already been memoised (no access charge).
    pub fn score_cached(&self, clip: ClipId) -> bool {
        self.scores.contains_key(&clip)
    }

    /// Advance the top side: sorted access in parallel until a new
    /// non-skipped candidate appears in all tables (step 1), then return
    /// the max-scoring candidate (step 2).
    fn next_top(&mut self, skip: &SkipSet) -> Option<(ClipId, f64)> {
        // Step 1 (loop guard): sorted access until the *intersection*
        // `C_∩^top` of the seen sets holds a fresh, unskipped clip — FA's
        // guarantee that the true maximum of the remaining clips is among
        // the clips seen so far.
        loop {
            let has_fresh_intersection = self.seen_top[0].keys().any(|c| {
                self.seen_top[1..].iter().all(|s| s.contains_key(c))
                    && !self.processed_top.contains(c)
                    && !skip.contains(*c)
            });
            if has_fresh_intersection {
                break;
            }
            // Parallel sorted access on row `stamp_top` of every table.
            let mut any_row = false;
            for (i, t) in self.tables.iter().enumerate() {
                if let Some((cid, s)) = t.sorted_row(self.stamp_top) {
                    self.seen_top[i].insert(cid, s);
                    self.frontier_top[i] = s;
                    any_row = true;
                }
            }
            self.stamp_top += 1;
            if !any_row {
                // Every table exhausted: no further top clips exist.
                return None;
            }
        }
        // Step 2: candidates are the *union* `C_∪^top` of seen clips (minus
        // processed and skipped). TA refinement: score candidates in
        // decreasing optimistic-bound order and stop once the bound cannot
        // beat the best completed score.
        let mut candidates: Vec<(ClipId, f64)> = Vec::new();
        let mut bound_scratch = vec![0.0f64; self.tables.len()];
        for (i, seen) in self.seen_top.iter().enumerate() {
            for (&c, &s) in seen {
                if self.processed_top.contains(&c) || skip.contains(c) {
                    continue;
                }
                if i > 0 && self.seen_top[..i].iter().any(|m| m.contains_key(&c)) {
                    continue; // already contributed by an earlier table
                }
                // Optimistic bound: seen coordinates, frontier elsewhere.
                for (j, slot) in bound_scratch.iter_mut().enumerate() {
                    *slot = self.seen_top[j].get(&c).copied().unwrap_or_else(|| {
                        if self.frontier_top[j].is_finite() {
                            self.frontier_top[j]
                        } else {
                            s // no frontier yet: fall back to own coordinate
                        }
                    });
                }
                let bound = self.scoring.g(
                    &bound_scratch[..self.n_objects],
                    bound_scratch[self.n_objects],
                );
                candidates.push((c, bound));
            }
        }
        candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut best: Option<(ClipId, f64)> = None;
        for (c, bound) in candidates {
            if let Some((_, bs)) = best {
                if bound <= bs {
                    break; // no remaining candidate can beat the best
                }
            }
            let s = if self.scores.contains_key(&c)
                || bound > best.map_or(f64::NEG_INFINITY, |(_, bs)| bs)
            {
                self.score_of(c)
            } else {
                continue;
            };
            if best.is_none_or(|(bc, bs)| s > bs || (s == bs && c < bc)) {
                best = Some((c, s));
            }
        }
        let best = best?;
        self.processed_top.insert(best.0);
        Some(best)
    }

    /// Mirror of [`Self::next_top`] from the bottom (steps 3-4).
    fn next_bottom(&mut self, skip: &SkipSet) -> Option<(ClipId, f64)> {
        loop {
            let has_fresh_intersection = self.seen_btm[0].keys().any(|c| {
                self.seen_btm[1..].iter().all(|s| s.contains_key(c))
                    && !self.processed_btm.contains(c)
                    && !skip.contains(*c)
            });
            if has_fresh_intersection {
                break;
            }
            let mut any_row = false;
            for (i, t) in self.tables.iter().enumerate() {
                if let Some((cid, s)) = t.reverse_row(self.stamp_btm) {
                    self.seen_btm[i].insert(cid, s);
                    self.frontier_btm[i] = s;
                    any_row = true;
                }
            }
            self.stamp_btm += 1;
            if !any_row {
                return None;
            }
        }
        // Mirror of the top side: pessimistic (lower) bounds — a clip's
        // unseen coordinates are at least the bottom frontier; clips whose
        // lower bound already exceeds the best minimum cannot win.
        let mut candidates: Vec<(ClipId, f64)> = Vec::new();
        let mut bound_scratch = vec![0.0f64; self.tables.len()];
        for (i, seen) in self.seen_btm.iter().enumerate() {
            for (&c, &s) in seen {
                if self.processed_btm.contains(&c) || skip.contains(c) {
                    continue;
                }
                if i > 0 && self.seen_btm[..i].iter().any(|m| m.contains_key(&c)) {
                    continue;
                }
                let _ = s;
                for (j, slot) in bound_scratch.iter_mut().enumerate() {
                    *slot = self.seen_btm[j]
                        .get(&c)
                        .copied()
                        .unwrap_or(self.frontier_btm[j]);
                }
                let bound = self.scoring.g(
                    &bound_scratch[..self.n_objects],
                    bound_scratch[self.n_objects],
                );
                candidates.push((c, bound));
            }
        }
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let mut best: Option<(ClipId, f64)> = None;
        for (c, bound) in candidates {
            if let Some((_, bs)) = best {
                if bound >= bs {
                    break;
                }
            }
            let s = self.score_of(c);
            if best.is_none_or(|(bc, bs)| s < bs || (s == bs && c < bc)) {
                best = Some((c, s));
            }
        }
        let best = best?;
        self.processed_btm.insert(best.0);
        Some(best)
    }

    /// One invocation of the iterator: the next top and bottom clips.
    pub fn next(&mut self, skip: &SkipSet) -> TbClipStep {
        TbClipStep {
            top: self.next_top(skip),
            bottom: self.next_bottom(skip),
        }
    }

    /// The set of clips processed from the top (`C_top`).
    pub fn processed_top(&self) -> &BTreeSet<ClipId> {
        &self.processed_top
    }

    /// The set of clips processed from the bottom (`C_btm`).
    pub fn processed_bottom(&self) -> &BTreeSet<ClipId> {
        &self.processed_btm
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use svq_storage::{SequenceSet, SimulatedDisk};
    use svq_types::{
        ActionClass, ClipInterval, Interval, ObjectClass, PaperScoring, VideoGeometry, VideoId,
        Vocabulary,
    };

    fn iv(s: u64, e: u64) -> ClipInterval {
        Interval::new(ClipId::new(s), ClipId::new(e))
    }

    /// Catalog with known scores: clips 0..10.
    /// car:     clip i has score 10 - i  (i in 0..10)
    /// jumping: clip i has score i + 1   (i in 0..10)
    /// g = S_a * sum(S_o):  score(i) = (i+1) * (10-i).
    pub(crate) fn catalog() -> IngestedVideo {
        let disk = SimulatedDisk::new();
        let car = ObjectClass::named("car");
        let jumping = ActionClass::named("jumping");
        let mut object_tables: Vec<_> = (0..ObjectClass::cardinality())
            .map(|_| svq_storage::ClipScoreTable::new(vec![], disk.clone()))
            .collect();
        let mut action_tables: Vec<_> = (0..ActionClass::cardinality())
            .map(|_| svq_storage::ClipScoreTable::new(vec![], disk.clone()))
            .collect();
        object_tables[car.index()] = svq_storage::ClipScoreTable::new(
            (0..10).map(|i| (ClipId::new(i), (10 - i) as f64)).collect(),
            disk.clone(),
        );
        action_tables[jumping.index()] = svq_storage::ClipScoreTable::new(
            (0..10).map(|i| (ClipId::new(i), (i + 1) as f64)).collect(),
            disk.clone(),
        );
        let mut object_sequences = vec![SequenceSet::empty(); ObjectClass::cardinality()];
        let mut action_sequences = vec![SequenceSet::empty(); ActionClass::cardinality()];
        object_sequences[car.index()] = SequenceSet::new(vec![iv(0, 9)]);
        action_sequences[jumping.index()] = SequenceSet::new(vec![iv(0, 9)]);
        IngestedVideo::new(
            VideoId::new(0),
            VideoGeometry::default(),
            10,
            object_tables,
            action_tables,
            object_sequences,
            action_sequences,
            disk,
        )
    }

    fn g(i: u64) -> f64 {
        (i as f64 + 1.0) * (10.0 - i as f64)
    }

    #[test]
    fn delivers_clips_in_score_order_from_both_ends() {
        let cat = catalog();
        let query = ActionQuery::named("jumping", &["car"]);
        let skip = SkipSet::new(cat.result_sequences(&query));
        let mut tb = TbClip::new(&cat, &query, &PaperScoring);

        // Expected order: scores (i+1)(10-i) peak at i=4,5 (30), fall to 10
        // at i=0 and i=9.
        let mut tops = Vec::new();
        let mut btms = Vec::new();
        for _ in 0..5 {
            let step = tb.next(&skip);
            if let Some((c, s)) = step.top {
                assert!((s - g(c.raw())).abs() < 1e-9);
                tops.push(s);
            }
            if let Some((c, s)) = step.bottom {
                assert!((s - g(c.raw())).abs() < 1e-9);
                btms.push(s);
            }
        }
        // Tops non-increasing, bottoms non-decreasing.
        assert!(tops.windows(2).all(|w| w[0] >= w[1]), "{tops:?}");
        assert!(btms.windows(2).all(|w| w[0] <= w[1]), "{btms:?}");
        assert_eq!(tops[0], 30.0);
        assert_eq!(btms[0], 10.0);
    }

    #[test]
    fn exhausts_after_all_clips_processed() {
        let cat = catalog();
        let query = ActionQuery::named("jumping", &["car"]);
        let skip = SkipSet::new(cat.result_sequences(&query));
        let mut tb = TbClip::new(&cat, &query, &PaperScoring);
        let mut produced = BTreeSet::new();
        for _ in 0..20 {
            let step = tb.next(&skip);
            if let Some((c, _)) = step.top {
                produced.insert(c);
            }
            if let Some((c, _)) = step.bottom {
                produced.insert(c);
            }
            if step.top.is_none() && step.bottom.is_none() {
                break;
            }
        }
        // Every clip eventually delivered by one side or the other.
        assert_eq!(produced.len(), 10);
    }

    #[test]
    fn skipped_sequences_are_never_random_accessed() {
        let cat = catalog();
        let query = ActionQuery::named("jumping", &["car"]);
        let mut skip = SkipSet::new(SequenceSet::new(vec![iv(0, 4), iv(6, 9)]));
        skip.skip_sequence(0); // clips 0..=4 conclusively ranked
        cat.disk().reset();
        let mut tb = TbClip::new(&cat, &query, &PaperScoring);
        let mut produced = Vec::new();
        loop {
            let step = tb.next(&skip);
            if let Some((c, _)) = step.top {
                produced.push(c.raw());
            }
            if step.top.is_none() && step.bottom.is_none() {
                break;
            }
        }
        assert!(produced.iter().all(|c| (6..=9).contains(c)), "{produced:?}");
        // Random accesses only for clips 6..=9 (2 tables each) = 8.
        assert_eq!(cat.disk().stats().random_accesses, 8);
    }

    #[test]
    fn scores_memoised_across_calls() {
        let cat = catalog();
        let query = ActionQuery::named("jumping", &["car"]);
        let skip = SkipSet::new(cat.result_sequences(&query));
        let mut tb = TbClip::new(&cat, &query, &PaperScoring);
        for _ in 0..10 {
            tb.next(&skip);
        }
        // 10 clips x 2 tables = at most 20 random accesses ever.
        assert!(cat.disk().stats().random_accesses <= 20);
        assert!(tb.score_cached(ClipId::new(4)));
    }

    #[test]
    fn absent_clip_scores_zero() {
        let cat = catalog();
        let query = ActionQuery::named("jumping", &["car"]);
        let mut tb = TbClip::new(&cat, &query, &PaperScoring);
        assert_eq!(tb.score_of(ClipId::new(99)), 0.0);
    }
}
