//! Clients for the line protocol, at two levels.
//!
//! [`Client`] is the low-level blocking half: [`Client::request`] keeps
//! the classic v1 shape — one request/response exchange per call, strictly
//! ordered — and [`Client::send`] / [`Client::read_tagged`] expose raw
//! protocol-v2 pipelining where the caller matches responses to requests
//! by id. The hardening tests and the serve-throughput load generator
//! deliberately stay at this level to exercise the wire.
//!
//! [`Caller`] is the typed pipelined API on top: it owns id allocation
//! and out-of-order matching behind a demux thread, so concurrent users
//! share one connection without seeing ids at all. [`Caller::call`]
//! returns a [`Pending`] handle to `wait()` on; [`Caller::call_with`]
//! runs a completion callback instead — the router's fan-out path.
//! `svqact request --repeat` and the cluster router both sit on `Caller`.

use crate::protocol::{
    encode_line, encode_request_line, read_bounded_line, LineEvent, Request, Response,
    ResponseFrame, MAX_LINE_BYTES,
};
use crate::transport::Conn;
use parking_lot::{rt, Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use svq_query::QueryOutcome;
use svq_types::{RejectReason, SvqError, SvqResult};

/// Blocking JSON-lines client over any [`Conn`] — a real TCP socket or an
/// in-memory loopback half from [`crate::transport::MemTransport`].
pub struct Client {
    stream: Box<dyn Conn>,
    reader: BufReader<Box<dyn Conn>>,
}

impl Client {
    /// Connect with a 30 s I/O deadline.
    pub fn connect(addr: impl ToSocketAddrs) -> SvqResult<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit per-operation read/write deadline.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> SvqResult<Self> {
        Self::over(Box::new(TcpStream::connect(addr)?), timeout)
    }

    /// Speak the protocol over an already-established connection (the
    /// simulation harness hands in [`crate::transport::MemConn`] halves).
    pub fn over(stream: Box<dyn Conn>, timeout: Duration) -> SvqResult<Self> {
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone_conn()?);
        Ok(Self { stream, reader })
    }

    /// Send one request frame and read its response frame.
    pub fn request(&mut self, request: &Request) -> SvqResult<Response> {
        self.stream.write_all(encode_line(request).as_bytes())?;
        self.read_response()
    }

    /// Pipelined send: write one request frame — tagged with `id` when
    /// given — without waiting for a response. Pair with
    /// [`Client::read_tagged`]; an id-less send keeps v1 ordering, an
    /// id-tagged one may complete out of order.
    pub fn send(&mut self, request: &Request, id: Option<u64>) -> SvqResult<()> {
        self.stream
            .write_all(encode_request_line(request, id).as_bytes())?;
        Ok(())
    }

    /// Read the next response frame together with the request id it
    /// answers (`None` for v1 responses and server-initiated frames).
    pub fn read_tagged(&mut self) -> SvqResult<(Option<u64>, Response)> {
        match read_bounded_line(&mut self.reader, MAX_LINE_BYTES) {
            LineEvent::Line(line) => {
                let text = std::str::from_utf8(&line)
                    .map_err(|e| SvqError::Storage(format!("response not UTF-8: {e}")))?;
                let frame: ResponseFrame = serde_json::from_str(text)
                    .map_err(|e| SvqError::Storage(format!("response not a frame: {e}")))?;
                Ok((frame.id, frame.response))
            }
            LineEvent::Eof => Err(SvqError::Storage(
                "connection closed before a response frame arrived".into(),
            )),
            LineEvent::Oversize { .. } => Err(SvqError::Storage(
                "response frame exceeded the line cap".into(),
            )),
            LineEvent::TimedOut => Err(SvqError::Storage(
                "timed out waiting for a response frame".into(),
            )),
            LineEvent::Failed(e) => Err(SvqError::Io(e)),
        }
    }

    /// Send raw bytes as one line (the newline is appended) and read the
    /// response — the hardening tests' way of speaking malformed frames.
    pub fn send_raw(&mut self, line: &[u8]) -> SvqResult<Response> {
        self.stream.write_all(line)?;
        self.stream.write_all(b"\n")?;
        self.read_response()
    }

    /// Read the next response frame off the connection.
    pub fn read_response(&mut self) -> SvqResult<Response> {
        match read_bounded_line(&mut self.reader, MAX_LINE_BYTES) {
            LineEvent::Line(line) => {
                let text = std::str::from_utf8(&line)
                    .map_err(|e| SvqError::Storage(format!("response not UTF-8: {e}")))?;
                serde_json::from_str(text)
                    .map_err(|e| SvqError::Storage(format!("response not a frame: {e}")))
            }
            LineEvent::Eof => Err(SvqError::Storage(
                "connection closed before a response frame arrived".into(),
            )),
            LineEvent::Oversize { .. } => Err(SvqError::Storage(
                "response frame exceeded the line cap".into(),
            )),
            LineEvent::TimedOut => Err(SvqError::Storage(
                "timed out waiting for a response frame".into(),
            )),
            LineEvent::Failed(e) => Err(SvqError::Io(e)),
        }
    }

    /// Convenience: a `query`/`stream` exchange that insists on an
    /// `outcome` frame, converting error frames into [`SvqError::Storage`].
    pub fn expect_outcome(&mut self, request: &Request) -> SvqResult<QueryOutcome> {
        match self.request(request)? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Error { reason, message } => Err(SvqError::Storage(format!(
                "server refused ({reason}): {message}"
            ))),
            other => Err(SvqError::Storage(format!(
                "expected an outcome frame, got {other:?}"
            ))),
        }
    }

    /// Upgrade to the typed pipelined API, reusing this connection. The
    /// read deadline set at connect time keeps bounding every wait.
    pub fn into_caller(self) -> SvqResult<Caller> {
        Caller::start(self.stream, self.reader)
    }
}

/// Where a finished [`Caller`] request delivers its result.
enum Sink {
    /// A [`Pending`] handle is (or will be) blocked on this slot.
    Slot(Arc<Slot>),
    /// Run on the demux thread the moment the response arrives.
    Callback(Box<dyn FnOnce(SvqResult<Response>) + Send>),
}

impl Sink {
    fn fulfill(self, result: SvqResult<Response>) {
        match self {
            Sink::Slot(slot) => {
                *slot.cell.lock() = Some(result);
                slot.cv.notify_all();
            }
            Sink::Callback(done) => done(result),
        }
    }
}

struct Slot {
    cell: Mutex<Option<SvqResult<Response>>>,
    cv: Condvar,
}

/// One in-flight [`Caller::call`]: redeem with [`Pending::wait`].
///
/// Dropping the handle abandons the result without disturbing the
/// connection — the response is discarded on arrival.
pub struct Pending {
    slot: Arc<Slot>,
    id: u64,
}

impl Pending {
    /// The protocol-v2 request id this call went out under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the response arrives (bounded by the connection's read
    /// deadline: an expired deadline with requests in flight fails them
    /// all) and return it.
    pub fn wait(self) -> SvqResult<Response> {
        let mut cell = self.slot.cell.lock();
        loop {
            match cell.take() {
                Some(result) => return result,
                None => self.slot.cv.wait(&mut cell),
            }
        }
    }

    /// Like [`Pending::wait`] but insisting on an `outcome` frame.
    pub fn wait_outcome(self) -> SvqResult<QueryOutcome> {
        match self.wait()? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Error { reason, message } => Err(SvqError::Storage(format!(
                "server refused ({reason}): {message}"
            ))),
            other => Err(SvqError::Storage(format!(
                "expected an outcome frame, got {other:?}"
            ))),
        }
    }
}

/// Push-frame mailbox shared between a [`Subscription`] handle and the
/// demux thread.
struct SubShared {
    queue: Mutex<SubQueue>,
    cv: Condvar,
}

struct SubQueue {
    frames: VecDeque<Response>,
    /// The terminal frame arrived: nothing further will be pushed.
    done: bool,
    /// The session died; [`Subscription::next`] surfaces this as an error
    /// once queued frames drain.
    failed: Option<String>,
}

impl SubShared {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            queue: Mutex::new(SubQueue {
                frames: VecDeque::new(),
                done: false,
                failed: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Deliver one demuxed frame; `terminal` closes the mailbox.
    fn push(&self, frame: Response, terminal: bool) {
        let mut queue = self.queue.lock();
        queue.frames.push_back(frame);
        if terminal {
            queue.done = true;
        }
        self.cv.notify_all();
    }

    fn fail(&self, why: &str) {
        let mut queue = self.queue.lock();
        if queue.failed.is_none() {
            queue.failed = Some(why.to_string());
        }
        queue.done = true;
        self.cv.notify_all();
    }

    /// Block for the next frame: queued frames first, then the failure (if
    /// any), then `None` once the mailbox closed cleanly.
    fn next(&self) -> SvqResult<Option<Response>> {
        let mut queue = self.queue.lock();
        loop {
            if let Some(frame) = queue.frames.pop_front() {
                return Ok(Some(frame));
            }
            if let Some(why) = queue.failed.as_deref() {
                return Err(SvqError::Storage(why.to_string()));
            }
            if queue.done {
                return Ok(None);
            }
            self.cv.wait(&mut queue);
        }
    }
}

struct CallerInner {
    /// The write half. `None` once the connection is abandoned; the mutex
    /// also serializes frames so pipelined writers never interleave lines.
    write: Mutex<Option<Box<dyn Conn>>>,
    /// In-flight requests by id, removed when their response demuxes.
    slots: Mutex<BTreeMap<u64, Sink>>,
    /// Standing subscriptions by the id their `subscribe` frame went out
    /// under — every frame tagged with that id (the ack included) routes
    /// here instead of `slots`, and the entry survives until the terminal
    /// `unsubscribed` frame. Checked before `slots` in the demux loop.
    subs: Mutex<BTreeMap<u64, Arc<SubShared>>>,
    next_id: AtomicU64,
    alive: AtomicBool,
}

impl CallerInner {
    /// Kill the session: mark dead and fail every in-flight request with
    /// `why`. Sinks are drained first and fulfilled outside the lock — a
    /// callback is allowed to issue (and fail) new calls without
    /// deadlocking on `slots`.
    fn fail_all(&self, why: &str) {
        self.alive.store(false, Ordering::Release);
        let drained: Vec<Sink> = {
            let mut slots = self.slots.lock();
            std::mem::take(&mut *slots).into_values().collect()
        };
        for sink in drained {
            sink.fulfill(Err(SvqError::Storage(why.to_string())));
        }
        let subs: Vec<Arc<SubShared>> = {
            let mut subs = self.subs.lock();
            std::mem::take(&mut *subs).into_values().collect()
        };
        for sub in subs {
            sub.fail(why);
        }
    }
}

/// Bounded retry for [`Caller::call_retrying`]: how many times to re-issue
/// a request refused with `shard_unavailable`, and the initial backoff
/// (doubled per retry). The default is [`RetryPolicy::none`] — retries are
/// strictly opt-in, because re-issuing is only safe for requests the
/// caller knows are idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-issues after the first attempt; `0` means fail fast.
    pub attempts: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: `call_retrying` behaves exactly like `call().wait()`.
    pub fn none() -> Self {
        Self {
            attempts: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Up to `attempts` re-issues with exponential backoff from `backoff`.
    pub fn new(attempts: u32, backoff: Duration) -> Self {
        Self { attempts, backoff }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// The typed pipelined client: one connection, many concurrent calls.
///
/// A `Caller` owns protocol-v2 id allocation and out-of-order response
/// matching. [`Caller::call`] tags the request, registers a completion
/// slot, and returns a [`Pending`] handle immediately; a demux thread
/// reads whichever response completes next and routes it by id. `&self`
/// everywhere — clone the `Caller` (cheap, `Arc`) or share references to
/// pipeline from many threads.
///
/// Failure is fail-fast and total: a dead socket, an expired read deadline
/// with requests in flight, or an untagged server frame fails **every**
/// in-flight call with a typed error and marks the caller dead
/// ([`Caller::is_alive`]); later calls are refused. The caller never
/// reconnects — that policy belongs above (the router's shard links
/// re-dial with bounded backoff and fresh `Caller`s).
#[derive(Clone)]
pub struct Caller {
    inner: Arc<CallerInner>,
}

impl Caller {
    /// Connect with an explicit per-operation read/write deadline.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> SvqResult<Self> {
        Self::over(Box::new(TcpStream::connect(addr)?), timeout)
    }

    /// Speak the pipelined protocol over an already-established connection
    /// (e.g. a [`crate::transport::MemConn`] half in the simulation).
    pub fn over(stream: Box<dyn Conn>, timeout: Duration) -> SvqResult<Self> {
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone_conn()?);
        Self::start(stream, reader)
    }

    fn start(stream: Box<dyn Conn>, reader: BufReader<Box<dyn Conn>>) -> SvqResult<Self> {
        let inner = Arc::new(CallerInner {
            write: Mutex::new(Some(stream)),
            slots: Mutex::new(BTreeMap::new()),
            subs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            alive: AtomicBool::new(true),
        });
        let demux_inner = inner.clone();
        rt::spawn("svq-client-demux", move || demux(&demux_inner, reader)).map_err(SvqError::Io)?;
        Ok(Self { inner })
    }

    /// Whether the connection is still usable. `false` after any fatal
    /// event; in-flight calls at that point have already been failed.
    pub fn is_alive(&self) -> bool {
        self.inner.alive.load(Ordering::Acquire)
    }

    /// Send `request` without waiting; redeem the returned [`Pending`]
    /// with [`Pending::wait`] whenever convenient. Calls from any number
    /// of threads pipeline onto the one connection.
    pub fn call(&self, request: &Request) -> SvqResult<Pending> {
        let slot = Arc::new(Slot {
            cell: Mutex::new(None),
            cv: Condvar::new(),
        });
        let id = self.submit(request, Sink::Slot(slot.clone()))?;
        Ok(Pending { slot, id })
    }

    /// Send `request` and run `done` with the response when it arrives.
    /// `done` runs on the demux thread: keep it short and never block it
    /// on another response from this same caller (that response is behind
    /// it in the read loop). Returns the request id.
    pub fn call_with(
        &self,
        request: &Request,
        done: impl FnOnce(SvqResult<Response>) + Send + 'static,
    ) -> SvqResult<u64> {
        self.submit(request, Sink::Callback(Box::new(done)))
    }

    fn submit(&self, request: &Request, sink: Sink) -> SvqResult<u64> {
        if !self.is_alive() {
            return Err(SvqError::Storage(
                "caller connection is dead; open a fresh one".into(),
            ));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.slots.lock().insert(id, sink);
        let line = encode_request_line(request, Some(id));
        let write_result = {
            let mut write = self.inner.write.lock();
            match write.as_mut() {
                // A short frame onto an established socket under the write
                // deadline; the lock is what keeps concurrent frames from
                // interleaving mid-line.
                // svq-lint: allow(blocking-under-lock)
                Some(conn) => conn.write_all(line.as_bytes()).map_err(SvqError::Io),
                None => Err(SvqError::Storage(
                    "caller connection is dead; open a fresh one".into(),
                )),
            }
        };
        if let Err(e) = write_result {
            // Unregister before failing the rest so this call reports the
            // precise write error rather than the generic teardown one.
            self.inner.slots.lock().remove(&id);
            self.inner
                .fail_all("a request write failed; connection abandoned");
            return Err(e);
        }
        Ok(id)
    }

    /// Like [`Caller::call`] + [`Pending::wait`], but re-issuing the
    /// request under `policy` when a shard answers `shard_unavailable` —
    /// the transient state the cluster router reports while it re-dials a
    /// dead shard. Every other outcome (success, other error frames,
    /// transport failure) returns immediately; [`RetryPolicy::none`]
    /// (the default) makes this identical to a plain call.
    pub fn call_retrying(&self, request: &Request, policy: RetryPolicy) -> SvqResult<Response> {
        let mut backoff = policy.backoff;
        for attempt in 0..=policy.attempts {
            let response = self.call(request)?.wait()?;
            let transient = matches!(
                &response,
                Response::Error {
                    reason: RejectReason::ShardUnavailable,
                    ..
                }
            );
            if !transient || attempt == policy.attempts {
                return Ok(response);
            }
            rt::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
        unreachable!("the loop returns on its last attempt");
    }

    /// Open a standing query: send a `subscribe` frame, wait for the
    /// server's `subscribed` ack, and return a [`Subscription`] whose
    /// [`Subscription::next`] yields the pushed `event` / `drift` /
    /// `lagged` frames in arrival order. A server refusal (no live source,
    /// offline statement, wrong video) surfaces as a typed error here.
    pub fn subscribe(
        &self,
        sql: &str,
        video: Option<u64>,
        drift_every: u64,
    ) -> SvqResult<Subscription> {
        if !self.is_alive() {
            return Err(SvqError::Storage(
                "caller connection is dead; open a fresh one".into(),
            ));
        }
        let shared = SubShared::new();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.subs.lock().insert(id, shared.clone());
        let request = Request::Subscribe {
            sql: sql.to_string(),
            video,
            drift_every,
        };
        let line = encode_request_line(&request, Some(id));
        let write_result = {
            let mut write = self.inner.write.lock();
            match write.as_mut() {
                // Same short-frame-under-the-serializing-lock shape as
                // `submit`. svq-lint: allow(blocking-under-lock)
                Some(conn) => conn.write_all(line.as_bytes()).map_err(SvqError::Io),
                None => Err(SvqError::Storage(
                    "caller connection is dead; open a fresh one".into(),
                )),
            }
        };
        if let Err(e) = write_result {
            self.inner.subs.lock().remove(&id);
            self.inner
                .fail_all("a request write failed; connection abandoned");
            return Err(e);
        }
        // The ack is the first frame demuxed to the mailbox.
        match shared.next()? {
            Some(Response::Subscribed { sub, from_seq }) => Ok(Subscription {
                caller: self.clone(),
                shared,
                id,
                sub,
                from_seq,
            }),
            Some(Response::Error { reason, message }) => {
                self.inner.subs.lock().remove(&id);
                Err(SvqError::Storage(format!(
                    "server refused the subscription ({reason}): {message}"
                )))
            }
            other => {
                self.inner.subs.lock().remove(&id);
                Err(SvqError::Storage(format!(
                    "expected a subscribed ack, got {other:?}"
                )))
            }
        }
    }

    /// Abandon the connection: shut the socket both ways (the demux thread
    /// exits on the resulting EOF) and fail any in-flight calls. Safe from
    /// any thread except a completion callback; idempotent.
    pub fn close(&self) {
        if let Some(conn) = self.inner.write.lock().take() {
            let _ = conn.shutdown_both();
        }
        self.inner.fail_all("caller closed; connection abandoned");
    }
}

impl Drop for Caller {
    fn drop(&mut self) {
        // Last handle out closes the socket so the demux thread exits; no
        // join — callbacks run on that thread, and the last handle may be
        // dropped *by* one.
        if Arc::strong_count(&self.inner) == 1 {
            self.close();
        }
    }
}

/// One standing query opened with [`Caller::subscribe`].
///
/// [`Subscription::next`] blocks for pushed frames in arrival order and
/// returns `Ok(None)` after the terminal `unsubscribed` frame (which is
/// itself yielded first, carrying the delivery accounting). Dropping the
/// handle detaches the mailbox — later pushes for it are discarded — but
/// does **not** tell the server; call [`Subscription::unsubscribe`] for a
/// clean close.
pub struct Subscription {
    caller: Caller,
    shared: Arc<SubShared>,
    /// The id the `subscribe` frame went out under; every push echoes it.
    id: u64,
    sub: u64,
    from_seq: u64,
}

impl Subscription {
    /// The server-assigned subscription handle.
    pub fn sub(&self) -> u64 {
        self.sub
    }

    /// Source position at join: every pushed event has `seq > from_seq`.
    pub fn from_seq(&self) -> u64 {
        self.from_seq
    }

    /// Block for the next pushed frame — `event`, `drift`, or `lagged` —
    /// in arrival order. `Ok(None)` after the terminal `unsubscribed`
    /// frame; a dead connection is an error once queued frames drain.
    pub fn next(&self) -> SvqResult<Option<Response>> {
        self.shared.next()
    }

    /// Ask the server to close the subscription and return its ack (the
    /// terminal accounting frame). The same frame is also pushed into the
    /// mailbox, so a consumer loop on [`Subscription::next`] still sees
    /// the terminal and then `Ok(None)`.
    pub fn unsubscribe(&self) -> SvqResult<Response> {
        self.caller
            .call(&Request::Unsubscribe { sub: self.sub })?
            .wait()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Detach the mailbox; the demux loop discards frames for ids it
        // no longer knows.
        self.caller.inner.subs.lock().remove(&self.id);
    }
}

/// The read loop behind a [`Caller`]: route each id-tagged response to its
/// registered sink; treat anything else as fatal for the session.
fn demux(inner: &Arc<CallerInner>, mut reader: BufReader<Box<dyn Conn>>) {
    loop {
        if !inner.alive.load(Ordering::Acquire) {
            return;
        }
        match read_bounded_line(&mut reader, MAX_LINE_BYTES) {
            LineEvent::Line(line) => {
                let frame: Option<ResponseFrame> = std::str::from_utf8(&line)
                    .ok()
                    .and_then(|text| serde_json::from_str(text).ok());
                let Some(frame) = frame else {
                    inner.fail_all("response was not a protocol frame; connection abandoned");
                    return;
                };
                match frame.id {
                    Some(id) => {
                        // A subscription id routes to its mailbox — ack,
                        // pushes, and terminal alike — and owns the id
                        // until the terminal frame retires it.
                        let sub = inner.subs.lock().get(&id).cloned();
                        if let Some(sub) = sub {
                            let terminal = matches!(
                                frame.response,
                                Response::Unsubscribed { .. } | Response::Error { .. }
                            );
                            sub.push(frame.response, terminal);
                            if terminal {
                                inner.subs.lock().remove(&id);
                            }
                            continue;
                        }
                        let sink = inner.slots.lock().remove(&id);
                        // An unknown id is the late response of a call that
                        // already failed (e.g. its write erred): discard.
                        if let Some(sink) = sink {
                            sink.fulfill(Ok(frame.response));
                        }
                    }
                    // Every request goes out id-tagged, so an untagged
                    // frame is server-initiated — a reject or a connection
                    // -level error. It dooms the pipelined session.
                    None => {
                        let why = match frame.response {
                            Response::Error { reason, message } => {
                                format!("server error ({reason}): {message}")
                            }
                            other => format!("unexpected untagged frame: {other:?}"),
                        };
                        inner.fail_all(&why);
                        return;
                    }
                }
            }
            LineEvent::TimedOut => {
                if inner.slots.lock().is_empty() {
                    continue; // idle between calls: keep listening
                }
                inner.fail_all("read deadline expired with requests in flight");
                return;
            }
            LineEvent::Eof => {
                inner.fail_all("connection closed before all responses arrived");
                return;
            }
            LineEvent::Oversize { .. } => {
                inner.fail_all("response frame exceeded the line cap");
                return;
            }
            LineEvent::Failed(e) => {
                inner.fail_all(&format!("connection failed: {e}"));
                return;
            }
        }
    }
}
