//! A small blocking client for the line protocol.
//!
//! Used by `svqact request`, the serve-throughput load generator, and the
//! server's own tests. [`Client::request`] keeps the classic v1 shape —
//! one request/response exchange per call, strictly ordered. For protocol
//! v2 pipelining, [`Client::send`] writes an id-tagged request without
//! waiting and [`Client::read_tagged`] reads whichever response completes
//! next; the caller matches responses to requests by id.

use crate::protocol::{
    encode_line, encode_request_line, read_bounded_line, LineEvent, Request, Response,
    ResponseFrame, MAX_LINE_BYTES,
};
use crate::transport::Conn;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use svq_query::QueryOutcome;
use svq_types::{SvqError, SvqResult};

/// Blocking JSON-lines client over any [`Conn`] — a real TCP socket or an
/// in-memory loopback half from [`crate::transport::MemTransport`].
pub struct Client {
    stream: Box<dyn Conn>,
    reader: BufReader<Box<dyn Conn>>,
}

impl Client {
    /// Connect with a 30 s I/O deadline.
    pub fn connect(addr: impl ToSocketAddrs) -> SvqResult<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit per-operation read/write deadline.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> SvqResult<Self> {
        Self::over(Box::new(TcpStream::connect(addr)?), timeout)
    }

    /// Speak the protocol over an already-established connection (the
    /// simulation harness hands in [`crate::transport::MemConn`] halves).
    pub fn over(stream: Box<dyn Conn>, timeout: Duration) -> SvqResult<Self> {
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone_conn()?);
        Ok(Self { stream, reader })
    }

    /// Send one request frame and read its response frame.
    pub fn request(&mut self, request: &Request) -> SvqResult<Response> {
        self.stream.write_all(encode_line(request).as_bytes())?;
        self.read_response()
    }

    /// Pipelined send: write one request frame — tagged with `id` when
    /// given — without waiting for a response. Pair with
    /// [`Client::read_tagged`]; an id-less send keeps v1 ordering, an
    /// id-tagged one may complete out of order.
    pub fn send(&mut self, request: &Request, id: Option<u64>) -> SvqResult<()> {
        self.stream
            .write_all(encode_request_line(request, id).as_bytes())?;
        Ok(())
    }

    /// Read the next response frame together with the request id it
    /// answers (`None` for v1 responses and server-initiated frames).
    pub fn read_tagged(&mut self) -> SvqResult<(Option<u64>, Response)> {
        match read_bounded_line(&mut self.reader, MAX_LINE_BYTES) {
            LineEvent::Line(line) => {
                let text = std::str::from_utf8(&line)
                    .map_err(|e| SvqError::Storage(format!("response not UTF-8: {e}")))?;
                let frame: ResponseFrame = serde_json::from_str(text)
                    .map_err(|e| SvqError::Storage(format!("response not a frame: {e}")))?;
                Ok((frame.id, frame.response))
            }
            LineEvent::Eof => Err(SvqError::Storage(
                "connection closed before a response frame arrived".into(),
            )),
            LineEvent::Oversize { .. } => Err(SvqError::Storage(
                "response frame exceeded the line cap".into(),
            )),
            LineEvent::TimedOut => Err(SvqError::Storage(
                "timed out waiting for a response frame".into(),
            )),
            LineEvent::Failed(e) => Err(SvqError::Io(e)),
        }
    }

    /// Send raw bytes as one line (the newline is appended) and read the
    /// response — the hardening tests' way of speaking malformed frames.
    pub fn send_raw(&mut self, line: &[u8]) -> SvqResult<Response> {
        self.stream.write_all(line)?;
        self.stream.write_all(b"\n")?;
        self.read_response()
    }

    /// Read the next response frame off the connection.
    pub fn read_response(&mut self) -> SvqResult<Response> {
        match read_bounded_line(&mut self.reader, MAX_LINE_BYTES) {
            LineEvent::Line(line) => {
                let text = std::str::from_utf8(&line)
                    .map_err(|e| SvqError::Storage(format!("response not UTF-8: {e}")))?;
                serde_json::from_str(text)
                    .map_err(|e| SvqError::Storage(format!("response not a frame: {e}")))
            }
            LineEvent::Eof => Err(SvqError::Storage(
                "connection closed before a response frame arrived".into(),
            )),
            LineEvent::Oversize { .. } => Err(SvqError::Storage(
                "response frame exceeded the line cap".into(),
            )),
            LineEvent::TimedOut => Err(SvqError::Storage(
                "timed out waiting for a response frame".into(),
            )),
            LineEvent::Failed(e) => Err(SvqError::Io(e)),
        }
    }

    /// Convenience: a `query`/`stream` exchange that insists on an
    /// `outcome` frame, converting error frames into [`SvqError::Storage`].
    pub fn expect_outcome(&mut self, request: &Request) -> SvqResult<QueryOutcome> {
        match self.request(request)? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::Error { reason, message } => Err(SvqError::Storage(format!(
                "server refused ({reason}): {message}"
            ))),
            other => Err(SvqError::Storage(format!(
                "expected an outcome frame, got {other:?}"
            ))),
        }
    }
}
