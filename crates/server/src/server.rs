//! The service itself: acceptor, admission control, pipelined
//! per-connection I/O threads, and graceful drain.
//!
//! Architecture (`std::net`, the build is fully offline, so there is no
//! async runtime to lean on):
//!
//! * An **acceptor** thread owns the listener. Every accepted socket is
//!   answered: admitted connections get a reader thread; connections over
//!   the slot limit get a typed `busy` frame and a clean close; during
//!   drain everyone new gets `draining`. A socket is never silently
//!   dropped while the server runs — including when a handler thread
//!   cannot be spawned (typed `internal` frame) or when the listener
//!   itself fails persistently (bounded backoff, never a busy-spin).
//! * A per-connection **reader** thread speaks the line protocol under
//!   read/write deadlines, but does not execute requests: each decoded
//!   `query`/`stream` is handed to the shared `svq-exec` worker pool and
//!   the reader moves on to the next frame, so one connection can have
//!   many requests in flight (bounded by [`ServeConfig::pipeline_depth`]).
//!   Malformed frames are answered and survived; expired read deadlines
//!   answer `timeout`, let the in-flight responses flush, and close.
//! * A per-connection **writer** thread is the single owner of the write
//!   half: completions enqueue encoded frames and the writer flushes them
//!   — immediately for v2 (id-carrying) requests, in strict request order
//!   for v1 (id-less) ones via a reorder buffer, so pipelined execution
//!   never reorders a v1 client's responses.
//! * The **phase** cell (`running → draining → stopped`) is the drain
//!   state machine. [`ServerHandle::shutdown`] (or a wire `shutdown`
//!   request) flips it to draining: idle connections are closed
//!   immediately, in-flight requests run to completion, and new
//!   connections are refused with `draining` until teardown. Whoever wins
//!   the [`ServerHandle::wait`] teardown race force-closes stragglers at
//!   the drain deadline, joins the acceptor, and latches a [`ServeReport`]
//!   every other waiter observes — `wait` is idempotent, like the mux's.
//!
//! Offline `query` requests execute on pool workers against a shared
//! lazily-loaded [`VideoRepository`] (optionally residency-bounded — see
//! [`VideoRepository::with_cache_capacity`]); `stream` requests register a
//! session in the shared [`SessionMux`] and complete through
//! [`SessionMux::on_result`] callbacks instead of a blocking wait, so wire
//! results reuse the exact in-process [`QueryOutcome`] envelopes (see
//! `protocol`) without a request ever pinning a thread.

use crate::protocol::{
    encode_line, encode_response_line, parse_request_frame, read_bounded_line, LineEvent, Request,
    Response, StatsFrame, VideoScope, MAX_LINE_BYTES,
};
use crate::subscribe::{LiveSourceConfig, SubscriptionRegistry};
use crate::transport::{Conn, TcpTransport, Transport};
use parking_lot::{rt, Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufReader, ErrorKind, Write};
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use svq_core::expr::ExprSvaqd;
use svq_core::online::{OnlineConfig, Svaqd};
use svq_exec::{Backpressure, ExecMetrics, MuxOptions, SessionEngine, SessionId, SessionMux};
use svq_query::plan::PlannedPredicate;
use svq_query::{
    execute_offline, execute_offline_all_with, parse, LogicalPlan, QueryMode, QueryOutcome,
    QueryResults,
};
use svq_storage::{DiskStats, VideoRepository};
use svq_types::{PaperScoring, RejectReason, SvqError, SvqResult, VideoId};
use svq_vision::models::DetectionOracle;

/// Construction knobs for [`Server::start`], built (and validated) by
/// [`ServeConfig::builder`].
///
/// Fields are private: every construction path — `svqact serve`, the
/// benches, the simulation scenarios — goes through the builder, so an
/// out-of-range knob is a typed [`SvqError::InvalidConfig`] naming the
/// offending field instead of a latent misbehaviour at serve time.
/// [`ServeConfig::default`] is the builder's starting point and always
/// valid.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub(crate) addr: String,
    pub(crate) max_conns: usize,
    pub(crate) read_timeout: Duration,
    pub(crate) write_timeout: Duration,
    pub(crate) drain_timeout: Duration,
    pub(crate) max_line: usize,
    pub(crate) workers: usize,
    pub(crate) shards: usize,
    pub(crate) mailbox: usize,
    pub(crate) pipeline_depth: usize,
    pub(crate) catalog_cache: Option<usize>,
    pub(crate) shard_index: usize,
    pub(crate) shard_count: usize,
    pub(crate) debug_fail_spawns: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_conns: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            max_line: MAX_LINE_BYTES,
            workers: 2,
            shards: 1,
            mailbox: 64,
            pipeline_depth: 64,
            catalog_cache: None,
            shard_index: 0,
            shard_count: 1,
            debug_fail_spawns: 0,
        }
    }
}

impl ServeConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }

    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`ServerHandle::local_addr`]).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Admission limit: connections held concurrently.
    pub fn max_conns(&self) -> usize {
        self.max_conns
    }

    /// Per-connection read deadline.
    pub fn read_timeout(&self) -> Duration {
        self.read_timeout
    }

    /// Per-connection write deadline.
    pub fn write_timeout(&self) -> Duration {
        self.write_timeout
    }

    /// How long a drain waits before force-closing stragglers.
    pub fn drain_timeout(&self) -> Duration {
        self.drain_timeout
    }

    /// Frame-size cap (bytes, newline included).
    pub fn max_line(&self) -> usize {
        self.max_line
    }

    /// Worker threads in the shared execution pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Ingress shards in the multiplexer.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Per-session mailbox capacity for `stream` requests.
    pub fn mailbox(&self) -> usize {
        self.mailbox
    }

    /// Requests one connection may have in flight.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Residency bound for the served catalog repository (`None` =
    /// unbounded). Consumed by the catalog-opening layer (`svqact serve`)
    /// via [`VideoRepository::with_cache_capacity`]; the server itself
    /// serves whatever repository it is given.
    pub fn catalog_cache(&self) -> Option<usize> {
        self.catalog_cache
    }

    /// This process's slice of a hash-partitioned catalog: serve only the
    /// videos with `svq_exec::shard_index(v, shard_count) == shard_index`.
    /// Consumed by the catalog-opening layer; `(0, 1)` means "everything".
    pub fn shard_slice(&self) -> (usize, usize) {
        (self.shard_index, self.shard_count)
    }
}

/// Validating builder for [`ServeConfig`]; mirrors `OnlineConfig::builder`.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Admission limit: connections held concurrently.
    pub fn max_conns(mut self, max_conns: usize) -> Self {
        self.config.max_conns = max_conns;
        self
    }

    /// Per-connection read deadline.
    pub fn read_timeout(mut self, read_timeout: Duration) -> Self {
        self.config.read_timeout = read_timeout;
        self
    }

    /// Per-connection write deadline.
    pub fn write_timeout(mut self, write_timeout: Duration) -> Self {
        self.config.write_timeout = write_timeout;
        self
    }

    /// Drain deadline before stragglers are force-closed.
    pub fn drain_timeout(mut self, drain_timeout: Duration) -> Self {
        self.config.drain_timeout = drain_timeout;
        self
    }

    /// Frame-size cap (bytes, newline included).
    pub fn max_line(mut self, max_line: usize) -> Self {
        self.config.max_line = max_line;
        self
    }

    /// Worker threads in the shared execution pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Ingress shards in the multiplexer.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Per-session mailbox capacity for `stream` requests.
    pub fn mailbox(mut self, mailbox: usize) -> Self {
        self.config.mailbox = mailbox;
        self
    }

    /// Requests one connection may have in flight (per-connection
    /// backpressure bound).
    pub fn pipeline_depth(mut self, pipeline_depth: usize) -> Self {
        self.config.pipeline_depth = pipeline_depth;
        self
    }

    /// Residency bound for the served catalog (`None` = unbounded).
    pub fn catalog_cache(mut self, catalog_cache: Option<usize>) -> Self {
        self.config.catalog_cache = catalog_cache;
        self
    }

    /// Serve only this slice of a hash-partitioned catalog:
    /// `shard_index` of `shard_count` (placement by
    /// `svq_exec::shard_index`). `(0, 1)` serves everything.
    pub fn shard_slice(mut self, shard_index: usize, shard_count: usize) -> Self {
        self.config.shard_index = shard_index;
        self.config.shard_count = shard_count;
        self
    }

    /// Test hook: fail this many handler spawns artificially (exercises
    /// the spawn-failure answer path, which real resource exhaustion makes
    /// impractical to reach deterministically). Production configs leave
    /// this 0.
    #[doc(hidden)]
    pub fn debug_fail_spawns(mut self, debug_fail_spawns: u64) -> Self {
        self.config.debug_fail_spawns = debug_fail_spawns;
        self
    }

    /// Validate and produce the config. Every failure is a typed
    /// [`SvqError::InvalidConfig`] naming the offending field.
    pub fn build(self) -> SvqResult<ServeConfig> {
        let c = &self.config;
        let fail = |msg: String| Err(SvqError::InvalidConfig(msg));
        if c.addr.is_empty() {
            return fail("serve: addr must not be empty".into());
        }
        if c.max_conns == 0 {
            return fail("serve: max_conns must be at least 1".into());
        }
        if c.read_timeout.is_zero() {
            return fail("serve: read_timeout must be positive".into());
        }
        if c.write_timeout.is_zero() {
            return fail("serve: write_timeout must be positive".into());
        }
        if c.drain_timeout.is_zero() {
            return fail("serve: drain_timeout must be positive".into());
        }
        if c.max_line < 64 {
            return fail(format!(
                "serve: max_line must be at least 64 bytes, got {}",
                c.max_line
            ));
        }
        if c.workers == 0 {
            return fail("serve: workers must be at least 1".into());
        }
        if c.shards == 0 {
            return fail("serve: shards must be at least 1".into());
        }
        if c.mailbox == 0 {
            return fail("serve: mailbox must be at least 1".into());
        }
        if c.pipeline_depth == 0 {
            return fail("serve: pipeline_depth must be at least 1".into());
        }
        if c.catalog_cache == Some(0) {
            return fail(
                "serve: catalog_cache must be at least 1 slot (omit it for unbounded)".into(),
            );
        }
        if c.shard_count == 0 {
            return fail("serve: shard_count must be at least 1".into());
        }
        if c.shard_index >= c.shard_count {
            return fail(format!(
                "serve: shard_index must be below shard_count, got {}/{}",
                c.shard_index, c.shard_count
            ));
        }
        Ok(self.config)
    }
}

/// What a completed serve run did, latched by [`ServerHandle::wait`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeReport {
    /// The address actually bound (resolves port 0).
    pub addr: SocketAddr,
    pub accepted: u64,
    pub rejected_busy: u64,
    pub rejected_draining: u64,
    pub timed_out: u64,
    pub malformed: u64,
    /// Listener `accept` failures survived with backoff.
    pub accept_errors: u64,
    pub requests: u64,
    /// Whether every connection closed within the drain deadline.
    pub drained_in_deadline: bool,
    /// Connections force-closed at the deadline.
    pub forced_closes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Stopped,
}

/// One admitted connection's registry entry. The stream clone shares the
/// socket, so drain can close idle connections (and force-close stragglers
/// at the deadline) without the handler's cooperation.
struct ConnEntry {
    id: u64,
    stream: Box<dyn Conn>,
    /// Requests dispatched on this connection whose responses have not
    /// flushed yet (shared with its [`ConnWriter`]). Drain closes only
    /// connections observed at zero, so in-flight requests complete.
    in_flight: Arc<AtomicU64>,
}

/// What executes decoded requests behind the serving core.
///
/// The acceptor / admission / per-connection reader & writer / drain
/// machinery is backend-agnostic: [`LocalBackend`] executes against the
/// in-process engines, and the cluster router (`crate::router`) forwards
/// over upstream connections — both behind the same wire behaviour, which
/// is what lets clients talk to a router exactly as to a single server.
pub(crate) trait Backend: Send + Sync {
    /// Answer one decoded request: complete `pending` exactly once, from
    /// whatever thread finishes the work. `shutdown` frames never reach
    /// the backend — the serving core answers `bye` and drains itself.
    fn dispatch(self: Arc<Self>, conn_id: u64, reqno: u64, request: Request, pending: Pending);

    /// Stop backend-owned machinery (upstream links, sessions, the live
    /// source driver) during teardown, after the drain settled and before
    /// the report latches.
    fn stop(&self) {}

    /// A connection's reader loop ended (EOF, deadline, drain close): the
    /// backend drops whatever it holds on the connection's behalf —
    /// standing subscriptions, for the local backend. Runs before the
    /// connection's writer is told to finish, so nothing enqueues onto a
    /// retired writer.
    fn conn_closed(&self, _conn_id: u64) {}
}

pub(crate) struct Shared {
    config: ServeConfig,
    transport: Arc<dyn Transport>,
    backend: Arc<dyn Backend>,
    metrics: ExecMetrics,
    phase: Mutex<Phase>,
    phase_cv: Condvar,
    /// Admitted-connection count; the condvar signals every close so the
    /// drain can wait for zero.
    admitted: Mutex<usize>,
    admitted_cv: Condvar,
    conns: Mutex<Vec<ConnEntry>>,
    next_conn: AtomicU64,
    /// Remaining injected spawn failures ([`ServeConfig::debug_fail_spawns`]).
    spawn_faults: AtomicU64,
    local_addr: SocketAddr,
}

impl Shared {
    fn phase(&self) -> Phase {
        *self.phase.lock()
    }

    fn take_spawn_fault(&self) -> bool {
        self.spawn_faults
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Flip to draining (idempotent): refuse new work, close idle
    /// connections, let in-flight requests finish.
    fn begin_drain(&self) {
        {
            let mut phase = self.phase.lock();
            if *phase != Phase::Running {
                return;
            }
            *phase = Phase::Draining;
            self.phase_cv.notify_all();
        }
        self.close_idle_conns();
    }

    /// Close connections observed idle so their blocked reads return now
    /// rather than at the read deadline. A connection whose request is
    /// racing this scan at most loses that request — the same outcome as
    /// arriving one instant after the drain began. The teardown loop
    /// re-runs this scan: a pipelined connection may only *become* idle
    /// (its last response flushed) after the drain began, with its reader
    /// already parked in a blocked read.
    fn close_idle_conns(&self) {
        for conn in self.conns.lock().iter() {
            if conn.in_flight.load(Ordering::Acquire) == 0 {
                let _ = conn.stream.shutdown_both();
            }
        }
    }
}

/// Entry point for the service layer.
pub struct Server;

/// Handle to a running server. Cheap operations only; the heavy teardown
/// happens in [`ServerHandle::wait`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Mutex<Option<rt::JoinHandle<()>>>,
    /// Claims the (single) teardown; losers of the race wait on the latch.
    teardown_claimed: AtomicBool,
    report: Mutex<Option<ServeReport>>,
    report_cv: Condvar,
}

impl Server {
    /// Bind and serve. `repo` backs `query` requests (absent: `query` is
    /// answered `bad_request`); `oracles` back `stream` requests, keyed by
    /// their ground truth's video id. Returns once the listener is bound
    /// and accepting.
    pub fn start(
        config: ServeConfig,
        repo: Option<Arc<VideoRepository>>,
        oracles: Vec<Arc<DetectionOracle>>,
        metrics: ExecMetrics,
    ) -> SvqResult<ServerHandle> {
        Self::start_with_source(config, repo, oracles, None, metrics)
    }

    /// [`Server::start`] plus an optional live source backing `subscribe`
    /// requests (see [`LiveSourceConfig`]); without one, `subscribe` is
    /// answered `bad_request`.
    pub fn start_with_source(
        config: ServeConfig,
        repo: Option<Arc<VideoRepository>>,
        oracles: Vec<Arc<DetectionOracle>>,
        source: Option<LiveSourceConfig>,
        metrics: ExecMetrics,
    ) -> SvqResult<ServerHandle> {
        let transport = Arc::new(TcpTransport::bind(&config.addr)?);
        Self::start_on_with_source(transport, config, repo, oracles, source, metrics)
    }

    /// Serve over an explicit [`Transport`] — the seam `svq-sim` uses to
    /// run the whole service on an in-memory loopback under its
    /// deterministic scheduler. [`Server::start`] is `start_on` with a
    /// freshly bound [`TcpTransport`].
    pub fn start_on(
        transport: Arc<dyn Transport>,
        config: ServeConfig,
        repo: Option<Arc<VideoRepository>>,
        oracles: Vec<Arc<DetectionOracle>>,
        metrics: ExecMetrics,
    ) -> SvqResult<ServerHandle> {
        Self::start_on_with_source(transport, config, repo, oracles, None, metrics)
    }

    /// The fully general local server: explicit transport plus an optional
    /// live source for standing queries.
    pub fn start_on_with_source(
        transport: Arc<dyn Transport>,
        config: ServeConfig,
        repo: Option<Arc<VideoRepository>>,
        oracles: Vec<Arc<DetectionOracle>>,
        source: Option<LiveSourceConfig>,
        metrics: ExecMetrics,
    ) -> SvqResult<ServerHandle> {
        let mux = SessionMux::with_options(
            MuxOptions::new(config.workers.max(1)).with_shards(config.shards.max(1)),
            metrics.clone(),
        );
        let query_gates = repo
            .iter()
            .flat_map(|r| r.video_ids())
            .map(|id| (id, Mutex::new(())))
            .collect();
        let oracles = oracles.into_iter().map(|o| (o.truth().video, o)).collect();
        let live = match source {
            Some(config) => Some(config.build()?),
            None => None,
        };
        let subs = SubscriptionRegistry::new(live, metrics.clone(), config.mailbox.max(1));
        let backend = Arc::new(LocalBackend {
            repo,
            oracles,
            query_gates,
            mux,
            subs,
            metrics: metrics.clone(),
            mailbox: config.mailbox.max(1),
        });
        backend.subs.start_driver(&backend)?;
        Self::start_with_backend(transport, config, backend, metrics)
    }

    /// The backend-agnostic serving core: acceptor, admission, drain —
    /// shared between [`Server::start_on`] and the cluster router.
    pub(crate) fn start_with_backend(
        transport: Arc<dyn Transport>,
        config: ServeConfig,
        backend: Arc<dyn Backend>,
        metrics: ExecMetrics,
    ) -> SvqResult<ServerHandle> {
        if config.max_conns == 0 {
            return Err(SvqError::InvalidConfig(
                "serve: max_conns must be at least 1".into(),
            ));
        }
        let local_addr = transport.local_addr();
        let spawn_faults = AtomicU64::new(config.debug_fail_spawns);
        let shared = Arc::new(Shared {
            config,
            transport,
            backend,
            metrics,
            phase: Mutex::new(Phase::Running),
            phase_cv: Condvar::new(),
            admitted: Mutex::new(0),
            admitted_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            spawn_faults,
            local_addr,
        });
        let acceptor = {
            let shared = shared.clone();
            rt::spawn("svq-serve-acceptor", move || accept_loop(&shared)).map_err(SvqError::Io)?
        };
        Ok(ServerHandle {
            shared,
            acceptor: Mutex::new(Some(acceptor)),
            teardown_claimed: AtomicBool::new(false),
            report: Mutex::new(None),
            report_cv: Condvar::new(),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves a `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The shared metrics registry (server block + mux sessions).
    pub fn metrics(&self) -> &ExecMetrics {
        &self.shared.metrics
    }

    /// Trigger a graceful drain and return immediately. Idempotent; also
    /// triggered by a wire `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Block until the server has fully stopped and return what it did.
    /// Blocks across the whole serve lifetime if no drain was triggered
    /// yet. Idempotent: every caller observes the same latched report.
    pub fn wait(&self) -> ServeReport {
        {
            let mut phase = self.shared.phase.lock();
            while *phase == Phase::Running {
                self.shared.phase_cv.wait(&mut phase);
            }
        }
        if !self.teardown_claimed.swap(true, Ordering::AcqRel) {
            let report = self.teardown();
            *self.report.lock() = Some(report);
            self.report_cv.notify_all();
        }
        let mut latched = self.report.lock();
        while latched.is_none() {
            self.report_cv.wait(&mut latched);
        }
        match *latched {
            Some(report) => report,
            None => unreachable!("wait loop exits only once the report is latched"),
        }
    }

    /// The single-winner teardown: wait out the drain, force-close
    /// stragglers at the deadline, stop the acceptor, report.
    fn teardown(&self) -> ServeReport {
        let shared = &self.shared;
        // Deadlines run on `rt::monotonic_nanos` so a simulated drain
        // consumes virtual time, not wall time.
        let deadline =
            rt::monotonic_nanos().saturating_add(shared.config.drain_timeout.as_nanos() as u64);
        let mut drained_in_deadline = true;
        loop {
            {
                let mut active = shared.admitted.lock();
                if *active == 0 {
                    break;
                }
                let now = rt::monotonic_nanos();
                if now >= deadline {
                    drained_in_deadline = false;
                    break;
                }
                // Tick so the idle re-scan below runs even while nothing
                // deregisters: a connection may become idle only after the
                // `begin_drain` scan, with its reader parked in a read.
                let tick = Duration::from_nanos((deadline - now).min(25_000_000));
                shared.admitted_cv.wait_for(&mut active, tick);
                if *active == 0 {
                    break;
                }
            }
            shared.close_idle_conns();
        }
        let mut forced_closes = 0u64;
        if !drained_in_deadline {
            for conn in shared.conns.lock().iter() {
                let _ = conn.stream.shutdown_both();
                forced_closes += 1;
            }
            // The sockets are dead; handlers unwind on their next read or
            // write. Give them a bounded grace to deregister.
            let grace = rt::monotonic_nanos().saturating_add(5_000_000_000);
            let mut active = shared.admitted.lock();
            while *active > 0 && rt::monotonic_nanos() < grace {
                shared
                    .admitted_cv
                    .wait_for(&mut active, Duration::from_millis(50));
            }
        }
        // The drain settled (or stragglers were force-closed): stop
        // backend-owned machinery — for a router, the upstream shard links
        // and their reconnect loops.
        shared.backend.stop();
        {
            let mut phase = shared.phase.lock();
            *phase = Phase::Stopped;
            shared.phase_cv.notify_all();
        }
        // Wake the acceptor out of its blocking accept; it observes
        // `Stopped` and exits.
        shared.transport.wake();
        // Take the handle out first so the `acceptor` mutex is released
        // before the (blocking) join — a concurrent `stop()` must never
        // queue behind a join that waits on the accept loop to notice.
        let handle = self.acceptor.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        // Release the bound socket: dials after shutdown must be refused,
        // not parked in a backlog nobody will ever accept.
        shared.transport.close();
        let snap = shared.metrics.snapshot().server;
        ServeReport {
            addr: shared.local_addr,
            accepted: snap.accepted,
            rejected_busy: snap.rejected_busy,
            rejected_draining: snap.rejected_draining,
            timed_out: snap.timed_out,
            malformed: snap.malformed,
            accept_errors: snap.accept_errors,
            requests: snap.requests,
            drained_in_deadline,
            forced_closes,
        }
    }
}

/// Ceiling of the accept-error backoff. Deep enough to take a persistent
/// EMFILE from a busy-spin to ~10 syscalls/s, shallow enough that recovery
/// after the condition clears is prompt.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

fn accept_loop(shared: &Arc<Shared>) {
    let mut backoff = Duration::ZERO;
    loop {
        let stream = match shared.transport.accept() {
            Ok(stream) => {
                backoff = Duration::ZERO;
                stream
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                if shared.phase() == Phase::Stopped {
                    return;
                }
                // Persistent accept failures (EMFILE, ENFILE, transport
                // faults) must not busy-spin the acceptor at 100% CPU:
                // back off exponentially, bounded, and count each one.
                shared
                    .metrics
                    .server()
                    .accept_errors
                    .fetch_add(1, Ordering::Relaxed);
                backoff = (backoff * 2).clamp(Duration::from_millis(1), ACCEPT_BACKOFF_MAX);
                rt::sleep(backoff);
                if shared.phase() == Phase::Stopped {
                    return;
                }
                continue;
            }
        };
        match shared.phase() {
            Phase::Stopped => return,
            Phase::Draining => {
                shared
                    .metrics
                    .server()
                    .rejected_draining
                    .fetch_add(1, Ordering::Relaxed);
                refuse(
                    stream,
                    shared,
                    RejectReason::Draining,
                    "server is draining towards shutdown",
                );
                continue;
            }
            Phase::Running => {}
        }
        let admitted = {
            let mut active = shared.admitted.lock();
            if *active >= shared.config.max_conns {
                false
            } else {
                *active += 1;
                true
            }
        };
        if !admitted {
            shared
                .metrics
                .server()
                .rejected_busy
                .fetch_add(1, Ordering::Relaxed);
            refuse(
                stream,
                shared,
                RejectReason::Busy,
                "all connection slots are occupied; retry shortly",
            );
            continue;
        }
        shared.metrics.server().conn_opened();
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let in_flight = Arc::new(AtomicU64::new(0));
        // Register *before* spawning: a connection that cannot enter the
        // registry would be invisible to drain (neither closed idle nor
        // force-closed at the deadline), so a clone failure refuses the
        // connection instead of admitting it unreachable.
        let clone = match stream.try_clone_conn() {
            Ok(clone) => clone,
            Err(e) => {
                refuse(
                    stream,
                    shared,
                    RejectReason::Internal,
                    &format!("connection setup failed: {e}"),
                );
                release_slot(shared);
                continue;
            }
        };
        shared.conns.lock().push(ConnEntry {
            id: conn_id,
            stream: clone,
            in_flight: in_flight.clone(),
        });
        let in_thread = shared.clone();
        let spawned = if shared.take_spawn_fault() {
            Err(std::io::Error::other("injected handler-spawn failure"))
        } else {
            rt::spawn(&format!("svq-serve-conn{conn_id}"), move || {
                handle_conn(&in_thread, conn_id, stream, &in_flight);
                deregister(&in_thread, conn_id);
            })
        };
        if spawned.is_err() {
            // The spawn consumed (and dropped) the accepted socket, but
            // the registry clone still shares it: answer a typed frame
            // and close cleanly — never a silent drop.
            answer_spawn_failure(shared, conn_id);
            release_slot(shared);
        }
    }
}

/// Answer a refused connection with a typed frame and close it cleanly
/// (frame, FIN) — never a silent drop.
fn refuse(mut stream: Box<dyn Conn>, shared: &Shared, reason: RejectReason, message: &str) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let frame = Response::Error {
        reason,
        message: message.into(),
    };
    let _ = stream.write_all(encode_line(&frame).as_bytes());
    let _ = stream.shutdown_write();
}

/// Spawn-failure path: take the connection's registry entry and answer a
/// typed `internal` frame on its clone. The write happens after the entry
/// leaves the registry, outside the `conns` lock.
fn answer_spawn_failure(shared: &Shared, conn_id: u64) {
    let entry = {
        let mut conns = shared.conns.lock();
        conns
            .iter()
            .position(|c| c.id == conn_id)
            .map(|at| conns.remove(at))
    };
    if let Some(mut entry) = entry {
        let _ = entry
            .stream
            .set_write_timeout(Some(shared.config.write_timeout));
        let frame = Response::Error {
            reason: RejectReason::Internal,
            message: "server could not start a connection handler".into(),
        };
        let _ = entry.stream.write_all(encode_line(&frame).as_bytes());
        let _ = entry.stream.shutdown_write();
    }
}

/// Remove a finished connection from the registry and release its slot.
fn deregister(shared: &Shared, conn_id: u64) {
    shared.conns.lock().retain(|c| c.id != conn_id);
    release_slot(shared);
}

/// Release one admission slot (registry entry already absent or removed).
fn release_slot(shared: &Shared) {
    shared.metrics.server().conn_closed();
    let mut active = shared.admitted.lock();
    *active = active.saturating_sub(1);
    shared.admitted_cv.notify_all();
}

/// Where one response slots into the connection's flush order.
#[derive(Debug, Clone, Copy)]
enum Ticket {
    /// v1 (id-less) request: flush in exactly this per-connection sequence
    /// position, holding it back until every earlier ordered response
    /// flushed.
    Ordered(u64),
    /// v2 (id-carrying) request: flush as soon as it completes.
    Unordered,
}

/// One line in a connection writer's flush queue, with the counter its
/// flush releases.
struct OutLine {
    line: String,
    /// `None`: a response occupying one of the connection's in-flight
    /// pipeline slots. `Some(gauge)`: a subscription push, accounted
    /// against its subscription's bounded `queued` gauge instead — pushes
    /// never hold pipeline slots, so a connection that only receives
    /// pushes stays drain-closable.
    push: Option<Arc<AtomicU64>>,
}

struct WriterState {
    /// Encoded lines ready to flush, in flush order.
    ready: VecDeque<OutLine>,
    /// Ordered responses completed early, waiting for their turn.
    held: BTreeMap<u64, String>,
    /// The next ordered sequence number allowed to flush.
    next_ordered: u64,
    /// Reader finished; exit once everything in flight has flushed.
    closed: bool,
    /// A write failed; remaining lines are consumed without writing so
    /// the in-flight accounting still terminates.
    failed: bool,
}

/// The per-connection response writer: reader-side dispatch acquires an
/// in-flight slot per request, completions enqueue encoded frames, and
/// one writer thread flushes them (see [`Ticket`] for ordering).
pub(crate) struct ConnWriter {
    state: Mutex<WriterState>,
    /// Signals enqueued lines, in-flight decrements, and close.
    cv: Condvar,
    /// Mirror of the dispatched-unflushed count, shared with the
    /// connection's registry entry so drain can observe idleness without
    /// the state lock. Mutated only under `state`.
    in_flight: Arc<AtomicU64>,
}

/// A running [`ConnWriter`] plus its thread, joined by `finish`.
struct WriterHandle {
    writer: Arc<ConnWriter>,
    thread: rt::JoinHandle<()>,
}

impl ConnWriter {
    /// Spawn the writer thread owning `stream`'s write half.
    fn start(
        conn_id: u64,
        stream: Box<dyn Conn>,
        in_flight: Arc<AtomicU64>,
    ) -> std::io::Result<WriterHandle> {
        let writer = Arc::new(ConnWriter {
            state: Mutex::new(WriterState {
                ready: VecDeque::new(),
                held: BTreeMap::new(),
                next_ordered: 0,
                closed: false,
                failed: false,
            }),
            cv: Condvar::new(),
            in_flight,
        });
        let in_thread = writer.clone();
        let thread = rt::spawn(&format!("svq-serve-writer{conn_id}"), move || {
            writer_loop(&in_thread, stream)
        })?;
        Ok(WriterHandle { writer, thread })
    }

    /// Reader side: block until the connection is below `depth` in-flight
    /// responses, then claim a slot. Every claimed slot must be paired
    /// with exactly one later [`ConnWriter::enqueue`].
    fn acquire(&self, depth: u64) {
        let mut state = self.state.lock();
        while self.in_flight.load(Ordering::Acquire) >= depth && !state.failed {
            self.cv.wait(&mut state);
        }
        self.in_flight.fetch_add(1, Ordering::AcqRel);
    }

    /// Completion side: hand one encoded response line to the writer.
    fn enqueue(&self, ticket: Ticket, line: String) {
        let mut state = self.state.lock();
        match ticket {
            Ticket::Unordered => state.ready.push_back(OutLine { line, push: None }),
            Ticket::Ordered(seq) => {
                state.held.insert(seq, line);
                loop {
                    let turn = state.next_ordered;
                    match state.held.remove(&turn) {
                        Some(line) => {
                            state.ready.push_back(OutLine { line, push: None });
                            state.next_ordered += 1;
                        }
                        None => break,
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Push side (standing queries): hand one server-initiated frame to
    /// the writer without claiming a pipeline slot. `queued` is the
    /// subscription's resident-line gauge, already incremented by the
    /// caller's budget claim; the writer decrements it when the line
    /// flushes (or is consumed after a write failure).
    pub(crate) fn enqueue_push(&self, line: String, queued: Arc<AtomicU64>) {
        let mut state = self.state.lock();
        state.ready.push_back(OutLine {
            line,
            push: Some(queued),
        });
        self.cv.notify_all();
    }

    /// Reader side: no more requests will be dispatched.
    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

impl WriterHandle {
    /// Declare end-of-dispatch and wait for every in-flight response to
    /// flush (or be dropped after a write failure).
    fn finish(self) {
        self.writer.close();
        let _ = self.thread.join();
    }
}

/// The writer thread: pop one flushable line at a time and write it with
/// no lock held. Exits once the reader closed the dispatch side and the
/// last in-flight response has flushed.
fn writer_loop(writer: &ConnWriter, mut stream: Box<dyn Conn>) {
    loop {
        let (out, failed) = {
            let mut state = writer.state.lock();
            loop {
                if let Some(out) = state.ready.pop_front() {
                    break (Some(out), state.failed);
                }
                if state.closed && writer.in_flight.load(Ordering::Acquire) == 0 {
                    break (None, state.failed);
                }
                writer.cv.wait(&mut state);
            }
        };
        let Some(out) = out else { return };
        if !failed {
            let ok = stream
                .write_all(out.line.as_bytes())
                .and_then(|()| stream.flush())
                .is_ok();
            if !ok {
                // Unblock the reader (and the peer); later lines are
                // consumed without writing so accounting terminates.
                let _ = stream.shutdown_both();
                writer.state.lock().failed = true;
            }
        }
        let state = writer.state.lock();
        match out.push {
            // A flushed (or consumed) push releases its subscription's
            // budget slot; pipeline slots are untouched.
            Some(queued) => {
                queued.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                writer.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
        writer.cv.notify_all();
        drop(state);
    }
}

/// Everything one dispatched request needs to answer: completion calls
/// [`Pending::complete`] exactly once, from whatever thread finished the
/// work.
pub(crate) struct Pending {
    shared: Arc<Shared>,
    writer: Arc<ConnWriter>,
    ticket: Ticket,
    id: Option<u64>,
    kind: &'static str,
    started: Instant,
}

impl Pending {
    pub(crate) fn complete(self, response: Response) {
        record_request(&self.shared, self.kind, self.started.elapsed());
        self.writer
            .enqueue(self.ticket, encode_response_line(&response, self.id));
    }
}

fn handle_conn(
    shared: &Arc<Shared>,
    conn_id: u64,
    stream: Box<dyn Conn>,
    in_flight: &Arc<AtomicU64>,
) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut reader = match stream.try_clone_conn() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => {
            // No read half: answer before closing — never a silent drop.
            let mut stream = stream;
            let frame = Response::Error {
                reason: RejectReason::Internal,
                message: "connection setup failed".into(),
            };
            let _ = stream.write_all(encode_line(&frame).as_bytes());
            let _ = stream.shutdown_write();
            return;
        }
    };
    let writer = match ConnWriter::start(conn_id, stream, in_flight.clone()) {
        Ok(writer) => writer,
        Err(_) => {
            // The stream went into the failed spawn attempt; the reader
            // clone still shares the socket — answer on it.
            let frame = Response::Error {
                reason: RejectReason::Internal,
                message: "server could not start a connection writer".into(),
            };
            let half = reader.get_mut();
            let _ = half.write_all(encode_line(&frame).as_bytes());
            let _ = half.shutdown_write();
            return;
        }
    };
    let depth = shared.config.pipeline_depth.max(1) as u64;
    let mut ordered_seq = 0u64;
    let ordered = |seq: &mut u64| {
        let ticket = Ticket::Ordered(*seq);
        *seq += 1;
        ticket
    };
    let mut reqno = 0u64;
    loop {
        if shared.phase() != Phase::Running {
            break;
        }
        match read_bounded_line(&mut reader, shared.config.max_line) {
            LineEvent::Line(line) => {
                let started = Instant::now();
                match parse_request_frame(&line) {
                    Err((reason, message)) => {
                        shared
                            .metrics
                            .server()
                            .malformed
                            .fetch_add(1, Ordering::Relaxed);
                        let ticket = ordered(&mut ordered_seq);
                        writer.writer.acquire(depth);
                        writer.writer.enqueue(
                            ticket,
                            encode_response_line(&Response::Error { reason, message }, None),
                        );
                    }
                    Ok(frame) => {
                        reqno += 1;
                        let ticket = match frame.id {
                            None => ordered(&mut ordered_seq),
                            Some(_) => Ticket::Unordered,
                        };
                        writer.writer.acquire(depth);
                        let pending = Pending {
                            shared: shared.clone(),
                            writer: writer.writer.clone(),
                            ticket,
                            id: frame.id,
                            kind: frame.request.kind(),
                            started,
                        };
                        match frame.request {
                            Request::Shutdown => {
                                pending.complete(Response::Bye);
                                shared.begin_drain();
                                // Stop reading; the writer flushes the bye
                                // (and everything still in flight) first.
                                break;
                            }
                            request => shared
                                .backend
                                .clone()
                                .dispatch(conn_id, reqno, request, pending),
                        }
                    }
                }
            }
            LineEvent::Oversize { eof } => {
                shared
                    .metrics
                    .server()
                    .malformed
                    .fetch_add(1, Ordering::Relaxed);
                let ticket = ordered(&mut ordered_seq);
                writer.writer.acquire(depth);
                let frame = Response::Error {
                    reason: RejectReason::Oversize,
                    message: format!(
                        "request line exceeded {} bytes; frame discarded",
                        shared.config.max_line
                    ),
                };
                writer
                    .writer
                    .enqueue(ticket, encode_response_line(&frame, None));
                if eof {
                    break;
                }
            }
            LineEvent::TimedOut => {
                if shared.phase() == Phase::Running {
                    shared
                        .metrics
                        .server()
                        .timed_out
                        .fetch_add(1, Ordering::Relaxed);
                    let ticket = ordered(&mut ordered_seq);
                    writer.writer.acquire(depth);
                    let frame = Response::Error {
                        reason: RejectReason::Timeout,
                        message: "read deadline expired; closing".into(),
                    };
                    writer
                        .writer
                        .enqueue(ticket, encode_response_line(&frame, None));
                }
                break;
            }
            LineEvent::Eof | LineEvent::Failed(_) => break,
        }
    }
    // The reader is done: drop backend-held per-connection state (standing
    // subscriptions) before the writer retires, so nothing enqueues onto a
    // finished writer. Already-enqueued pushes still flush below.
    shared.backend.conn_closed(conn_id);
    // Let every dispatched request flush its response before the
    // connection closes — a stalled pipeline drains, never vanishes.
    writer.finish();
}

/// The in-process execution backend: the engines, catalogs and live
/// streams a single `svq-serve` instance owns. The cluster router swaps
/// this for `crate::router`'s forwarding backend behind the same
/// [`Backend`] seam.
pub(crate) struct LocalBackend {
    repo: Option<Arc<VideoRepository>>,
    oracles: BTreeMap<VideoId, Arc<DetectionOracle>>,
    /// Per-catalog gates serializing offline queries so the simulated-disk
    /// delta in one outcome never absorbs a concurrent query's accesses.
    query_gates: BTreeMap<VideoId, Mutex<()>>,
    pub(crate) mux: SessionMux,
    /// Standing-query registry (empty, but answerable, without a source).
    pub(crate) subs: SubscriptionRegistry,
    metrics: ExecMetrics,
    mailbox: usize,
}

impl Backend for LocalBackend {
    fn dispatch(self: Arc<Self>, conn_id: u64, reqno: u64, request: Request, pending: Pending) {
        match request {
            Request::Stats => pending.complete(Response::Stats(self.stats())),
            Request::Query { sql, video } => self.dispatch_query(pending, sql, video),
            Request::Stream { sql, video } => {
                self.dispatch_stream(conn_id, reqno, sql, video, pending)
            }
            Request::Subscribe {
                sql,
                video,
                drift_every,
            } => self.dispatch_subscribe(conn_id, sql, video, drift_every, pending),
            Request::Unsubscribe { sub } => self.subs.unsubscribe(conn_id, sub, pending),
            // The serving core answers `shutdown` itself; never reached.
            Request::Shutdown => pending.complete(Response::Bye),
        }
    }

    fn stop(&self) {
        self.subs.stop();
    }

    fn conn_closed(&self, conn_id: u64) {
        self.subs.conn_closed(conn_id);
    }
}

impl LocalBackend {
    /// Run an offline `query` on the shared pool; the response flushes
    /// through the connection's writer whenever it completes.
    fn dispatch_query(self: Arc<Self>, pending: Pending, sql: String, video: VideoScope) {
        let me = self.clone();
        self.mux.submit(Box::new(move || {
            // An acquired in-flight slot must always produce a response, or
            // drain would wait on it forever: a panicking execution answers
            // `internal` instead of propagating into the pool's catch-all.
            let response = match catch_unwind(AssertUnwindSafe(|| me.do_query(&sql, video))) {
                Ok(Ok(outcome)) => Response::Outcome(outcome),
                Ok(Err((reason, message))) => Response::Error { reason, message },
                Err(_) => Response::Error {
                    reason: RejectReason::Internal,
                    message: "query execution panicked".into(),
                },
            };
            pending.complete(response);
        }));
    }

    /// Validate and register a `stream` request, then complete through the
    /// mux's result callback — no thread blocks waiting on the session.
    fn dispatch_stream(
        self: Arc<Self>,
        conn_id: u64,
        reqno: u64,
        sql: String,
        video: Option<u64>,
        pending: Pending,
    ) {
        match self.prepare_stream(conn_id, reqno, &sql, video) {
            Err((reason, message)) => pending.complete(Response::Error { reason, message }),
            Ok(session) => {
                let me = self.clone();
                let started = pending.started;
                self.mux.on_result(session, move |result| {
                    me.mux.release(session);
                    let response = match result {
                        Ok(done) => Response::Outcome(QueryOutcome {
                            results: QueryResults::Online {
                                sequences: done.sequences,
                                cost: done.cost,
                            },
                            disk: DiskStats::default(),
                            wall_ms: started.elapsed().as_secs_f64() * 1e3,
                        }),
                        Err(e) => Response::Error {
                            reason: RejectReason::Internal,
                            message: e.to_string(),
                        },
                    };
                    pending.complete(response);
                });
                self.mux.feed_stream(session);
            }
        }
    }

    /// Validate the v2 requirement and hand a `subscribe` to the registry.
    /// The registry completes `pending` itself (the ack must flush before
    /// the subscription becomes visible to the event fan-out).
    fn dispatch_subscribe(
        self: Arc<Self>,
        conn_id: u64,
        sql: String,
        video: Option<u64>,
        drift_every: u64,
        pending: Pending,
    ) {
        let Some(req_id) = pending.id else {
            return pending.complete(Response::Error {
                reason: RejectReason::BadRequest,
                message: "`subscribe` requires a protocol-v2 `id`: every pushed frame is tagged \
                          with it"
                    .into(),
            });
        };
        let writer = pending.writer.clone();
        self.subs.subscribe(
            &self,
            conn_id,
            req_id,
            &sql,
            video,
            drift_every,
            writer,
            pending,
        );
    }

    fn do_query(
        &self,
        sql: &str,
        video: VideoScope,
    ) -> Result<QueryOutcome, (RejectReason, String)> {
        let repo = self.repo.as_ref().ok_or((
            RejectReason::BadRequest,
            "this server holds no offline catalog; only `stream` and `stats` are available"
                .to_string(),
        ))?;
        let plan = plan_of(sql)?;
        if !matches!(plan.mode, QueryMode::Offline { .. }) {
            return Err((
                RejectReason::BadRequest,
                "statement plans online (no ORDER BY RANK … LIMIT); send it as a `stream` request"
                    .into(),
            ));
        }
        let id = match video {
            VideoScope::All => return self.query_all(&plan, repo),
            VideoScope::One(v) => VideoId::new(v),
            VideoScope::Sole => target_video(None, repo.video_ids(), "catalog video")?,
        };
        self.query_one(&plan, repo, id)
    }

    fn query_one(
        &self,
        plan: &LogicalPlan,
        repo: &VideoRepository,
        id: VideoId,
    ) -> Result<QueryOutcome, (RejectReason, String)> {
        let (catalog, hit) = repo
            .fetch(id)
            .map_err(|e| (reject_of(&e), e.to_string()))?
            .ok_or_else(|| {
                (
                    RejectReason::UnknownVideo,
                    format!("video {id:?} is not in the served catalog"),
                )
            })?;
        self.count_fetch(hit);
        // Serialize per catalog: the simulated-disk delta in the outcome
        // must not absorb a concurrent query's accesses.
        let _gate = self.query_gates.get(&id).map(|g| g.lock());
        execute_offline(plan, &catalog, &PaperScoring).map_err(|e| (reject_of(&e), e.to_string()))
    }

    /// `video: "all"` — the cluster reduction over every served catalog.
    /// Routed through [`execute_offline_all_with`] so the served path *is*
    /// the library path (a router merging per-shard answers is therefore
    /// byte-identical by construction); the per-video hook threads this
    /// backend's fetch counters and query gates into the shared sweep.
    fn query_all(
        &self,
        plan: &LogicalPlan,
        repo: &VideoRepository,
    ) -> Result<QueryOutcome, (RejectReason, String)> {
        // guard-escapes below widens the gate over the whole sweep, which
        // statically also covers the *next* video's catalog read; at
        // runtime the guard drops at the end of each video's iteration,
        // so no file I/O happens under it. svq-lint: allow(blocking-under-lock)
        execute_offline_all_with(plan, repo, &PaperScoring, |id, hit| {
            self.count_fetch(hit);
            // The guard escapes: the sweep holds it across that video's
            // execution. svq-lint: guard-escapes(execute_offline_all_with)
            self.query_gates.get(&id).map(|g| g.lock())
        })
        .map_err(|e| (reject_of(&e), e.to_string()))
    }

    fn count_fetch(&self, hit: bool) {
        let srv = self.metrics.server();
        if hit {
            srv.catalog_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            srv.catalog_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The synchronous half of a `stream` request: validate the statement
    /// and register its session. Feeding and completion are asynchronous.
    fn prepare_stream(
        &self,
        conn_id: u64,
        reqno: u64,
        sql: &str,
        video: Option<u64>,
    ) -> Result<SessionId, (RejectReason, String)> {
        if self.oracles.is_empty() {
            return Err((
                RejectReason::BadRequest,
                "this server holds no live streams; only `query` and `stats` are available".into(),
            ));
        }
        let plan = plan_of(sql)?;
        if plan.mode != QueryMode::Online {
            return Err((
                RejectReason::BadRequest,
                "statement plans offline (top-K); send it as a `query` request".into(),
            ));
        }
        let id = target_video(video, self.oracles.keys().copied(), "live stream")?;
        let oracle = self.oracles.get(&id).ok_or_else(|| {
            (
                RejectReason::UnknownVideo,
                format!("video {id:?} is not among the served live streams"),
            )
        })?;
        let geometry = oracle.truth().geometry;
        let engine = match &plan.predicate {
            PlannedPredicate::Simple(q) => SessionEngine::Svaqd(Svaqd::new(
                q.clone(),
                geometry,
                OnlineConfig::default(),
                1e-4,
                1e-4,
            )),
            PlannedPredicate::Cnf(q) => SessionEngine::Expr(ExprSvaqd::new(
                q.clone(),
                geometry,
                OnlineConfig::default(),
                1e-4,
                1e-4,
            )),
        };
        Ok(self.mux.register(
            format!("conn{conn_id}/r{reqno}"),
            oracle.clone(),
            engine,
            Backpressure::Block,
            self.mailbox.max(1),
        ))
    }

    fn stats(&self) -> StatsFrame {
        let mut frame = base_stats(&self.metrics);
        frame.catalog_videos = self
            .repo
            .as_ref()
            .map_or(0, |r| r.video_ids().count() as u64);
        frame.live_streams =
            self.oracles.len() as u64 + u64::from(self.subs.source_video().is_some());
        frame.subs_queue_depth = self.subs.queue_depth();
        frame
    }
}

fn record_request(shared: &Shared, kind: &'static str, elapsed: Duration) {
    let srv = shared.metrics.server();
    let counter = match kind {
        "query" => &srv.req_query,
        "stream" => &srv.req_stream,
        "subscribe" => &srv.req_subscribe,
        "unsubscribe" => &srv.req_unsubscribe,
        "stats" => &srv.req_stats,
        _ => &srv.req_shutdown,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    srv.latency.record(elapsed);
}

/// Classify an execution-layer error for the wire: anything the client
/// could have known (bad SQL, wrong mode, unknown label) is `bad_request`;
/// genuine server-side failures are `internal`.
fn reject_of(err: &SvqError) -> RejectReason {
    match err {
        SvqError::UnknownLabel { .. }
        | SvqError::InvalidQuery(_)
        | SvqError::InvalidConfig(_)
        | SvqError::Parse { .. } => RejectReason::BadRequest,
        SvqError::MissingMetadata(_) | SvqError::Storage(_) | SvqError::Io(_) => {
            RejectReason::Internal
        }
    }
}

pub(crate) fn plan_of(sql: &str) -> Result<LogicalPlan, (RejectReason, String)> {
    let statement = parse(sql).map_err(|e| (reject_of(&e), e.to_string()))?;
    LogicalPlan::from_statement(&statement).map_err(|e| (reject_of(&e), e.to_string()))
}

/// Pick the target of a request: the named id, or the sole served one.
fn target_video(
    named: Option<u64>,
    served: impl Iterator<Item = VideoId>,
    what: &str,
) -> Result<VideoId, (RejectReason, String)> {
    if let Some(v) = named {
        return Ok(VideoId::new(v));
    }
    let served: Vec<VideoId> = served.collect();
    match served.as_slice() {
        [sole] => Ok(*sole),
        _ => Err((
            RejectReason::BadRequest,
            format!("{} {what}s served; name one with `video`", served.len()),
        )),
    }
}

/// The front-door counters every server shape shares: connection and
/// request accounting from this process's [`ExecMetrics`]. Backends add
/// what only they know — [`LocalBackend`] its catalog/stream inventory,
/// the router its cluster view (summed shard counters, `shards_up`).
pub(crate) fn base_stats(metrics: &ExecMetrics) -> StatsFrame {
    let snap = metrics.snapshot();
    let s = snap.server;
    StatsFrame {
        active_conns: s.active_conns,
        peak_conns: s.peak_conns,
        accepted: s.accepted,
        rejected_busy: s.rejected_busy,
        rejected_draining: s.rejected_draining,
        timed_out: s.timed_out,
        malformed: s.malformed,
        accept_errors: s.accept_errors,
        catalog_hits: s.catalog_hits,
        catalog_misses: s.catalog_misses,
        catalog_videos: 0,
        live_streams: 0,
        req_query: s.req_query,
        req_stream: s.req_stream,
        req_subscribe: s.req_subscribe,
        req_unsubscribe: s.req_unsubscribe,
        req_stats: s.req_stats,
        req_shutdown: s.req_shutdown,
        requests: s.requests,
        subs_active: s.subs_active,
        subs_peak: s.subs_peak,
        subs_opened: s.subs_opened,
        subs_events: s.subs_events,
        subs_lagged: s.subs_lagged,
        subs_missed: s.subs_missed,
        subs_queue_depth: 0,
        latency_p50_ms: s.latency_p50_ms,
        latency_p95_ms: s.latency_p95_ms,
        latency_p99_ms: s.latency_p99_ms,
        total_clips: snap.total_clips,
        shards: 0,
        shards_up: 0,
    }
}
